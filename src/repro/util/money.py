"""Money handling for listing prices.

Marketplace prices are advertised in whole US dollars (the paper reports
medians like $157 and totals like $64,228,836).  We store integer cents to
avoid float drift when summing tens of thousands of listings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True, order=True)
class Money:
    """An immutable USD amount stored as integer cents."""

    cents: int

    @classmethod
    def dollars(cls, amount: float) -> "Money":
        return cls(round(amount * 100))

    @property
    def as_dollars(self) -> float:
        return self.cents / 100.0

    def __add__(self, other: "Money") -> "Money":
        return Money(self.cents + other.cents)

    def __sub__(self, other: "Money") -> "Money":
        return Money(self.cents - other.cents)

    def __mul__(self, factor: int) -> "Money":
        if not isinstance(factor, int):
            raise TypeError("Money can only be multiplied by an integer")
        return Money(self.cents * factor)

    def __str__(self) -> str:
        return format_usd(self.as_dollars)


def format_usd(amount: float) -> str:
    """Format a dollar amount the way the paper prints it.

    >>> format_usd(64228836)
    '$64,228,836'
    >>> format_usd(157.5)
    '$157.50'
    """
    if amount == int(amount):
        return f"${int(amount):,}"
    return f"${amount:,.2f}"


def sum_money(amounts: Iterable[Money]) -> Money:
    total = 0
    for m in amounts:
        total += m.cents
    return Money(total)


__all__ = ["Money", "format_usd", "sum_money"]
