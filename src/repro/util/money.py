"""Money handling for listing prices.

Marketplace prices are advertised in whole US dollars (the paper reports
medians like $157 and totals like $64,228,836).  We store integer cents to
avoid float drift when summing tens of thousands of listings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional


def is_valid_price(value) -> bool:
    """True for a finite, non-negative number that can act as a price.

    Rejects None, NaN/inf, negatives, bools, and non-numeric types —
    the gate that keeps NaN out of every price aggregate.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return math.isfinite(value) and value >= 0


def parse_price(value) -> Optional[float]:
    """Coerce a raw extracted value to a usable price, else None.

    Accepts numbers and numeric strings; anything non-finite or
    negative is rejected rather than propagated.
    """
    if isinstance(value, str):
        try:
            value = float(value.strip())
        except ValueError:
            return None
    if not is_valid_price(value):
        return None
    return float(value)


@dataclass(frozen=True, order=True)
class Money:
    """An immutable USD amount stored as integer cents."""

    cents: int

    @classmethod
    def dollars(cls, amount: float) -> "Money":
        if not math.isfinite(amount):
            raise ValueError(f"non-finite dollar amount: {amount!r}")
        return cls(round(amount * 100))

    @property
    def as_dollars(self) -> float:
        return self.cents / 100.0

    def __add__(self, other: "Money") -> "Money":
        return Money(self.cents + other.cents)

    def __sub__(self, other: "Money") -> "Money":
        return Money(self.cents - other.cents)

    def __mul__(self, factor: int) -> "Money":
        if not isinstance(factor, int):
            raise TypeError("Money can only be multiplied by an integer")
        return Money(self.cents * factor)

    def __str__(self) -> str:
        return format_usd(self.as_dollars)


def format_usd(amount: float) -> str:
    """Format a dollar amount the way the paper prints it.

    >>> format_usd(64228836)
    '$64,228,836'
    >>> format_usd(157.5)
    '$157.50'
    """
    if not math.isfinite(amount):
        raise ValueError(f"non-finite dollar amount: {amount!r}")
    if amount == int(amount):
        return f"${int(amount):,}"
    return f"${amount:,.2f}"


def sum_money(amounts: Iterable[Money]) -> Money:
    total = 0
    for m in amounts:
        total += m.cents
    return Money(total)


__all__ = ["Money", "format_usd", "is_valid_price", "parse_price", "sum_money"]
