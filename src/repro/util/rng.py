"""Deterministic, hierarchical random-number generation.

A measurement reproduction must be replayable: the synthetic world, the
crawl order, and every sampling decision in the analyses all need to come
out identical for the same root seed.  A single shared ``random.Random``
makes that fragile — adding one draw anywhere reshuffles everything
downstream.  :class:`RngTree` instead derives an *independent* child stream
for each named component, so adding draws in one subsystem never perturbs
another.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


def _derive_seed(parent_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a parent seed and a label."""
    payload = f"{parent_seed & _MASK64:016x}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RngTree:
    """A named tree of independent pseudo-random streams.

    >>> root = RngTree(42)
    >>> a = root.child("sellers")
    >>> b = root.child("listings")
    >>> a.randint(0, 10) == RngTree(42).child("sellers").randint(0, 10)
    True

    Children are derived purely from ``(seed, name)``; the order in which
    children are created does not matter, and drawing from one child never
    affects another.
    """

    __slots__ = ("seed", "name", "_random")

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed & _MASK64
        self.name = name
        self._random = random.Random(self.seed)

    def child(self, name: str) -> "RngTree":
        """Return an independent child stream identified by ``name``."""
        return RngTree(_derive_seed(self.seed, name), name=f"{self.name}/{name}")

    # -- thin passthroughs -------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        return self._random.sample(items, k)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def shuffled(self, items: Iterable[T]) -> List[T]:
        out = list(items)
        self._random.shuffle(out)
        return out

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    # -- distributions used by the world model ------------------------------

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        return self._random.random() < p

    def lognormal(self, median_value: float, sigma: float) -> float:
        """Sample a log-normal variate parameterized by its *median*.

        Prices and follower counts in the paper are heavy-tailed with a
        published median; parameterizing by the median makes the
        calibration constants directly usable.
        """
        if median_value <= 0:
            raise ValueError("median_value must be positive")
        return median_value * math.exp(self._random.gauss(0.0, sigma))

    def pareto_int(self, minimum: int, alpha: float, cap: Optional[int] = None) -> int:
        """Sample an integer from a Pareto tail starting at ``minimum``."""
        if minimum < 1:
            raise ValueError("minimum must be >= 1")
        value = minimum / (1.0 - self._random.random()) ** (1.0 / alpha)
        result = int(value)
        if cap is not None:
            result = min(result, cap)
        return max(minimum, result)

    def zipf_index(self, n: int, s: float = 1.1) -> int:
        """Sample an index in ``[0, n)`` with Zipf-like popularity decay.

        Used to assign listings to categories so that a handful of
        categories (Humor/Memes, Luxury/Motivation, ...) dominate, as in
        Section 4.1 of the paper.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        # Inverse-CDF on the truncated zeta distribution via bisection-free
        # approximation: sample u and walk the harmonic weights.  n is at
        # most a few hundred (category counts), so a linear walk is fine.
        weights = [1.0 / (i + 1) ** s for i in range(n)]
        total = sum(weights)
        u = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if u <= acc:
                return i
        return n - 1

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choices(items, weights=weights, k=1)[0]

    def partition_count(self, total: int, buckets: Sequence[float]) -> List[int]:
        """Split ``total`` into integer bucket counts proportional to weights.

        Largest-remainder rounding, so the parts always sum to ``total``
        and each bucket gets within one of its exact share.  Used to carve
        the world's listing count into per-marketplace / per-platform
        shares matching the paper's tables.
        """
        if total < 0:
            raise ValueError("total must be non-negative")
        weight_sum = float(sum(buckets))
        if weight_sum <= 0:
            raise ValueError("weights must sum to a positive value")
        exact = [total * w / weight_sum for w in buckets]
        floors = [int(x) for x in exact]
        remainder = total - sum(floors)
        order = sorted(
            range(len(buckets)), key=lambda i: exact[i] - floors[i], reverse=True
        )
        for i in order[:remainder]:
            floors[i] += 1
        return floors


__all__ = ["RngTree"]
