"""Shared utilities: seeded randomness, simulated time, stats, text, money.

Everything in :mod:`repro` that needs randomness draws it from an
:class:`~repro.util.rng.RngTree` so that an entire ecosystem, crawl, and
analysis run is reproducible from a single root seed.
"""

from repro.util.fileio import atomic_write, atomic_write_json, atomic_write_text
from repro.util.money import Money, format_usd
from repro.util.rng import RngTree
from repro.util.simtime import CollectionCalendar, SimClock, SimDate
from repro.util.stats import Summary, cdf_points, median, percentile, summarize

__all__ = [
    "CollectionCalendar",
    "Money",
    "RngTree",
    "SimClock",
    "SimDate",
    "Summary",
    "atomic_write",
    "atomic_write_json",
    "atomic_write_text",
    "cdf_points",
    "format_usd",
    "median",
    "percentile",
    "summarize",
]
