"""Text helpers shared by generators, extractors, and the NLP stack."""

from __future__ import annotations

import re
import unicodedata
from typing import Iterable, List

_SLUG_RE = re.compile(r"[^a-z0-9]+")
_WS_RE = re.compile(r"\s+")
_WORD_RE = re.compile(r"[A-Za-z][A-Za-z']*")
_NUMBER_RE = re.compile(r"[\d,.]+")


def slugify(text: str) -> str:
    """Lowercase ASCII slug suitable for URLs and identifiers.

    >>> slugify("Humor/Memes & Fun!")
    'humor-memes-fun'
    """
    normalized = unicodedata.normalize("NFKD", text)
    ascii_text = normalized.encode("ascii", "ignore").decode("ascii").lower()
    return _SLUG_RE.sub("-", ascii_text).strip("-")


def collapse_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip ends."""
    return _WS_RE.sub(" ", text).strip()


def words(text: str) -> List[str]:
    """Alphabetic word tokens, lowercased.

    Mirrors the paper's underground-listing similarity preprocessing
    ("case-insensitive similarity analysis after removing numbers and
    punctuation").
    """
    return [m.group(0).lower() for m in _WORD_RE.finditer(text)]


def strip_numbers(text: str) -> str:
    """Remove digit runs (with separators), as in the similarity analysis."""
    return collapse_whitespace(_NUMBER_RE.sub(" ", text))


def truncate(text: str, limit: int, ellipsis: str = "...") -> str:
    """Truncate to ``limit`` characters, appending an ellipsis if cut."""
    if limit < 0:
        raise ValueError("limit must be non-negative")
    if len(text) <= limit:
        return text
    if limit <= len(ellipsis):
        return text[:limit]
    return text[: limit - len(ellipsis)] + ellipsis


def compact_number(value: float) -> str:
    """Human-style compact counts used by marketplace UI (e.g. 2.1M).

    >>> compact_number(2_100_000)
    '2.1M'
    >>> compact_number(980)
    '980'
    """
    for threshold, suffix in ((1_000_000_000, "B"), (1_000_000, "M"), (1_000, "K")):
        if abs(value) >= threshold:
            scaled = value / threshold
            if scaled == int(scaled):
                return f"{int(scaled)}{suffix}"
            return f"{scaled:.1f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def parse_compact_number(text: str) -> int:
    """Parse marketplace-style counts back to integers.

    Accepts plain integers with separators ("1,078,130"), and compact
    suffixes ("2.1M", "69m", "13.5k").

    >>> parse_compact_number("2.1M")
    2100000
    >>> parse_compact_number("1,078,130")
    1078130
    """
    cleaned = text.strip().replace(",", "")
    if not cleaned:
        raise ValueError("empty number")
    suffix = cleaned[-1].upper()
    multipliers = {"K": 1_000, "M": 1_000_000, "B": 1_000_000_000}
    if suffix in multipliers:
        return int(float(cleaned[:-1]) * multipliers[suffix])
    return int(float(cleaned))


def oxford_join(items: Iterable[str]) -> str:
    """Join a list for prose output: 'a', 'a and b', 'a, b, and c'."""
    seq = list(items)
    if not seq:
        return ""
    if len(seq) == 1:
        return seq[0]
    if len(seq) == 2:
        return f"{seq[0]} and {seq[1]}"
    return ", ".join(seq[:-1]) + f", and {seq[-1]}"


__all__ = [
    "collapse_whitespace",
    "compact_number",
    "oxford_join",
    "parse_compact_number",
    "slugify",
    "strip_numbers",
    "truncate",
    "words",
]
