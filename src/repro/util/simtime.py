"""Simulated time: dates, a monotonic clock, and the collection calendar.

The paper's crawl ran from February to June 2024 in repeated iterations
(Figure 2 plots cumulative vs. active listings per iteration).  We model
that window as a :class:`CollectionCalendar` of evenly spaced snapshot
dates, and give the crawler a :class:`SimClock` so politeness delays and
rate limits are deterministic and free of wall-clock sleeps.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True, order=True)
class SimDate:
    """A calendar date in the simulated world (thin wrapper over ``date``)."""

    year: int
    month: int
    day: int

    @classmethod
    def of(cls, year: int, month: int, day: int) -> "SimDate":
        _dt.date(year, month, day)  # validate
        return cls(year, month, day)

    @classmethod
    def from_date(cls, d: _dt.date) -> "SimDate":
        return cls(d.year, d.month, d.day)

    def to_date(self) -> _dt.date:
        return _dt.date(self.year, self.month, self.day)

    def ordinal(self) -> int:
        return self.to_date().toordinal()

    def plus_days(self, days: int) -> "SimDate":
        return SimDate.from_date(self.to_date() + _dt.timedelta(days=days))

    def days_until(self, other: "SimDate") -> int:
        return other.ordinal() - self.ordinal()

    def isoformat(self) -> str:
        return self.to_date().isoformat()

    @classmethod
    def parse(cls, text: str) -> "SimDate":
        return cls.from_date(_dt.date.fromisoformat(text))

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.isoformat()


#: The paper's data-collection window (Section 1: "From February to June 2024").
STUDY_START = SimDate.of(2024, 2, 1)
STUDY_END = SimDate.of(2024, 6, 30)


class SimClock:
    """A monotonic simulated clock measured in seconds.

    The web client charges politeness delays and the rate limiters meter
    request budgets against this clock, so crawls are deterministic and
    run at CPU speed rather than wall-clock speed.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("start must be non-negative")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now


class CollectionCalendar:
    """Evenly spaced collection iterations across the study window.

    >>> cal = CollectionCalendar.paper_window(iterations=10)
    >>> len(cal)
    10
    >>> cal.dates[0]
    SimDate(year=2024, month=2, day=1)
    """

    def __init__(self, dates: List[SimDate]) -> None:
        if not dates:
            raise ValueError("a calendar needs at least one iteration date")
        if sorted(dates) != dates:
            raise ValueError("iteration dates must be sorted ascending")
        self.dates = list(dates)

    @classmethod
    def paper_window(cls, iterations: int = 10) -> "CollectionCalendar":
        """Build the Feb–Jun 2024 calendar with ``iterations`` snapshots."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if iterations == 1:
            return cls([STUDY_START])
        span = STUDY_START.days_until(STUDY_END)
        step = span / (iterations - 1)
        dates = [STUDY_START.plus_days(round(i * step)) for i in range(iterations)]
        return cls(dates)

    def __len__(self) -> int:
        return len(self.dates)

    def __iter__(self) -> Iterator[SimDate]:
        return iter(self.dates)

    def __getitem__(self, index: int) -> SimDate:
        return self.dates[index]

    def index_on_or_before(self, date: SimDate) -> int:
        """Return the index of the last iteration at or before ``date``."""
        best = -1
        for i, d in enumerate(self.dates):
            if d <= date:
                best = i
        if best < 0:
            raise ValueError(f"{date} precedes the first iteration")
        return best


__all__ = [
    "STUDY_END",
    "STUDY_START",
    "CollectionCalendar",
    "SimClock",
    "SimDate",
]
