"""Small statistics helpers used by the analyses and benchmarks.

The paper reports medians, min/median/max triples (Table 4), CDFs
(Figure 4), and percentage shares throughout.  These helpers keep that
arithmetic in one tested place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def median(values: Sequence[float]) -> float:
    """Median with the usual even-count interpolation.

    >>> median([1, 3, 2])
    2
    >>> median([1, 2, 3, 4])
    2.5
    """
    data = sorted(values)
    if not data:
        raise ValueError("median of an empty sequence")
    n = len(data)
    mid = n // 2
    if n % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of an empty sequence")
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lower = int(pos)
    upper = min(lower + 1, len(data) - 1)
    frac = pos - lower
    return data[lower] * (1 - frac) + data[upper] * frac


@dataclass(frozen=True)
class Summary:
    """Min / median / max / mean / count summary of a numeric sample."""

    count: int
    minimum: float
    median: float
    maximum: float
    mean: float
    total: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
            "mean": self.mean,
            "total": self.total,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty numeric sample."""
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    total = float(sum(values))
    return Summary(
        count=len(values),
        minimum=min(values),
        median=median(values),
        maximum=max(values),
        mean=total / len(values),
        total=total,
    )


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Return the empirical CDF as ``(value, fraction <= value)`` points.

    Used for Figure 4 (CDF of account-creation dates).

    >>> cdf_points([1, 1, 2])
    [(1, 0.6666666666666666), (2, 1.0)]
    """
    data = sorted(values)
    if not data:
        return []
    n = len(data)
    points: List[Tuple[float, float]] = []
    for i, v in enumerate(data):
        if i + 1 == n or data[i + 1] != v:
            points.append((v, (i + 1) / n))
    return points


def fraction_at_or_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of the sample that is <= ``threshold``."""
    if not values:
        raise ValueError("empty sample")
    return sum(1 for v in values if v <= threshold) / len(values)


def share(part: float, whole: float) -> float:
    """``part / whole`` as a percentage; 0 when ``whole`` is zero."""
    if whole == 0:
        return 0.0
    return 100.0 * part / whole


def counter_topn(counts: Dict[str, int], n: int) -> List[Tuple[str, int]]:
    """Top-``n`` (key, count) pairs, count-descending then key-ascending.

    Deterministic tie-breaking matters for reproducible table output.
    """
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def histogram(values: Iterable[float], edges: Sequence[float]) -> List[int]:
    """Count values into half-open bins ``[edges[i], edges[i+1])``.

    Values outside the edge range are dropped; the final bin is closed on
    the right so the maximum edge is inclusive.
    """
    if len(edges) < 2:
        raise ValueError("need at least two edges")
    if sorted(edges) != list(edges):
        raise ValueError("edges must be ascending")
    bins = [0] * (len(edges) - 1)
    lo, hi = edges[0], edges[-1]
    for v in values:
        if v < lo or v > hi:
            continue
        if v == hi:
            bins[-1] += 1
            continue
        # linear scan: edge lists here are tiny (years, price bands)
        for i in range(len(edges) - 1):
            if edges[i] <= v < edges[i + 1]:
                bins[i] += 1
                break
    return bins


__all__ = [
    "Summary",
    "cdf_points",
    "counter_topn",
    "fraction_at_or_below",
    "histogram",
    "median",
    "percentile",
    "share",
    "summarize",
]
