"""Crash-safe file writes shared by every JSON artifact emitter.

A study killed mid-export must never leave a torn ``manifest.json`` or
``scorecard.json`` behind: the run registry refuses to ingest artifacts
it cannot parse, so a half-written file poisons the whole telemetry
directory.  :func:`atomic_write` gives every emitter the same guarantee
the crawl checkpoint has had since PR 3 — write to a temp file in the
same directory, then :func:`os.replace` over the target — so any file
on disk is either the complete previous version or the complete new
one, never a mixture.

``fsync=True`` additionally flushes the temp file to stable storage
before the rename, for writers (the monitor's schedule ledger state,
lock files) whose durability matters across power loss, not just
process death.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Iterator, TextIO


@contextlib.contextmanager
def atomic_write(path: str, encoding: str = "utf-8",
                 fsync: bool = False) -> Iterator[TextIO]:
    """Open a temp file for writing; atomically rename onto ``path`` on
    clean exit.  On any exception the temp file is removed and ``path``
    is left untouched.

    The temp file lives in the target's directory (``os.replace`` is
    only atomic within one filesystem) and carries the writer's pid so
    two processes racing on the same target cannot clobber each other's
    temp file.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = f"{path}.tmp.{os.getpid()}"
    handle = open(temp_path, "w", encoding=encoding)
    try:
        yield handle
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
        handle.close()
        os.replace(temp_path, path)
    except BaseException:
        handle.close()
        with contextlib.suppress(OSError):
            os.remove(temp_path)
        raise


def atomic_write_json(path: str, payload, indent: int = 2,
                      sort_keys: bool = True,
                      trailing_newline: bool = False,
                      fsync: bool = False) -> str:
    """Serialize ``payload`` as JSON into ``path`` atomically; returns
    ``path`` for the common ``print(f"wrote {...}")`` idiom."""
    with atomic_write(path, fsync=fsync) as handle:
        json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
        if trailing_newline:
            handle.write("\n")
    return path


def atomic_write_text(path: str, text: str, fsync: bool = False) -> str:
    """Write a complete text file atomically."""
    with atomic_write(path, fsync=fsync) as handle:
        handle.write(text)
    return path


__all__ = ["atomic_write", "atomic_write_json", "atomic_write_text"]
