"""Crash-safe file writes shared by every JSON artifact emitter.

A study killed mid-export must never leave a torn ``manifest.json`` or
``scorecard.json`` behind: the run registry refuses to ingest artifacts
it cannot parse, so a half-written file poisons the whole telemetry
directory.  :func:`atomic_write` gives every emitter the same guarantee
the crawl checkpoint has had since PR 3 — write to a temp file in the
same directory, then :func:`os.replace` over the target — so any file
on disk is either the complete previous version or the complete new
one, never a mixture.

``fsync=True`` additionally flushes the temp file to stable storage
before the rename, for writers (the monitor's schedule ledger state,
lock files) whose durability matters across power loss, not just
process death.

``faults`` (a :class:`repro.faults.disk.DiskFaultInjector`) routes the
write and fsync through the storage-plane chaos layer; an injected
failure behaves exactly like the real one — the temp file is removed
and the target is untouched, so a chaos run can never tear a file the
plain path would have written atomically.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Iterable, Iterator, TextIO


@contextlib.contextmanager
def atomic_write(path: str, encoding: str = "utf-8",
                 fsync: bool = False, faults=None) -> Iterator[TextIO]:
    """Open a temp file for writing; atomically rename onto ``path`` on
    clean exit.  On any exception the temp file is removed and ``path``
    is left untouched.

    The temp file lives in the target's directory (``os.replace`` is
    only atomic within one filesystem) and carries the writer's pid so
    two processes racing on the same target cannot clobber each other's
    temp file.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = f"{path}.tmp.{os.getpid()}"
    handle = open(temp_path, "w", encoding=encoding)
    try:
        yield handle
        handle.flush()
        if fsync:
            if faults is not None:
                faults.fsync(path, handle.fileno())
            else:
                os.fsync(handle.fileno())
        handle.close()
        os.replace(temp_path, path)
    except BaseException:
        handle.close()
        with contextlib.suppress(OSError):
            os.remove(temp_path)
        raise


def _write(handle: TextIO, path: str, text: str, faults=None) -> None:
    if faults is not None:
        faults.write(handle, path, text)
    else:
        handle.write(text)


def atomic_write_json(path: str, payload, indent: int = 2,
                      sort_keys: bool = True,
                      trailing_newline: bool = False,
                      fsync: bool = False, faults=None) -> str:
    """Serialize ``payload`` as JSON into ``path`` atomically; returns
    ``path`` for the common ``print(f"wrote {...}")`` idiom."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    if trailing_newline:
        text += "\n"
    with atomic_write(path, fsync=fsync, faults=faults) as handle:
        _write(handle, path, text, faults=faults)
    return path


def atomic_write_text(path: str, text: str, fsync: bool = False,
                      faults=None) -> str:
    """Write a complete text file atomically."""
    with atomic_write(path, fsync=fsync, faults=faults) as handle:
        _write(handle, path, text, faults=faults)
    return path


def atomic_write_lines(path: str, lines: Iterable[str],
                       fsync: bool = False, faults=None) -> str:
    """Write a complete line-oriented file (JSONL and friends)
    atomically: every line gets its ``\\n``, and a crash mid-write
    leaves the previous file (or no file), never a torn one."""
    with atomic_write(path, fsync=fsync, faults=faults) as handle:
        for line in lines:
            _write(handle, path, line + "\n", faults=faults)
    return path


__all__ = [
    "atomic_write",
    "atomic_write_json",
    "atomic_write_lines",
    "atomic_write_text",
]

