"""Series builders for the paper's figures.

* Figure 2 — cumulative vs active listings per collection iteration;
* Figure 3 — the extreme-price exemplar listing;
* Figure 4 — CDF of account-creation dates per platform;
* Figure 5 — exemplar cluster profile descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.network import NetworkReport
from repro.core.dataset import ListingRecord, MeasurementDataset
from repro.util.simtime import SimDate
from repro.util.stats import cdf_points


@dataclass
class ListingDynamics:
    """Figure-2 series."""

    iterations: List[int]
    active: List[int]
    cumulative: List[int]

    @property
    def peak_active_iteration(self) -> int:
        return max(range(len(self.active)), key=lambda i: self.active[i])

    @property
    def active_declines(self) -> bool:
        """Does the active curve end below its peak (the Figure-2 dip)?"""
        if not self.active:
            return False
        return self.active[-1] < max(self.active)

    @property
    def cumulative_monotonic(self) -> bool:
        return all(b >= a for a, b in zip(self.cumulative, self.cumulative[1:]))


def listing_dynamics(active: List[int], cumulative: List[int]) -> ListingDynamics:
    if len(active) != len(cumulative):
        raise ValueError("active and cumulative series must align")
    return ListingDynamics(
        iterations=list(range(len(active))),
        active=list(active),
        cumulative=list(cumulative),
    )


def fig3_outlier(dataset: MeasurementDataset,
                 threshold: float = 10_000_000.0) -> Optional[ListingRecord]:
    """The highest-priced listing at/above the outlier threshold."""
    candidates = [
        l for l in dataset.listings
        if l.price_usd is not None and l.price_usd >= threshold
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda l: l.price_usd or 0)


def creation_cdf(dataset: MeasurementDataset) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 4: per-platform CDF over creation dates (as year fractions).

    Returns ``{platform: [(year_fraction, cdf), ...]}`` plus an "All"
    series; year fractions make the x-axis directly plottable.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    all_values: List[float] = []
    for platform, profiles in sorted(dataset.profiles_by_platform().items()):
        values = [
            _year_fraction(SimDate.parse(p.created))
            for p in profiles
            if p.is_active and p.created
        ]
        if values:
            series[platform] = cdf_points(values)
            all_values.extend(values)
    if all_values:
        series["All"] = cdf_points(all_values)
    return series


def _year_fraction(date: SimDate) -> float:
    start = SimDate.of(date.year, 1, 1)
    return date.year + start.days_until(date) / 366.0


def fig5_descriptions(network: NetworkReport, n: int = 3) -> List[str]:
    """Figure 5: the shared descriptions of the largest clusters."""
    exemplars = network.exemplars(n)
    descriptions = []
    for cluster in exemplars:
        if cluster.attribute == "description":
            descriptions.append(cluster.value)
        else:
            member = cluster.members[0]
            descriptions.append(member.description or cluster.value)
    return descriptions


__all__ = [
    "ListingDynamics",
    "creation_cdf",
    "fig3_outlier",
    "fig5_descriptions",
    "listing_dynamics",
]
