"""Module 3 of the pipeline: tracking and analysis.

Every analysis consumes only the :class:`~repro.core.dataset.MeasurementDataset`
(what the crawler and collectors extracted), never the synthetic world's
ground truth — ground truth is used exclusively by the test suite to
score these analyses.

* :mod:`repro.analysis.marketplace_anatomy` — Section 4.1 / Tables 1–3;
* :mod:`repro.analysis.underground_analysis` — Section 4.2;
* :mod:`repro.analysis.account_setup` — Section 5 / Table 4 / Figure 4;
* :mod:`repro.analysis.scam_posts` — Section 6 / Tables 5–6;
* :mod:`repro.analysis.network` — Section 7 / Table 7 / Figure 5;
* :mod:`repro.analysis.efficacy` — Section 8 / Table 8;
* :mod:`repro.analysis.figures` — Figure 2 / Figure 4 series builders.
"""

from repro.analysis.account_setup import AccountSetupAnalysis
from repro.analysis.efficacy import EfficacyAnalysis
from repro.analysis.indicators import IndicatorEngine
from repro.analysis.infrastructure import InfrastructureAnalysis
from repro.analysis.marketplace_anatomy import MarketplaceAnatomy
from repro.analysis.network import NetworkAnalysis
from repro.analysis.scam_posts import ScamPostAnalysis, ScamPipelineConfig
from repro.analysis.sellers import SellerActivityAnalysis
from repro.analysis.underground_analysis import UndergroundAnalysis

__all__ = [
    "AccountSetupAnalysis",
    "EfficacyAnalysis",
    "IndicatorEngine",
    "InfrastructureAnalysis",
    "MarketplaceAnatomy",
    "NetworkAnalysis",
    "ScamPipelineConfig",
    "ScamPostAnalysis",
    "SellerActivityAnalysis",
    "UndergroundAnalysis",
]
