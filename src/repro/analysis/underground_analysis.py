"""Section 4.2: anatomy of the underground marketplaces.

From the manually collected postings: per-market activity and platform
specialization, posting length statistics, the text-reuse analysis
(case-insensitive word similarity after stripping numbers/punctuation,
grouped at the 88 % threshold), and cross-market seller identities.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.dataset import UndergroundRecord
from repro.nlp.similarity import ReuseGroup, reuse_groups
from repro.util.stats import median
from repro.util.textutil import words


@dataclass
class MarketStats:
    """Per-market summary (Section 4.2's narrative)."""

    market: str
    posts: int
    sellers: int
    platforms: Tuple[str, ...]
    mean_post_words: float
    bulk_posts: int  # quantity > 1


@dataclass
class PlatformReuse:
    """Per-platform reuse summary."""

    platform: str
    posts: int
    reused_posts: int
    groups: int
    authors_involved: int
    min_similarity: float
    max_similarity: float


@dataclass
class UndergroundReport:
    total_posts: int
    markets: Dict[str, MarketStats]
    posts_per_platform: Counter
    reuse_by_platform: Dict[str, PlatformReuse]
    cross_market_sellers: List[str]
    mean_words_range: Tuple[float, float]  # (min market mean, max market mean)
    groups: List[ReuseGroup] = field(default_factory=list)

    @property
    def most_active_market(self) -> str:
        return max(self.markets.values(), key=lambda m: m.posts).market


class UndergroundAnalysis:
    """Computes the Section-4.2 report from collected postings."""

    def __init__(self, similarity_threshold: float = 0.88) -> None:
        self.similarity_threshold = similarity_threshold

    def run(self, postings: List[UndergroundRecord]) -> UndergroundReport:
        markets = self._market_stats(postings)
        posts_per_platform = Counter(
            p.platform for p in postings if p.platform
        )
        reuse = self._reuse_analysis(postings)
        means = [m.mean_post_words for m in markets.values() if m.posts]
        return UndergroundReport(
            total_posts=len(postings),
            markets=markets,
            posts_per_platform=posts_per_platform,
            reuse_by_platform=reuse[0],
            groups=reuse[1],
            cross_market_sellers=self._cross_market_sellers(postings),
            mean_words_range=(min(means), max(means)) if means else (0.0, 0.0),
        )

    def _market_stats(self, postings: List[UndergroundRecord]) -> Dict[str, MarketStats]:
        by_market: Dict[str, List[UndergroundRecord]] = {}
        for posting in postings:
            by_market.setdefault(posting.market, []).append(posting)
        stats: Dict[str, MarketStats] = {}
        for market, records in sorted(by_market.items()):
            lengths = [len(words(r.body)) for r in records]
            stats[market] = MarketStats(
                market=market,
                posts=len(records),
                sellers=len({r.author for r in records}),
                platforms=tuple(sorted({r.platform for r in records if r.platform})),
                mean_post_words=sum(lengths) / len(lengths) if lengths else 0.0,
                bulk_posts=sum(1 for r in records if r.quantity > 1),
            )
        return stats

    def _reuse_analysis(
        self, postings: List[UndergroundRecord]
    ) -> Tuple[Dict[str, PlatformReuse], List[ReuseGroup]]:
        """Per-platform similarity grouping, plus the global groups.

        Groups are computed over the whole corpus (reuse crosses markets
        and platforms), then attributed per platform.
        """
        texts = [p.body for p in postings]
        groups = reuse_groups(texts, threshold=self.similarity_threshold)
        in_group: Dict[int, ReuseGroup] = {}
        for group in groups:
            for index in group.indices:
                in_group[index] = group
        per_platform: Dict[str, PlatformReuse] = {}
        platforms = sorted({p.platform for p in postings if p.platform})
        for platform in platforms:
            indices = [i for i, p in enumerate(postings) if p.platform == platform]
            reused = [i for i in indices if i in in_group]
            platform_groups: Set[int] = {id(in_group[i]) for i in reused}
            authors = {postings[i].author for i in reused}
            sims = [
                (in_group[i].min_similarity, in_group[i].max_similarity)
                for i in reused
            ]
            per_platform[platform] = PlatformReuse(
                platform=platform,
                posts=len(indices),
                reused_posts=len(reused),
                groups=len(platform_groups),
                authors_involved=len(authors),
                min_similarity=min((s[0] for s in sims), default=0.0),
                max_similarity=max((s[1] for s in sims), default=0.0),
            )
        return per_platform, groups

    @staticmethod
    def _cross_market_sellers(postings: List[UndergroundRecord]) -> List[str]:
        markets_by_author: Dict[str, Set[str]] = {}
        for posting in postings:
            markets_by_author.setdefault(posting.author, set()).add(posting.market)
        return sorted(
            author for author, markets in markets_by_author.items() if len(markets) > 1
        )


__all__ = [
    "MarketStats",
    "PlatformReuse",
    "UndergroundAnalysis",
    "UndergroundReport",
]
