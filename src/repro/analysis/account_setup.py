"""Section 5: account setup and engagement of the visible profiles.

Computed from the collected :class:`~repro.core.dataset.ProfileRecord`
population: locations, affiliated categories, account types, creation
dates (Figure 4), and follower statistics (Table 4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.dataset import MeasurementDataset, ProfileRecord
from repro.util.simtime import SimDate
from repro.util.stats import Summary, counter_topn, summarize


@dataclass
class CreationStats:
    """Figure-4 aggregates for one platform (or all)."""

    count: int
    pre_2020_fraction: float
    recent_fraction: float  # created in the ~3.5y before the study
    earliest_year: int
    latest_year: int
    #: Fraction created 2006–2010 (the YouTube footnote).
    fraction_2006_2010: float


@dataclass
class AccountSetupReport:
    profiles_total: int
    active_total: int
    locations: Counter
    location_count: int
    affiliated: Counter
    affiliated_count: int
    account_types: Counter
    creation_by_platform: Dict[str, CreationStats]
    creation_overall: CreationStats
    followers_by_platform: Dict[str, Summary]
    followers_overall: Summary


def _creation_stats(dates: List[SimDate]) -> CreationStats:
    if not dates:
        return CreationStats(0, 0.0, 0.0, 0, 0, 0.0)
    years = [d.year for d in dates]
    pre_2020 = sum(1 for d in dates if d.year < 2020)
    recent_floor = SimDate.of(2020, 12, 1)  # 3.5 years before mid-2024
    recent = sum(1 for d in dates if d >= recent_floor)
    old_window = sum(1 for d in dates if 2006 <= d.year <= 2010)
    n = len(dates)
    return CreationStats(
        count=n,
        pre_2020_fraction=pre_2020 / n,
        recent_fraction=recent / n,
        earliest_year=min(years),
        latest_year=max(years),
        fraction_2006_2010=old_window / n,
    )


class AccountSetupAnalysis:
    """Computes the Section-5 report from collected profiles."""

    def run(self, dataset: MeasurementDataset) -> AccountSetupReport:
        profiles = dataset.profiles
        active = [p for p in profiles if p.is_active]
        locations = Counter(p.location for p in active if p.location)
        affiliated = Counter(p.category for p in active if p.category)
        account_types = Counter(
            p.account_type for p in active if p.account_type and p.account_type != "standard"
        )
        creation_by_platform: Dict[str, CreationStats] = {}
        all_dates: List[SimDate] = []
        followers_by_platform: Dict[str, Summary] = {}
        all_followers: List[int] = []
        for platform, records in sorted(dataset.profiles_by_platform().items()):
            dates = [
                SimDate.parse(r.created)
                for r in records
                if r.is_active and r.created
            ]
            creation_by_platform[platform] = _creation_stats(dates)
            all_dates.extend(dates)
            followers = [
                r.followers for r in records if r.is_active and r.followers is not None
            ]
            if followers:
                followers_by_platform[platform] = summarize(followers)
                all_followers.extend(followers)
        return AccountSetupReport(
            profiles_total=len(profiles),
            active_total=len(active),
            locations=locations,
            location_count=sum(locations.values()),
            affiliated=affiliated,
            affiliated_count=sum(affiliated.values()),
            account_types=account_types,
            creation_by_platform=creation_by_platform,
            creation_overall=_creation_stats(all_dates),
            followers_by_platform=followers_by_platform,
            followers_overall=summarize(all_followers)
            if all_followers
            else Summary(0, 0, 0, 0, 0, 0),
        )

    @staticmethod
    def top_locations(report: AccountSetupReport, n: int = 5) -> List[Tuple[str, int]]:
        return counter_topn(report.locations, n)

    @staticmethod
    def top_affiliated(report: AccountSetupReport, n: int = 5) -> List[Tuple[str, int]]:
        return counter_topn(report.affiliated, n)


__all__ = ["AccountSetupAnalysis", "AccountSetupReport", "CreationStats"]
