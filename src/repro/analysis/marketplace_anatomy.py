"""Section 4.1: anatomy of the public marketplaces (Tables 1–3).

Everything here is computed from extracted listing/seller records:
per-marketplace volumes, seller countries, category structure, verified
claims, monetization, description strategies, advertised followers,
prices (medians, totals, the >$20K block, the Figure-3 outlier), and the
payment-method matrix.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.dataset import ListingRecord, MeasurementDataset, SellerRecord
from repro.util.money import is_valid_price
from repro.util.stats import Summary, counter_topn, median, summarize

#: Keyword rules for the eight description strategies (Section 4.1's
#: "manual evaluation based on keyword analysis", as an explicit codebook).
DESCRIPTION_STRATEGY_RULES: Dict[str, Tuple[str, ...]] = {
    "authentic": ("authentic", "real followers", "no bots"),
    "fresh_and_ready": ("fresh and ready", "no shout outs"),
    "business_adaptability": ("rebrand", "any business niche", "adapt"),
    "real_user_activity": ("daily activity", "real users with"),
    "original_email_included": ("original email", "ownership transfer"),
    "never_monetized": ("never monetized", "no strikes"),
    "aged_account": ("aged account", "registered years ago"),
    "bulk_discount": ("bulk packages", "wholesale prices"),
}


def classify_description_strategy(description: str) -> Optional[str]:
    """Match a listing description against the strategy codebook."""
    lowered = description.lower()
    for strategy, needles in DESCRIPTION_STRATEGY_RULES.items():
        if any(needle in lowered for needle in needles):
            return strategy
    return None


#: Keyword rules for the three income-source narratives Section 4.1
#: counts (335 generic ad revenue, 73 AdSense, 73 memberships).
INCOME_NARRATIVE_RULES: Dict[str, Tuple[str, ...]] = {
    "generic ad-based revenue": ("promotion plans", "selling promotion", "revenue share", "sell posts"),
    "Google AdSense": ("adsense",),
    "premium memberships / channel monetization": ("memberships", "watermarks", "promo videos"),
}


def classify_income_narrative(text: str) -> Optional[str]:
    """Match an income-source blurb against the narrative codebook."""
    lowered = text.lower()
    for narrative, needles in INCOME_NARRATIVE_RULES.items():
        if any(needle in lowered for needle in needles):
            return narrative
    return None


@dataclass
class PriceReport:
    """Price structure of the advertised listings (Section 4.1)."""

    medians_by_platform: Dict[str, float]
    totals_by_platform: Dict[str, float]
    overall_median: float
    overall_total: float
    high_price_count: int
    high_price_median: float
    high_price_max: float
    high_price_total: float
    #: Listings priced so absurdly they distort aggregates (Figure 3).
    outliers: List[ListingRecord] = field(default_factory=list)

    @property
    def top_platform(self) -> str:
        return max(self.totals_by_platform, key=lambda p: self.totals_by_platform[p])

    @property
    def bottom_platform(self) -> str:
        return min(self.totals_by_platform, key=lambda p: self.totals_by_platform[p])


@dataclass
class AnatomyReport:
    """All Section-4.1 aggregates."""

    listings_total: int
    sellers_total: int
    table1: Dict[str, Tuple[int, int]]  # marketplace -> (sellers, listings)
    table2: Dict[str, Tuple[int, int, int]]  # platform -> (visible, posts, all)
    visible_total: int
    posts_total: int
    seller_countries: Counter
    seller_country_disclosed: int
    category_counts: Counter
    uncategorized: int
    verified_count: int
    verified_platforms: Counter
    verified_with_profile_url: int
    monetized: Summary  # monthly revenue summary over monetized listings
    income_source_count: int
    income_narratives: Counter
    description_count: int
    strategy_counts: Counter
    followers_shown_count: int
    follower_medians_by_platform: Dict[str, float]
    prices: PriceReport


class MarketplaceAnatomy:
    """Computes the Section-4.1 report from a measurement dataset."""

    def __init__(self, outlier_threshold: float = 10_000_000.0,
                 high_price_threshold: float = 20_000.0) -> None:
        self.outlier_threshold = outlier_threshold
        self.high_price_threshold = high_price_threshold

    def run(self, dataset: MeasurementDataset) -> AnatomyReport:
        listings = dataset.listings
        return AnatomyReport(
            listings_total=len(listings),
            sellers_total=len(dataset.sellers),
            table1=self._table1(dataset),
            table2=self._table2(dataset),
            visible_total=len(dataset.visible_listings()),
            posts_total=len(dataset.posts),
            seller_countries=self._seller_countries(dataset.sellers),
            seller_country_disclosed=sum(
                1 for s in dataset.sellers if s.country
            ),
            category_counts=self._categories(listings),
            uncategorized=sum(1 for l in listings if not l.category),
            verified_count=sum(1 for l in listings if l.verified_claim),
            verified_platforms=Counter(
                l.platform for l in listings if l.verified_claim and l.platform
            ),
            verified_with_profile_url=sum(
                1 for l in listings if l.verified_claim and l.has_visible_profile
            ),
            monetized=self._monetization(listings),
            income_source_count=sum(1 for l in listings if l.income_source),
            income_narratives=Counter(
                narrative
                for narrative in (
                    classify_income_narrative(l.income_source)
                    for l in listings if l.income_source
                )
                if narrative
            ),
            description_count=sum(1 for l in listings if l.description),
            strategy_counts=self._strategies(listings),
            followers_shown_count=sum(
                1 for l in listings if l.followers_claimed is not None
            ),
            follower_medians_by_platform=self._follower_medians(listings),
            prices=self.price_report(listings),
        )

    # -- tables -----------------------------------------------------------

    def _table1(self, dataset: MeasurementDataset) -> Dict[str, Tuple[int, int]]:
        listings_by_market = dataset.listings_by_marketplace()
        sellers_by_market: Counter = Counter(s.marketplace for s in dataset.sellers)
        return {
            market: (sellers_by_market.get(market, 0), len(records))
            for market, records in sorted(
                listings_by_market.items(), key=lambda kv: -len(kv[1])
            )
        }

    def _table2(self, dataset: MeasurementDataset) -> Dict[str, Tuple[int, int, int]]:
        all_by_platform: Counter = Counter(
            l.platform for l in dataset.listings if l.platform
        )
        visible_by_platform: Counter = Counter(
            l.platform for l in dataset.visible_listings() if l.platform
        )
        posts_by_platform: Counter = Counter(p.platform for p in dataset.posts)
        return {
            platform: (
                visible_by_platform.get(platform, 0),
                posts_by_platform.get(platform, 0),
                all_by_platform.get(platform, 0),
            )
            for platform in sorted(all_by_platform)
        }

    # -- sellers ---------------------------------------------------------------

    def _seller_countries(self, sellers: List[SellerRecord]) -> Counter:
        return Counter(s.country for s in sellers if s.country)

    # -- categories ---------------------------------------------------------------

    def _categories(self, listings: List[ListingRecord]) -> Counter:
        return Counter(l.category for l in listings if l.category)

    # -- monetization -----------------------------------------------------------------

    def _monetization(self, listings: List[ListingRecord]) -> Summary:
        revenues = [
            l.monthly_revenue_usd for l in listings
            if is_valid_price(l.monthly_revenue_usd)
        ]
        if not revenues:
            return Summary(count=0, minimum=0, median=0, maximum=0, mean=0, total=0)
        return summarize(revenues)

    # -- descriptions -------------------------------------------------------------------

    def _strategies(self, listings: List[ListingRecord]) -> Counter:
        counts: Counter = Counter()
        for listing in listings:
            if not listing.description:
                continue
            strategy = classify_description_strategy(listing.description)
            if strategy:
                counts[strategy] += 1
        return counts

    # -- followers ------------------------------------------------------------------------

    def _follower_medians(self, listings: List[ListingRecord]) -> Dict[str, float]:
        by_platform: Dict[str, List[int]] = {}
        for listing in listings:
            if listing.followers_claimed is not None and listing.platform:
                by_platform.setdefault(listing.platform, []).append(
                    listing.followers_claimed
                )
        return {p: median(values) for p, values in sorted(by_platform.items())}

    # -- prices ----------------------------------------------------------------------------

    def price_report(self, listings: List[ListingRecord]) -> PriceReport:
        # is_valid_price (not a None check): a NaN that slipped past the
        # contract boundary must not poison every aggregate below.
        priced = [l for l in listings if is_valid_price(l.price_usd)]
        outliers = [l for l in priced if l.price_usd >= self.outlier_threshold]
        regular = [l for l in priced if l.price_usd < self.outlier_threshold]
        by_platform: Dict[str, List[float]] = {}
        for listing in regular:
            if listing.platform:
                by_platform.setdefault(listing.platform, []).append(listing.price_usd)
        high = [l.price_usd for l in regular if l.price_usd > self.high_price_threshold]
        all_prices = [l.price_usd for l in regular]
        return PriceReport(
            medians_by_platform={p: median(v) for p, v in sorted(by_platform.items())},
            totals_by_platform={p: sum(v) for p, v in sorted(by_platform.items())},
            overall_median=median(all_prices) if all_prices else 0.0,
            overall_total=sum(all_prices),
            high_price_count=len(high),
            high_price_median=median(high) if high else 0.0,
            high_price_max=max(high) if high else 0.0,
            high_price_total=sum(high),
            outliers=sorted(outliers, key=lambda l: -(l.price_usd or 0)),
        )

    # -- payments (Table 3) --------------------------------------------------------------------

    @staticmethod
    def payment_matrix(
        payment_methods: Dict[str, List[Tuple[str, str]]]
    ) -> Dict[str, Dict[str, List[str]]]:
        """marketplace -> group -> methods; markets with no public info
        get the single group 'Unknown' (as in Table 3)."""
        matrix: Dict[str, Dict[str, List[str]]] = {}
        for market, methods in payment_methods.items():
            groups: Dict[str, List[str]] = {}
            for group, method in methods:
                groups.setdefault(group, []).append(method)
            if not groups:
                groups["Unknown"] = ["Unknown"]
            matrix[market] = {g: sorted(ms) for g, ms in sorted(groups.items())}
        return matrix

    @staticmethod
    def top_categories(report: AnatomyReport, n: int = 5) -> List[Tuple[str, int]]:
        return counter_topn(report.category_counts, n)

    @staticmethod
    def top_seller_countries(report: AnatomyReport, n: int = 5) -> List[Tuple[str, int]]:
        return counter_topn(report.seller_countries, n)


__all__ = [
    "AnatomyReport",
    "DESCRIPTION_STRATEGY_RULES",
    "MarketplaceAnatomy",
    "PriceReport",
    "classify_description_strategy",
]
