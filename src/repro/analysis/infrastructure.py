"""Scam infrastructure analysis: the domains behind scam posts.

Section 6's scam posts lure victims to external destinations (fake
claim pages, login-verification sites, giveaway drops).  This analysis
extracts every domain referenced in collected posts and measures how
the infrastructure is shared: a domain promoted by many distinct
accounts is campaign infrastructure, not a one-off — the same intuition
behind the spam-URL measurements the paper cites (Grier et al., Gao et
al.).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.dataset import PostRecord

#: Bare domains as they appear in post text (scam lures rarely bother
#: with a scheme), plus full URLs.
_DOMAIN_RE = re.compile(
    r"(?:https?://)?((?:[a-z0-9][a-z0-9-]*\.)+"
    r"(?:example|com|net|io|org|xyz|link|onion))(?:/\S*)?",
    re.IGNORECASE,
)

#: Domains that are destinations of the platforms themselves, not lures.
PLATFORM_DOMAINS = frozenset(
    {"x.example", "instagram.example", "facebook.example",
     "tiktok.example", "youtube.example"}
)


def extract_domains(text: str) -> List[str]:
    """Lowercased external domains mentioned in a post.

    >>> extract_domains("claim now at Secure-Claim-Now.example today")
    ['secure-claim-now.example']
    """
    found = []
    for match in _DOMAIN_RE.finditer(text):
        domain = match.group(1).lower()
        if domain not in PLATFORM_DOMAINS:
            found.append(domain)
    return found


@dataclass
class DomainProfile:
    """One lure domain's footprint across the collected posts."""

    domain: str
    posts: int
    accounts: int
    platforms: Tuple[str, ...]

    @property
    def is_shared_infrastructure(self) -> bool:
        """Promoted by several distinct accounts -> campaign, not one-off."""
        return self.accounts >= 3


@dataclass
class InfrastructureReport:
    posts_with_domains: int
    domains: List[DomainProfile] = field(default_factory=list)

    @property
    def total_domains(self) -> int:
        return len(self.domains)

    @property
    def shared_domains(self) -> List[DomainProfile]:
        return [d for d in self.domains if d.is_shared_infrastructure]

    def top_domains(self, n: int = 10) -> List[DomainProfile]:
        return sorted(self.domains, key=lambda d: (-d.accounts, d.domain))[:n]


class InfrastructureAnalysis:
    """Aggregates lure domains over a post corpus."""

    def run(self, posts: Sequence[PostRecord]) -> InfrastructureReport:
        post_counts: Counter = Counter()
        accounts: Dict[str, Set[Tuple[str, str]]] = {}
        platforms: Dict[str, Set[str]] = {}
        posts_with_domains = 0
        for post in posts:
            domains = set(extract_domains(post.text))
            if not domains:
                continue
            posts_with_domains += 1
            for domain in domains:
                post_counts[domain] += 1
                accounts.setdefault(domain, set()).add((post.platform, post.handle))
                platforms.setdefault(domain, set()).add(post.platform)
        profiles = [
            DomainProfile(
                domain=domain,
                posts=count,
                accounts=len(accounts[domain]),
                platforms=tuple(sorted(platforms[domain])),
            )
            for domain, count in sorted(post_counts.items())
        ]
        return InfrastructureReport(
            posts_with_domains=posts_with_domains,
            domains=profiles,
        )


__all__ = [
    "DomainProfile",
    "InfrastructureAnalysis",
    "InfrastructureReport",
    "extract_domains",
]
