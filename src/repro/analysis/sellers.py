"""Seller activity profiling (Section 10's "Profiling Seller Activity").

The paper's lessons-learned highlights two seller-side behaviours:
inventory *replenishment* (listings keep arriving to match demand —
Figure 2's cumulative growth) and *cross-channel operations* (the same
seller identities active in more than one venue, including identical
usernames on dark-web and public marketplaces).  This module measures
both from the collected records.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.dataset import ListingRecord, MeasurementDataset, UndergroundRecord
from repro.util.stats import median
from repro.util.textutil import slugify


@dataclass
class SellerActivity:
    """Aggregate activity of one seller."""

    seller_url: str
    marketplace: str
    name: str
    listings: int
    platforms: Tuple[str, ...]
    #: Iterations at which this seller's listings first appeared.
    arrival_iterations: Tuple[int, ...]

    @property
    def replenishes(self) -> bool:
        """Did the seller add inventory after their first appearance?"""
        return len(set(self.arrival_iterations)) > 1


@dataclass
class SellerReport:
    sellers_total: int
    activities: List[SellerActivity]
    #: listings-per-seller distribution summary.
    listings_per_seller_median: float
    listings_per_seller_max: int
    #: Sellers whose listings span >1 platform.
    multi_platform_sellers: int
    #: Sellers that added listings in later iterations (replenishment).
    replenishing_sellers: int
    #: Seller names appearing in more than one public marketplace.
    cross_market_names: List[str] = field(default_factory=list)
    #: Public seller names that also appear as underground authors.
    public_underground_overlap: List[str] = field(default_factory=list)

    @property
    def replenishment_share(self) -> float:
        if not self.sellers_total:
            return 0.0
        return self.replenishing_sellers / self.sellers_total

    def top_sellers(self, n: int = 5) -> List[SellerActivity]:
        return sorted(
            self.activities, key=lambda a: (-a.listings, a.seller_url)
        )[:n]


def _normalize_name(name: str) -> str:
    return slugify(name)


class SellerActivityAnalysis:
    """Builds the seller-activity report from listings + seller records."""

    def run(self, dataset: MeasurementDataset) -> SellerReport:
        names = {s.seller_url: s.name or "" for s in dataset.sellers}
        grouped: Dict[str, List[ListingRecord]] = {}
        for listing in dataset.listings:
            if listing.seller_url:
                grouped.setdefault(listing.seller_url, []).append(listing)
        activities = []
        for seller_url, listings in sorted(grouped.items()):
            activities.append(
                SellerActivity(
                    seller_url=seller_url,
                    marketplace=listings[0].marketplace,
                    name=names.get(seller_url, listings[0].seller_name or ""),
                    listings=len(listings),
                    platforms=tuple(sorted({
                        l.platform for l in listings if l.platform
                    })),
                    arrival_iterations=tuple(sorted({
                        l.first_seen_iteration for l in listings
                    })),
                )
            )
        counts = [a.listings for a in activities]
        return SellerReport(
            sellers_total=len(activities),
            activities=activities,
            listings_per_seller_median=median(counts) if counts else 0.0,
            listings_per_seller_max=max(counts) if counts else 0,
            multi_platform_sellers=sum(
                1 for a in activities if len(a.platforms) > 1
            ),
            replenishing_sellers=sum(1 for a in activities if a.replenishes),
            cross_market_names=self._cross_market_names(activities),
            public_underground_overlap=self._underground_overlap(
                activities, dataset.underground
            ),
        )

    @staticmethod
    def _cross_market_names(activities: List[SellerActivity]) -> List[str]:
        markets_by_name: Dict[str, set] = {}
        for activity in activities:
            key = _normalize_name(activity.name)
            if key:
                markets_by_name.setdefault(key, set()).add(activity.marketplace)
        return sorted(
            name for name, markets in markets_by_name.items() if len(markets) > 1
        )

    @staticmethod
    def _underground_overlap(
        activities: List[SellerActivity],
        underground: List[UndergroundRecord],
    ) -> List[str]:
        public_names = {_normalize_name(a.name) for a in activities}
        public_names.discard("")
        underground_authors = {_normalize_name(u.author) for u in underground}
        return sorted(public_names & underground_authors)


__all__ = ["SellerActivity", "SellerActivityAnalysis", "SellerReport"]
