"""Section 7: tracking and network analysis (Table 7, Figure 5).

Profiles are grouped into clusters when they share identity-bearing
metadata, with the attribute set the paper used per platform: TikTok
descriptions, YouTube names, Instagram biographies, Facebook contact
details (email / phone / website), and X names or descriptions.  Buckets
with two or more distinct accounts form clusters; the rest are
singletons.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.dataset import MeasurementDataset, ProfileRecord
from repro.util.stats import median

#: platform -> attributes used for clustering (Table 7's first column).
CLUSTER_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    "TikTok": ("description",),
    "YouTube": ("name",),
    "Instagram": ("description",),  # "biography" in the paper's wording
    "Facebook": ("email", "phone", "website"),
    "X": ("name", "description"),
}


@dataclass
class ProfileCluster:
    """One attribute-sharing cluster of profiles."""

    cluster_id: str
    platform: str
    attribute: str
    value: str
    members: List[ProfileRecord] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class PlatformClusterStats:
    """One row of Table 7."""

    platform: str
    attributes: str
    clusters: int
    cluster_accounts: int
    singletons: int
    min_size: int
    max_size: int
    median_size: float

    @property
    def cluster_fraction(self) -> float:
        total = self.cluster_accounts + self.singletons
        return self.cluster_accounts / total if total else 0.0


@dataclass
class NetworkReport:
    per_platform: Dict[str, PlatformClusterStats]
    clusters: List[ProfileCluster]
    total_clusters: int
    total_cluster_accounts: int
    total_singletons: int

    @property
    def overall_fraction(self) -> float:
        total = self.total_cluster_accounts + self.total_singletons
        return self.total_cluster_accounts / total if total else 0.0

    def largest_cluster(self) -> Optional[ProfileCluster]:
        if not self.clusters:
            return None
        return max(self.clusters, key=lambda c: c.size)

    def exemplars(self, n: int = 3) -> List[ProfileCluster]:
        """Figure-5-style exemplar clusters: the largest, by size."""
        return sorted(self.clusters, key=lambda c: (-c.size, c.cluster_id))[:n]

    def membership(self) -> Dict[Tuple[str, str], str]:
        """(platform, handle) -> predicted cluster id, for scoring
        against the synthetic world's ground-truth ``cluster_id``."""
        members: Dict[Tuple[str, str], str] = {}
        for cluster in self.clusters:
            for profile in cluster.members:
                members[(cluster.platform, profile.handle)] = cluster.cluster_id
        return members


def _attribute_value(profile: ProfileRecord, attribute: str) -> Optional[str]:
    value = getattr(profile, attribute, None)
    if value is None:
        return None
    value = str(value).strip()
    return value or None


class NetworkAnalysis:
    """Buckets profiles by shared attributes and summarizes (Table 7)."""

    def __init__(self, min_cluster_size: int = 2) -> None:
        if min_cluster_size < 2:
            raise ValueError("a cluster needs at least two accounts")
        self.min_cluster_size = min_cluster_size

    def run(self, dataset: MeasurementDataset) -> NetworkReport:
        per_platform: Dict[str, PlatformClusterStats] = {}
        all_clusters: List[ProfileCluster] = []
        total_cluster_accounts = 0
        total_singletons = 0
        for platform, profiles in sorted(dataset.profiles_by_platform().items()):
            active = [p for p in profiles if p.is_active]
            attributes = CLUSTER_ATTRIBUTES.get(platform, ("name",))
            clusters = self._cluster_platform(platform, active, attributes)
            clustered_ids = {
                id(member) for cluster in clusters for member in cluster.members
            }
            singletons = len(active) - len(clustered_ids)
            sizes = [c.size for c in clusters]
            per_platform[platform] = PlatformClusterStats(
                platform=platform,
                attributes="/".join(attributes),
                clusters=len(clusters),
                cluster_accounts=len(clustered_ids),
                singletons=singletons,
                min_size=min(sizes) if sizes else 0,
                max_size=max(sizes) if sizes else 0,
                median_size=median(sizes) if sizes else 0.0,
            )
            all_clusters.extend(clusters)
            total_cluster_accounts += len(clustered_ids)
            total_singletons += singletons
        return NetworkReport(
            per_platform=per_platform,
            clusters=all_clusters,
            total_clusters=len(all_clusters),
            total_cluster_accounts=total_cluster_accounts,
            total_singletons=total_singletons,
        )

    def _cluster_platform(
        self,
        platform: str,
        profiles: List[ProfileRecord],
        attributes: Tuple[str, ...],
    ) -> List[ProfileCluster]:
        """Union profiles sharing any clustering attribute's exact value."""
        parent: Dict[int, int] = {i: i for i in range(len(profiles))}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        buckets: Dict[Tuple[str, str], List[int]] = {}
        for index, profile in enumerate(profiles):
            for attribute in attributes:
                value = _attribute_value(profile, attribute)
                if value is not None:
                    buckets.setdefault((attribute, value), []).append(index)
        for (_attribute, _value), indices in buckets.items():
            for other in indices[1:]:
                ra, rb = find(indices[0]), find(other)
                if ra != rb:
                    parent[rb] = ra
        groups: Dict[int, List[int]] = {}
        for index in range(len(profiles)):
            groups.setdefault(find(index), []).append(index)
        clusters: List[ProfileCluster] = []
        for root, indices in sorted(groups.items()):
            if len(indices) < self.min_cluster_size:
                continue
            attribute, value = self._shared_attribute(profiles, indices, attributes)
            clusters.append(
                ProfileCluster(
                    cluster_id=f"{platform.lower()}-net-{len(clusters) + 1:03d}",
                    platform=platform,
                    attribute=attribute,
                    value=value,
                    members=[profiles[i] for i in indices],
                )
            )
        return clusters

    @staticmethod
    def _shared_attribute(
        profiles: List[ProfileRecord],
        indices: List[int],
        attributes: Tuple[str, ...],
    ) -> Tuple[str, str]:
        """The most-shared (attribute, value) pair inside a cluster."""
        counts: Counter = Counter()
        for index in indices:
            for attribute in attributes:
                value = _attribute_value(profiles[index], attribute)
                if value is not None:
                    counts[(attribute, value)] += 1
        if not counts:
            return attributes[0], ""
        (attribute, value), _n = counts.most_common(1)[0]
        return attribute, value


__all__ = [
    "CLUSTER_ATTRIBUTES",
    "NetworkAnalysis",
    "NetworkReport",
    "PlatformClusterStats",
    "ProfileCluster",
]
