"""Section 6: scam post analysis (Tables 5 and 6).

The pipeline mirrors the paper's technical setup stage for stage:

1. language filter (CLD2 -> :class:`~repro.nlp.langdetect.LanguageDetector`);
2. embeddings (all-mpnet-base-v2 -> hashed TF-IDF);
3. reduction (UMAP -> random projection, only for large corpora);
4. clustering (HDBSCAN -> DBSCAN or the scalable density clusterer);
5. keywords (KeyBERT -> class-based TF-IDF);
6. vetting (manual 25-post review -> :class:`ClusterVetter` with the
   codebook distilled from the paper's six scam types).

Outputs reproduce Table 5 (scam accounts/posts per platform) and Table 6
(accounts/posts per category and subtype).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.dataset import MeasurementDataset, PostRecord
from repro.nlp.cluster import DBSCAN, ScalableDensityClusterer, cluster_stats
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.nlp.embeddings import HashedTfidfEmbedder
from repro.nlp.keywords import class_tfidf_keywords
from repro.nlp.langdetect import LanguageDetector
from repro.nlp.tokenize import tokenize
from repro.synthetic.scamtext import SUBTYPE_TO_CATEGORY, VETTING_CODEBOOK
from repro.util.rng import RngTree


@dataclass(frozen=True)
class ScamPipelineConfig:
    """Tunables for the clustering pipeline."""

    embedding_dims: int = 192
    #: Corpora above this size use the scalable density clusterer (with a
    #: refinement pass) instead of exact DBSCAN.
    large_corpus_threshold: int = 12_000
    dbscan_eps: float = 0.45
    dbscan_min_samples: int = 5
    merge_eps: float = 0.4
    min_cluster_size: int = 6
    kmeans_max_k: int = 512
    refine_min: int = 24
    refine_divisor: int = 12
    #: Posts sampled per cluster for vetting (the paper used 25).
    vetting_sample: int = 25
    #: A cluster is scam-labeled when at least this fraction of sampled
    #: posts match a scam subtype's indicators.
    vetting_threshold: float = 0.5
    seed: int = 7


@dataclass
class ClusterVerdict:
    """Vetting outcome for one cluster."""

    cluster_id: int
    size: int
    keywords: List[Tuple[str, float]]
    subtype: Optional[str]  # None = not scam
    category: Optional[str]
    match_score: float

    @property
    def is_scam(self) -> bool:
        return self.subtype is not None


@dataclass
class ScamReport:
    """Tables 5 and 6 plus pipeline bookkeeping."""

    posts_considered: int
    posts_english: int
    n_clusters: int
    n_noise: int
    verdicts: List[ClusterVerdict]
    #: Table 5: platform -> (scam accounts, scam posts).
    table5: Dict[str, Tuple[int, int]]
    #: Table 6: category -> subtype -> (accounts, posts).
    table6: Dict[str, Dict[str, Tuple[int, int]]]
    total_scam_accounts: int
    total_scam_posts: int
    #: (platform, handle) pairs flagged as scam accounts.
    scam_accounts: Set[Tuple[str, str]] = field(default_factory=set)
    #: indices (into the English corpus) of scam posts with their subtype.
    scam_post_subtypes: Dict[int, str] = field(default_factory=dict)
    #: post_id -> predicted subtype, for scoring against ground truth.
    scam_post_ids: Dict[str, str] = field(default_factory=dict)

    @property
    def scam_clusters(self) -> int:
        return sum(1 for v in self.verdicts if v.is_scam)

    def predicted_accounts(self) -> Set[Tuple[str, str]]:
        """The (platform, handle) pairs the pipeline labelled as scam."""
        return set(self.scam_accounts)


class ClusterVetter:
    """The programmatic stand-in for manual cluster review.

    For each cluster, sample ``vetting_sample`` posts and score every
    scam subtype in the codebook: a sampled post "matches" a subtype when
    it contains at least two of that subtype's indicator keywords.  The
    best-scoring subtype above the threshold labels the cluster.
    """

    def __init__(self, config: ScamPipelineConfig) -> None:
        self._config = config
        self._rng = RngTree(config.seed, name="vetter")

    def vet(
        self,
        texts: Sequence[str],
        labels: np.ndarray,
        keywords: Dict[int, List[Tuple[str, float]]],
    ) -> List[ClusterVerdict]:
        members_by_label: Dict[int, List[int]] = {}
        for index, label in enumerate(labels):
            if label >= 0:
                members_by_label.setdefault(int(label), []).append(index)
        verdicts: List[ClusterVerdict] = []
        for label in sorted(members_by_label):
            member_indices = members_by_label[label]
            sample_size = min(self._config.vetting_sample, len(member_indices))
            sample = self._rng.child(f"cluster-{label}").sample(
                member_indices, sample_size
            )
            subtype, score = self._score_sample([texts[i] for i in sample])
            verdicts.append(
                ClusterVerdict(
                    cluster_id=label,
                    size=len(member_indices),
                    keywords=keywords.get(label, []),
                    subtype=subtype,
                    category=SUBTYPE_TO_CATEGORY.get(subtype) if subtype else None,
                    match_score=score,
                )
            )
        return verdicts

    @staticmethod
    def _indicator_hits(tokens: Set[str], indicators: Sequence[str]) -> int:
        """Count indicator keywords present, with light stemming: a token
        matches an indicator when either is a prefix of the other (so
        'investment' matches 'invest', 'nfts' matches 'nft')."""
        hits = 0
        for indicator in indicators:
            if indicator in tokens:
                hits += 1
                continue
            if len(indicator) >= 4 and any(
                token.startswith(indicator) or
                (len(token) >= 4 and indicator.startswith(token))
                for token in tokens
            ):
                hits += 1
        return hits

    def _score_sample(self, sample: List[str]) -> Tuple[Optional[str], float]:
        scores: Dict[str, float] = {}
        token_sets = [set(tokenize(text, keep_handles=False)) for text in sample]
        for subtype, indicators in VETTING_CODEBOOK.items():
            matches = sum(
                1 for tokens in token_sets
                if self._indicator_hits(tokens, indicators) >= 2
            )
            scores[subtype] = matches / max(1, len(sample))
        best_subtype = max(scores, key=lambda s: (scores[s], s))
        best = scores[best_subtype]
        if best >= self._config.vetting_threshold:
            return best_subtype, best
        return None, best


class ScamPostAnalysis:
    """Runs the full Section-6 pipeline over collected posts."""

    def __init__(self, config: Optional[ScamPipelineConfig] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.config = config or ScamPipelineConfig()
        self.telemetry = telemetry or NULL_TELEMETRY
        self._detector = LanguageDetector()

    def run(self, dataset: MeasurementDataset) -> ScamReport:
        return self.run_posts(dataset.posts)

    def run_posts(self, posts: Sequence[PostRecord]) -> ScamReport:
        config = self.config
        tracer = self.telemetry.tracer
        with tracer.span("nlp.language_filter", n_posts=len(posts)):
            english = [p for p in posts if self._detector.is_english(p.text)]
        texts = [p.text for p in english]
        if not texts:
            return ScamReport(
                posts_considered=len(posts), posts_english=0, n_clusters=0,
                n_noise=0, verdicts=[], table5={}, table6={},
                total_scam_accounts=0, total_scam_posts=0,
            )
        labels = self._cluster(texts)
        stats = cluster_stats(labels)
        with tracer.span("nlp.keywords", n_clusters=stats.n_clusters):
            keywords = class_tfidf_keywords(texts, labels, top_n=10)
        vetter = ClusterVetter(config)
        with tracer.span("nlp.vetting", n_clusters=stats.n_clusters):
            verdicts = vetter.vet(texts, labels, keywords)
        return self._aggregate(posts, english, labels, verdicts, stats)

    # -- clustering -------------------------------------------------------------

    def _cluster(self, texts: List[str]) -> np.ndarray:
        config = self.config
        embedder = HashedTfidfEmbedder(
            dims=config.embedding_dims, telemetry=self.telemetry
        )
        matrix = embedder.fit_transform(texts).astype(np.float32)
        if len(texts) > config.large_corpus_threshold:
            clusterer = ScalableDensityClusterer(
                merge_eps=config.merge_eps,
                min_cluster_size=config.min_cluster_size,
                max_k=config.kmeans_max_k,
                seed=config.seed,
                refine_min=config.refine_min,
                refine_divisor=config.refine_divisor,
                telemetry=self.telemetry,
            )
            return clusterer.fit_predict(matrix)
        dbscan = DBSCAN(eps=config.dbscan_eps,
                        min_samples=config.dbscan_min_samples,
                        telemetry=self.telemetry)
        return dbscan.fit_predict(matrix)

    # -- aggregation ---------------------------------------------------------------

    def _aggregate(
        self,
        all_posts: Sequence[PostRecord],
        english: List[PostRecord],
        labels: np.ndarray,
        verdicts: List[ClusterVerdict],
        stats,
    ) -> ScamReport:
        subtype_of_cluster = {v.cluster_id: v.subtype for v in verdicts if v.is_scam}
        scam_posts_by_platform: Counter = Counter()
        scam_accounts: Set[Tuple[str, str]] = set()
        scam_post_subtypes: Dict[int, str] = {}
        scam_post_ids: Dict[str, str] = {}
        subtype_posts: Counter = Counter()
        subtype_accounts: Dict[str, Set[Tuple[str, str]]] = {}
        for index, (post, label) in enumerate(zip(english, labels)):
            subtype = subtype_of_cluster.get(int(label))
            if subtype is None:
                continue
            key = (post.platform, post.handle)
            scam_posts_by_platform[post.platform] += 1
            scam_accounts.add(key)
            scam_post_subtypes[index] = subtype
            scam_post_ids[post.post_id] = subtype
            subtype_posts[subtype] += 1
            subtype_accounts.setdefault(subtype, set()).add(key)
        accounts_by_platform: Counter = Counter()
        for platform, handle in scam_accounts:
            accounts_by_platform[platform] += 1
        table5 = {
            platform: (
                accounts_by_platform.get(platform, 0),
                scam_posts_by_platform.get(platform, 0),
            )
            for platform in sorted(
                set(accounts_by_platform) | set(scam_posts_by_platform)
            )
        }
        table6: Dict[str, Dict[str, Tuple[int, int]]] = {}
        for subtype, posts_count in subtype_posts.items():
            category = SUBTYPE_TO_CATEGORY[subtype]
            table6.setdefault(category, {})[subtype] = (
                len(subtype_accounts[subtype]),
                posts_count,
            )
        return ScamReport(
            posts_considered=len(all_posts),
            posts_english=len(english),
            n_clusters=stats.n_clusters,
            n_noise=stats.n_noise,
            verdicts=verdicts,
            table5=table5,
            table6=table6,
            total_scam_accounts=len(scam_accounts),
            total_scam_posts=sum(scam_posts_by_platform.values()),
            scam_accounts=scam_accounts,
            scam_post_subtypes=scam_post_subtypes,
            scam_post_ids=scam_post_ids,
        )


__all__ = [
    "ClusterVerdict",
    "ClusterVetter",
    "ScamPipelineConfig",
    "ScamPostAnalysis",
    "ScamReport",
]
