"""The supervised analysis suite: all nine stages, one boundary each.

The pipeline and CLI used to invoke the analysis modules ad hoc; this
module is the single place that knows the full stage roster, the call
shape of each stage, and the inter-stage dependency (indicators consume
the network report).  Every stage runs under a
:class:`~repro.contracts.supervisor.StageSupervisor`, so one stage
blowing up yields a :class:`~repro.contracts.supervisor.StageFailure`
and a ``None`` report — never a dead run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.account_setup import AccountSetupAnalysis
from repro.analysis.efficacy import EfficacyAnalysis
from repro.analysis.infrastructure import InfrastructureAnalysis
from repro.analysis.indicators import IndicatorEngine
from repro.analysis.marketplace_anatomy import MarketplaceAnatomy
from repro.analysis.network import NetworkAnalysis
from repro.analysis.scam_posts import ScamPipelineConfig, ScamPostAnalysis
from repro.analysis.sellers import SellerActivityAnalysis
from repro.analysis.underground_analysis import UndergroundAnalysis
from repro.contracts.supervisor import StageFailure, StageSupervisor
from repro.core.dataset import MeasurementDataset
from repro.obs.prof import NULL_PROFILER

#: The nine analysis stages, in canonical execution order.
STAGE_NAMES = (
    "anatomy",
    "account_setup",
    "scam_posts",
    "network",
    "efficacy",
    "underground",
    "sellers",
    "infrastructure",
    "indicators",
)


@dataclass
class AnalysisResults:
    """Per-stage reports (``None`` where the stage degraded) + failures."""

    reports: Dict[str, Optional[object]] = field(default_factory=dict)
    failures: List[StageFailure] = field(default_factory=list)

    def report(self, name: str) -> Optional[object]:
        return self.reports.get(name)

    def failed(self, name: str) -> bool:
        return any(f.stage == name for f in self.failures)

    @property
    def succeeded(self) -> int:
        return sum(1 for r in self.reports.values() if r is not None)

    def coverage(self) -> float:
        """Share of stages that produced a report."""
        if not self.reports:
            return 1.0
        return self.succeeded / len(self.reports)


def run_analysis_suite(
    dataset: MeasurementDataset,
    supervisor: StageSupervisor,
    telemetry=None,
    scam_config: Optional[ScamPipelineConfig] = None,
) -> AnalysisResults:
    """Run all nine stages under ``supervisor``.

    Stage order is fixed and the stage callables are deterministic
    functions of the (seeded) dataset, so a resumed run replays the
    identical sequence of supervisor decisions.
    """
    scam_config = scam_config or ScamPipelineConfig(dbscan_eps=0.9)
    results = AnalysisResults()
    profiler = getattr(telemetry, "profiler", NULL_PROFILER)

    # Per-stage record throughput: how many input records each stage
    # chews through (the profiler divides by sim time for records/s).
    sizes = {
        "anatomy": len(dataset.listings),
        "account_setup": len(dataset.profiles),
        "scam_posts": len(dataset.posts),
        "network": len(dataset.listings),
        "efficacy": len(dataset.profiles),
        "underground": len(dataset.underground),
        "sellers": len(dataset.listings),
        "infrastructure": len(dataset.posts),
        "indicators": len(dataset.listings),
    }

    def stage(name: str, fn, *args, **kwargs):
        with profiler.stage(name):
            results.reports[name] = supervisor.run(name, fn, *args, **kwargs)
        profiler.add_counts(
            profiler.stage_key(name), records=sizes.get(name, 0)
        )
        return results.reports[name]

    stage("anatomy", MarketplaceAnatomy().run, dataset)
    stage("account_setup", AccountSetupAnalysis().run, dataset)
    stage("scam_posts", ScamPostAnalysis(scam_config, telemetry).run, dataset)
    network = stage("network", NetworkAnalysis().run, dataset)
    stage("efficacy", EfficacyAnalysis().run, dataset)
    stage("underground", UndergroundAnalysis().run, dataset.underground)
    stage("sellers", SellerActivityAnalysis().run, dataset)
    stage("infrastructure", InfrastructureAnalysis().run, dataset.posts)
    # Indicators consume the network clustering when it exists; a failed
    # network stage degrades them to unclustered scoring, not to failure.
    stage("indicators", IndicatorEngine().score_dataset, dataset,
          network=network)

    results.failures = list(supervisor.failures)
    return results


__all__ = ["AnalysisResults", "STAGE_NAMES", "run_analysis_suite"]
