"""Section 8: detection efficacy and abuse control (Table 8).

Counts inactive accounts (Forbidden / Not Found API answers) per
platform, conservatively treating both platform bans and owner-side
deletions as "actioned", exactly as the paper does; and checks which
name tokens are over-represented among blocked accounts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.dataset import MeasurementDataset, ProfileRecord
from repro.nlp.tokenize import tokenize

#: Trend tokens Section 8 found over-represented in blocked names.
TREND_TOKENS = ("crypto", "nft", "beauty", "luxury", "animals")


@dataclass
class PlatformEfficacy:
    """One row of Table 8."""

    platform: str
    visible_accounts: int
    inactive_accounts: int
    forbidden: int  # explicit platform bans (X's 403)
    not_found: int  # deleted / renamed / invisible bans

    @property
    def efficacy_percent(self) -> float:
        if self.visible_accounts == 0:
            return 0.0
        return 100.0 * self.inactive_accounts / self.visible_accounts


@dataclass
class EfficacyReport:
    per_platform: Dict[str, PlatformEfficacy]
    total_visible: int
    total_inactive: int
    #: token -> (share among inactive names, share among active names).
    trend_token_shares: Dict[str, Tuple[float, float]]
    #: (platform, handle) pairs judged inactive, for scoring against the
    #: synthetic world's moderation ground truth (AccountFate).
    predicted_inactive: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def overall_percent(self) -> float:
        if self.total_visible == 0:
            return 0.0
        return 100.0 * self.total_inactive / self.total_visible

    def best_platform(self) -> str:
        return max(
            self.per_platform.values(), key=lambda e: e.efficacy_percent
        ).platform

    def worst_platform(self) -> str:
        return min(
            self.per_platform.values(), key=lambda e: e.efficacy_percent
        ).platform


def _name_blob(profile: ProfileRecord) -> str:
    return f"{profile.handle} {profile.name or ''}".lower()


class EfficacyAnalysis:
    """Computes Table 8 from collected profile statuses."""

    def run(self, dataset: MeasurementDataset) -> EfficacyReport:
        per_platform: Dict[str, PlatformEfficacy] = {}
        total_visible = 0
        total_inactive = 0
        inactive_tokens: Counter = Counter()
        active_tokens: Counter = Counter()
        inactive_names = 0
        active_names = 0
        predicted_inactive: Set[Tuple[str, str]] = set()
        for platform, profiles in sorted(dataset.profiles_by_platform().items()):
            # Only Forbidden / Not Found answers are evidence of action;
            # transport errors ("error") are neither active nor actioned.
            inactive = [p for p in profiles if p.status in ("forbidden", "not_found")]
            predicted_inactive.update((platform, p.handle) for p in inactive)
            per_platform[platform] = PlatformEfficacy(
                platform=platform,
                visible_accounts=len(profiles),
                inactive_accounts=len(inactive),
                forbidden=sum(1 for p in inactive if p.status == "forbidden"),
                not_found=sum(1 for p in inactive if p.status == "not_found"),
            )
            total_visible += len(profiles)
            total_inactive += len(inactive)
            for profile in profiles:
                tokens = set(tokenize(_name_blob(profile)))
                hits = {t for t in TREND_TOKENS if any(t in tok for tok in tokens)}
                if profile.is_active:
                    active_names += 1
                    active_tokens.update(hits)
                else:
                    inactive_names += 1
                    inactive_tokens.update(hits)
        trend_shares = {
            token: (
                inactive_tokens.get(token, 0) / inactive_names if inactive_names else 0.0,
                active_tokens.get(token, 0) / active_names if active_names else 0.0,
            )
            for token in TREND_TOKENS
        }
        return EfficacyReport(
            per_platform=per_platform,
            total_visible=total_visible,
            total_inactive=total_inactive,
            trend_token_shares=trend_shares,
            predicted_inactive=predicted_inactive,
        )


__all__ = ["EfficacyAnalysis", "EfficacyReport", "PlatformEfficacy", "TREND_TOKENS"]
