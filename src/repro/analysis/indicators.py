"""Proactive-detection indicators (Section 9's recommendations, realized).

The paper closes by proposing that platforms could identify traded
accounts proactively: monitor marketplace referrals, watch for preemptive
profile tailoring, flag engagement-farming signatures, and track the
scam-content patterns in Section 6.  This module turns those
recommendations into a concrete, evaluable engine:

* ``marketplace_referral`` — the account is reachable from a marketplace
  listing (the crawler observed the link; a platform would observe the
  referral header the paper suggests monitoring);
* ``trending_name`` — the handle/name carries the trend tokens Section 8
  found over-represented among blocked accounts;
* ``follower_anomaly`` — harvested-audience signature: a large audience
  with an (almost) empty timeline, or a fresh account that already has a
  big following;
* ``scam_content`` — at least one post matches a Table-6 subtype's
  indicator codebook;
* ``coordinated_cluster`` — the profile shares identity attributes with
  other profiles (Table 7's clusters).

``evaluate`` scores the engine against the synthetic world's ground
truth, which is how the repository quantifies the headline of Section 8:
platforms actioned only 19.7 % of traded accounts, while these cheap
indicators recover far more at high precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.efficacy import TREND_TOKENS
from repro.analysis.network import NetworkReport
from repro.core.dataset import MeasurementDataset, PostRecord, ProfileRecord
from repro.nlp.tokenize import tokenize
from repro.synthetic.scamtext import VETTING_CODEBOOK
from repro.util.simtime import STUDY_START, SimDate

#: Default indicator weights; referral evidence is near-conclusive, the
#: behavioural signals are supporting evidence.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "marketplace_referral": 1.0,
    "trending_name": 0.35,
    "follower_anomaly": 0.5,
    "scam_content": 0.9,
    "coordinated_cluster": 0.7,
}


@dataclass
class IndicatorHit:
    """One indicator firing on one profile."""

    name: str
    weight: float
    detail: str


@dataclass
class ProfileRisk:
    """The engine's verdict on one profile."""

    handle: str
    platform: str
    hits: List[IndicatorHit] = field(default_factory=list)

    @property
    def score(self) -> float:
        return sum(hit.weight for hit in self.hits)

    @property
    def indicator_names(self) -> Set[str]:
        return {hit.name for hit in self.hits}


@dataclass
class IndicatorEvaluation:
    """Precision/recall of flagging vs the ground-truth traded set."""

    threshold: float
    flagged: int
    true_positives: int
    relevant: int

    @property
    def precision(self) -> float:
        return self.true_positives / self.flagged if self.flagged else 0.0

    @property
    def recall(self) -> float:
        return self.true_positives / self.relevant if self.relevant else 0.0


class IndicatorEngine:
    """Scores profiles with the Section-9 indicator set."""

    def __init__(self, weights: Optional[Dict[str, float]] = None,
                 enabled: Optional[Iterable[str]] = None) -> None:
        self.weights = dict(weights or DEFAULT_WEIGHTS)
        self.enabled = set(enabled) if enabled is not None else set(self.weights)
        unknown = self.enabled - set(DEFAULT_WEIGHTS)
        if unknown:
            raise ValueError(f"unknown indicators: {sorted(unknown)}")

    # -- scoring ---------------------------------------------------------

    def score_dataset(self, dataset: MeasurementDataset,
                      network: Optional[NetworkReport] = None) -> List[ProfileRisk]:
        """Score every collected profile."""
        referred = {
            listing.profile_url
            for listing in dataset.listings
            if listing.profile_url
        }
        posts_by_profile: Dict[Tuple[str, str], List[PostRecord]] = {}
        for post in dataset.posts:
            posts_by_profile.setdefault((post.platform, post.handle), []).append(post)
        clustered: Set[Tuple[str, str]] = set()
        if network is not None:
            for cluster in network.clusters:
                for member in cluster.members:
                    clustered.add((member.platform, member.handle))
        risks = []
        for profile in dataset.profiles:
            key = (profile.platform, profile.handle)
            risks.append(
                self.score_profile(
                    profile,
                    posts_by_profile.get(key, []),
                    referred=profile.profile_url in referred,
                    clustered=key in clustered,
                )
            )
        return risks

    def score_profile(self, profile: ProfileRecord, posts: Sequence[PostRecord],
                      referred: bool, clustered: bool) -> ProfileRisk:
        risk = ProfileRisk(handle=profile.handle, platform=profile.platform)
        if referred:
            self._hit(risk, "marketplace_referral",
                      "profile linked from a marketplace listing")
        self._check_trending_name(risk, profile)
        self._check_follower_anomaly(risk, profile, posts)
        self._check_scam_content(risk, posts)
        if clustered:
            self._hit(risk, "coordinated_cluster",
                      "shares identity attributes with other profiles")
        return risk

    # -- individual indicators -----------------------------------------------

    def _hit(self, risk: ProfileRisk, name: str, detail: str) -> None:
        if name in self.enabled:
            risk.hits.append(IndicatorHit(name, self.weights[name], detail))

    def _check_trending_name(self, risk: ProfileRisk, profile: ProfileRecord) -> None:
        blob = f"{profile.handle} {profile.name or ''}".lower()
        matched = [token for token in TREND_TOKENS if token in blob]
        if matched:
            self._hit(risk, "trending_name", f"trend tokens in name: {matched}")

    def _check_follower_anomaly(self, risk: ProfileRisk, profile: ProfileRecord,
                                posts: Sequence[PostRecord]) -> None:
        followers = profile.followers or 0
        if followers >= 5000 and len(posts) == 0:
            self._hit(risk, "follower_anomaly",
                      f"{followers:,} followers with an empty timeline")
            return
        if profile.created and followers >= 20_000:
            created = SimDate.parse(profile.created)
            age_days = created.days_until(STUDY_START)
            if 0 <= age_days < 365:
                self._hit(risk, "follower_anomaly",
                          f"{followers:,} followers on a {age_days}-day-old account")

    def _check_scam_content(self, risk: ProfileRisk,
                            posts: Sequence[PostRecord]) -> None:
        for post in posts:
            tokens = set(tokenize(post.text))
            for subtype, indicators in VETTING_CODEBOOK.items():
                hits = sum(1 for ind in indicators if ind in tokens)
                if hits >= 3:
                    self._hit(risk, "scam_content",
                              f"post matches '{subtype}' indicators")
                    return

    # -- evaluation -----------------------------------------------------------------

    @staticmethod
    def evaluate(risks: Sequence[ProfileRisk],
                 traded_handles: Set[Tuple[str, str]],
                 threshold: float) -> IndicatorEvaluation:
        """Score flagging (score >= threshold) against a ground-truth set."""
        flagged = [r for r in risks if r.score >= threshold]
        true_positives = sum(
            1 for r in flagged if (r.platform, r.handle) in traded_handles
        )
        return IndicatorEvaluation(
            threshold=threshold,
            flagged=len(flagged),
            true_positives=true_positives,
            relevant=len(traded_handles),
        )

    @staticmethod
    def sweep(risks: Sequence[ProfileRisk],
              traded_handles: Set[Tuple[str, str]],
              thresholds: Sequence[float]) -> List[IndicatorEvaluation]:
        return [
            IndicatorEngine.evaluate(risks, traded_handles, threshold)
            for threshold in thresholds
        ]


__all__ = [
    "DEFAULT_WEIGHTS",
    "IndicatorEngine",
    "IndicatorEvaluation",
    "IndicatorHit",
    "ProfileRisk",
]
