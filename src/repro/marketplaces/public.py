"""The public marketplace site.

Serves what the paper's crawler saw: a paginated listing index, one offer
page per listing, seller profile pages (on markets that show sellers), and
a payments/help page (the source for Table 3).  Pages are rendered in one
of three themes so extraction requires per-site adaptation:

* ``cards`` — semantic classes and ``data-prop`` attributes;
* ``table`` — an ``offer-details`` table with textual labels;
* ``dl`` — a definition list keyed by lowercase field names.

The site is *iteration-aware*: set :attr:`current_iteration` between crawl
rounds and only listings active at that iteration are served, which is
what produces the Figure-2 cumulative/active dynamics.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.marketplaces.registry import MarketplaceSpec
from repro.platforms.base import profile_url
from repro.synthetic.model import Listing, Seller, World
from repro.util.simtime import SimClock
from repro.util.textutil import compact_number
from repro.web import http
from repro.web.html import E, Element, document, render_document
from repro.web.http import Request, Response
from repro.web.server import Site


class PublicMarketplaceSite(Site):
    """One public marketplace's virtual host."""

    def __init__(
        self,
        spec: MarketplaceSpec,
        world: World,
        clock: Optional[SimClock] = None,
    ) -> None:
        super().__init__(
            spec.host,
            clock=clock,
            latency_seconds=0.2,
            robots_text="User-agent: *\nDisallow: /checkout\nDisallow: /account\n",
            rate_limit_per_second=20.0,
            rate_limit_burst=40.0,
        )
        self.spec = spec
        self.current_iteration = 0
        self._world = world
        self._listings: List[Listing] = sorted(
            world.listings_for_market(spec.name), key=lambda l: l.listing_id
        )
        self._by_id: Dict[str, Listing] = {l.listing_id: l for l in self._listings}
        self._sellers: Dict[str, Seller] = {
            s.seller_id: s for s in world.sellers.values() if s.marketplace == spec.name
        }
        self.route("GET", "/", self._landing)
        self.route("GET", "/listings", self._listing_index)
        self.route("GET", "/offer/<listing_id>", self._offer_page)
        self.route("GET", "/seller/<seller_id>", self._seller_page)
        self.route("GET", "/payments", self._payments_page)

    # -- current inventory -----------------------------------------------------

    def active_listings(self) -> List[Listing]:
        return [l for l in self._listings if l.active_at(self.current_iteration)]

    # -- handlers -------------------------------------------------------------

    def _landing(self, request: Request) -> Response:
        doc = document(
            self.spec.name,
            E.h1(self.spec.name),
            E.p(f"Buy and sell social media accounts. {len(self.active_listings())} offers live."),
            E.a("Browse listings", href="/listings", class_="browse-link"),
            E.a("Payment options", href="/payments", class_="payments-link"),
        )
        return http.html_response(render_document(doc))

    def _listing_index(self, request: Request) -> Response:
        active = self.active_listings()
        page_size = self.spec.page_size
        pages = max(1, math.ceil(len(active) / page_size))
        page = int(request.params.get("page", "1"))
        if page < 1 or page > pages:
            return http.error_response(http.NOT_FOUND)
        window = active[(page - 1) * page_size : page * page_size]
        items = [
            E.li(
                E.a(
                    listing.title,
                    href=f"/offer/{listing.listing_id}",
                    class_="offer-link",
                )
            )
            for listing in window
        ]
        children = [
            E.h1(f"{self.spec.name} listings"),
            E.ul(*items, class_="offer-list"),
            E.span(f"page {page} of {pages}", class_="page-indicator"),
        ]
        if page < pages:
            children.append(
                E.a("next", href=f"/listings?page={page + 1}", class_="next-page")
            )
        return http.html_response(render_document(document("Listings", *children)))

    def _offer_page(self, request: Request) -> Response:
        listing = self._by_id.get(request.path_params["listing_id"])
        if listing is None or not listing.active_at(self.current_iteration):
            return http.error_response(http.NOT_FOUND)
        theme = self.spec.theme
        if theme == "cards":
            body = self._render_cards(listing)
        elif theme == "table":
            body = self._render_table(listing)
        else:
            body = self._render_dl(listing)
        return http.html_response(render_document(document(listing.title, body)))

    # -- themes ------------------------------------------------------------------

    def _common_fields(self, listing: Listing) -> Dict[str, str]:
        fields = {
            "platform": listing.platform.value,
            "price": f"${listing.price.as_dollars:,.0f}",
        }
        if listing.category:
            fields["category"] = listing.category
        if listing.followers_claimed is not None:
            fields["followers"] = compact_number(listing.followers_claimed)
        if listing.monetization is not None:
            fields["monthly-revenue"] = f"${listing.monetization.monthly_revenue.as_dollars:,.0f}"
        return fields

    def _seller_bits(self, listing: Listing) -> List[Element]:
        bits: List[Element] = []
        if self.spec.sellers_public and listing.seller_id:
            seller = self._sellers.get(listing.seller_id)
            name = seller.name if seller else listing.seller_id
            bits.append(
                E.a(name, href=f"/seller/{listing.seller_id}", class_="seller-link")
            )
        return bits

    def _extras(self, listing: Listing) -> List[Element]:
        extras: List[Element] = []
        if listing.visible_account_id:
            account = self._world.accounts[listing.visible_account_id]
            extras.append(
                E.a(
                    "View profile",
                    href=profile_url(account.platform, account.handle),
                    class_="profile-link",
                )
            )
        if listing.verified_claim:
            extras.append(E.span("Verified", class_="verified-badge"))
        if listing.description:
            extras.append(E.div(listing.description, class_="offer-description"))
        if listing.monetization and listing.monetization.income_source:
            extras.append(
                E.div(listing.monetization.income_source, class_="income-source")
            )
        return extras

    def _render_cards(self, listing: Listing) -> Element:
        fields = self._common_fields(listing)
        price = fields.pop("price")
        props = [
            E.li(value, data_prop=name) for name, value in fields.items()
        ]
        return E.div(
            E.h1(listing.title, class_="offer-title"),
            E.span(price, class_="offer-price"),
            E.ul(*props, class_="offer-props"),
            *self._seller_bits(listing),
            *self._extras(listing),
            class_="offer-card",
            data_offer_id=listing.listing_id,
        )

    def _render_table(self, listing: Listing) -> Element:
        fields = self._common_fields(listing)
        labels = {
            "platform": "Platform",
            "price": "Price",
            "category": "Category",
            "followers": "Followers",
            "monthly-revenue": "Monthly revenue",
        }
        rows = [
            E.tr(E.th(labels[name]), E.td(value)) for name, value in fields.items()
        ]
        return E.div(
            E.h1(listing.title, class_="offer-title"),
            E.table(*rows, class_="offer-details"),
            *self._seller_bits(listing),
            *self._extras(listing),
            class_="offer-page",
            data_offer_id=listing.listing_id,
        )

    def _render_dl(self, listing: Listing) -> Element:
        fields = self._common_fields(listing)
        pairs: List[Element] = []
        for name, value in fields.items():
            pairs.append(E.dt(name))
            pairs.append(E.dd(value))
        return E.div(
            E.h1(listing.title, class_="offer-title"),
            E.dl(*pairs, class_="offer-info"),
            *self._seller_bits(listing),
            *self._extras(listing),
            class_="offer-page",
            data_offer_id=listing.listing_id,
        )

    # -- seller & payments ---------------------------------------------------------

    def _seller_page(self, request: Request) -> Response:
        if not self.spec.sellers_public:
            return http.error_response(http.NOT_FOUND)
        seller = self._sellers.get(request.path_params["seller_id"])
        if seller is None:
            return http.error_response(http.NOT_FOUND)
        children = [
            E.h1(seller.name, class_="seller-name"),
            E.span(f"{seller.rating:.1f}", class_="seller-rating"),
        ]
        if seller.country:
            children.append(E.span(seller.country, class_="seller-country"))
        if seller.joined:
            children.append(E.span(seller.joined.isoformat(), class_="seller-joined"))
        return http.html_response(
            render_document(document(f"Seller {seller.name}", *children))
        )

    def _payments_page(self, request: Request) -> Response:
        items = [
            E.li(method, data_group=group, class_="payment-method")
            for group, method in self.spec.payment_methods
            if group != "Unknown"
        ]
        children: List[Element] = [E.h1("Payment options")]
        if items:
            children.append(E.ul(*items, class_="payment-list"))
        else:
            children.append(
                E.p("Contact support for payment instructions.", class_="payment-unknown")
            )
        return http.html_response(render_document(document("Payments", *children)))


__all__ = ["PublicMarketplaceSite"]
