"""The underground (Tor) forum simulator.

Section 4.2 describes the collection constraints these markets imposed:
registration with "complex, site-specific, non-standard CAPTCHAs", and
navigation so restricted that "attempts to access pages not linked within
the current page resulted in blocks".  Both are enforced here:

* every request needs a registered session cookie (after solving a
  CAPTCHA at ``/register``);
* per session, the server remembers the links shown on the last served
  page; requesting any path that was not among them (except the forum
  root and the search endpoint) returns 403.

Content surfaces mirror the paper's protocol: platform sections with
paginated thread lists, a keyword search, and thread pages with the
posting body, author, optional date/price, and reply count.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from repro.synthetic.model import Platform, UndergroundPosting
from repro.util.rng import RngTree
from repro.util.simtime import SimClock
from repro.util.textutil import slugify
from repro.web import http
from repro.web.captcha import CaptchaGate
from repro.web.html import E, Element, document, render_document
from repro.web.http import Request, Response
from repro.web.server import Site

#: Threads shown per section/search page; the paper recorded data "from
#: the first five pages of results, up to 25 postings per social media
#: platform" — five pages of five.
PAGE_SIZE = 5


def onion_host(market: str) -> str:
    """A deterministic .onion hostname for a market."""
    slug = slugify(market).replace("-", "")
    fake_hash = (slug * 4)[:16]
    return f"{slug}{fake_hash}.onion"


class UndergroundForumSite(Site):
    """One underground market's hidden-service forum."""

    def __init__(
        self,
        market: str,
        postings: List[UndergroundPosting],
        rng: RngTree,
        clock: Optional[SimClock] = None,
    ) -> None:
        super().__init__(onion_host(market), clock=clock, latency_seconds=1.2)
        self.market = market
        self._postings = sorted(postings, key=lambda p: p.posting_id)
        self._by_id = {p.posting_id: p for p in self._postings}
        self._captcha = CaptchaGate(rng.child("captcha"), style="arithmetic")
        self._sessions: Set[str] = set()
        self._session_counter = 0
        #: session -> set of paths linked from the last page served.
        self._last_links: Dict[str, Set[str]] = {}
        self.route("GET", "/register", self._register_form)
        self.route("POST", "/register", self._register_submit)
        self.route("GET", "/forum", self._forum_root)
        self.route("GET", "/section/<slug>", self._section)
        self.route("GET", "/search", self._search)
        self.route("GET", "/thread/<posting_id>", self._thread)

    # -- session & navigation policy ---------------------------------------

    def handle(self, request: Request, client_id: str = "anon") -> Response:
        path = request.url.split(self.host, 1)[-1].split("?")[0]
        if path.startswith("/register"):
            return super().handle(request, client_id)
        session = request.cookies.get("session")
        if session not in self._sessions:
            return self._finish(
                request,
                http.error_response(http.UNAUTHORIZED, "<html><body>register first</body></html>"),
            )
        if not self._navigation_allowed(session, path):
            return self._finish(
                request,
                http.error_response(http.FORBIDDEN, "<html><body>blocked: follow links</body></html>"),
            )
        return super().handle(request, client_id)

    def _navigation_allowed(self, session: str, path: str) -> bool:
        if path in ("/forum", "/search"):
            return True
        allowed = self._last_links.get(session, set())
        return path in allowed

    def _remember_links(self, request: Request, element: Element) -> None:
        session = request.cookies.get("session")
        if session is None:
            return
        links = {href.split("?")[0] for href in element.links()}
        self._last_links[session] = links

    # -- registration ---------------------------------------------------------

    def _register_form(self, request: Request) -> Response:
        challenge = self._captcha.issue()
        doc = document(
            f"{self.market} - register",
            E.h1(f"Join {self.market}"),
            E.form(
                E.label(challenge.prompt, class_="captcha-prompt"),
                E.input(type="hidden", name="challenge_id", value=challenge.challenge_id),
                E.input(type="text", name="captcha_answer"),
                E.input(type="text", name="username"),
                action="/register",
                method="post",
                class_="register-form",
            ),
        )
        return http.html_response(render_document(doc))

    def _register_submit(self, request: Request) -> Response:
        challenge_id = request.form.get("challenge_id", "")
        answer = request.form.get("captcha_answer", "")
        username = request.form.get("username", "")
        if not username or not self._captcha.verify(challenge_id, answer):
            return http.error_response(
                http.BAD_REQUEST, "<html><body>captcha failed</body></html>"
            )
        self._session_counter += 1
        session = f"{self.host}-s{self._session_counter:04d}"
        self._sessions.add(session)
        response = http.redirect_response("/forum")
        response.set_cookies["session"] = session
        return response

    # -- content -------------------------------------------------------------------

    def _platforms(self) -> List[Platform]:
        return sorted({p.platform for p in self._postings}, key=lambda p: p.value)

    def _forum_root(self, request: Request) -> Response:
        sections = [
            E.li(
                E.a(
                    f"{platform.value} accounts",
                    href=f"/section/{slugify(platform.value)}",
                    class_="section-link",
                )
            )
            for platform in self._platforms()
        ]
        doc = document(
            self.market,
            E.h1(self.market),
            E.ul(*sections, class_="section-list"),
            E.form(
                E.input(type="text", name="q"),
                action="/search",
                method="get",
                class_="search-form",
            ),
        )
        self._remember_links(request, doc)
        return http.html_response(render_document(doc))

    def _thread_list_page(
        self, request: Request, title: str, postings: List[UndergroundPosting],
        base_path: str, page: int,
    ) -> Response:
        pages = max(1, math.ceil(len(postings) / PAGE_SIZE))
        if page < 1 or page > pages:
            return http.error_response(http.NOT_FOUND)
        window = postings[(page - 1) * PAGE_SIZE : page * PAGE_SIZE]
        items = [
            E.li(
                E.a(p.title, href=f"/thread/{p.posting_id}", class_="thread-link"),
                E.span(p.author, class_="thread-author"),
                E.span(str(p.replies), class_="thread-replies"),
            )
            for p in window
        ]
        children: List[Element] = [
            E.h1(title),
            E.ul(*items, class_="thread-list"),
            E.span(f"page {page} of {pages}", class_="page-indicator"),
        ]
        if page < pages:
            joiner = "&" if "?" in base_path else "?"
            children.append(
                E.a("next", href=f"{base_path}{joiner}page={page + 1}", class_="next-page")
            )
        doc = document(title, *children)
        self._remember_links(request, doc)
        return http.html_response(render_document(doc))

    def _section(self, request: Request) -> Response:
        slug = request.path_params["slug"]
        matches = [p for p in self._postings if slugify(p.platform.value) == slug]
        if not matches:
            return http.error_response(http.NOT_FOUND)
        page = int(request.params.get("page", "1"))
        return self._thread_list_page(
            request, f"{self.market}: {matches[0].platform.value}", matches,
            f"/section/{slug}", page,
        )

    def _search(self, request: Request) -> Response:
        query = request.params.get("q", "").lower()
        terms = [t for t in query.split() if t]
        matches = [
            p for p in self._postings
            if all(t in (p.title + " " + p.body).lower() for t in terms)
        ]
        page = int(request.params.get("page", "1"))
        return self._thread_list_page(
            request, f"search: {query}", matches, f"/search?q={query}", page
        )

    def _thread(self, request: Request) -> Response:
        posting = self._by_id.get(request.path_params["posting_id"])
        if posting is None:
            return http.error_response(http.NOT_FOUND)
        children: List[Element] = [
            E.h1(posting.title, class_="post-title"),
            E.span(posting.author, class_="post-author"),
            E.div(posting.body, class_="post-body"),
            E.span(str(posting.quantity), class_="post-quantity"),
            E.span(str(posting.replies), class_="post-replies"),
        ]
        if posting.date is not None:
            children.append(E.span(posting.date.isoformat(), class_="post-date"))
        if posting.price is not None:
            children.append(
                E.span(f"${posting.price.as_dollars:,.0f}", class_="post-price")
            )
        doc = document(posting.title, *children)
        # Thread pages do not refresh the per-session link set: the allowed
        # links stay those of the last *list* page, so a reader can open
        # every thread it links — but cannot guess URLs (Section 4.2's
        # "attempts to access pages not linked ... resulted in blocks").
        return http.html_response(render_document(doc))


__all__ = ["PAGE_SIZE", "UndergroundForumSite", "onion_host"]
