"""Marketplace site simulators.

* :mod:`repro.marketplaces.registry` — the 11 public marketplaces the
  paper monitored (Table 1), each with its quirks: whether sellers are
  public, which payment methods it advertises (Table 3), and which of
  three page *themes* its HTML uses (cards / table / definition list), so
  the extractor has to do real per-site adaptation;
* :mod:`repro.marketplaces.public` — the public marketplace site:
  listing indexes with pagination, offer pages, seller pages, a payments
  page, and collection-iteration awareness for the Figure-2 dynamics;
* :mod:`repro.marketplaces.underground` — the Tor forum simulator with
  registration, CAPTCHA, and link-restricted navigation (Section 4.2);
* :mod:`repro.marketplaces.channels` — the Table-9 trading-channel
  inventory and its triage logic.
"""

from repro.marketplaces.channels import CHANNELS, Channel, monitored_channels, triage
from repro.marketplaces.deploy import deploy_public_marketplaces, deploy_underground
from repro.marketplaces.public import PublicMarketplaceSite
from repro.marketplaces.registry import MARKETPLACES, MarketplaceSpec, market_host
from repro.marketplaces.underground import UndergroundForumSite

__all__ = [
    "CHANNELS",
    "Channel",
    "MARKETPLACES",
    "MarketplaceSpec",
    "PublicMarketplaceSite",
    "UndergroundForumSite",
    "deploy_public_marketplaces",
    "deploy_underground",
    "market_host",
    "monitored_channels",
    "triage",
]
