"""The registry of the 11 monitored public marketplaces (Table 1).

Each spec captures the quirks that mattered for the paper's crawl:
whether the market publishes seller profiles, which payment methods its
help pages disclose (Table 3), how many offers a listing page shows, and
which HTML theme its pages use.  Themes force the extractor to adapt per
site, like the real crawler's per-marketplace handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.synthetic import calibration as cal
from repro.util.textutil import slugify

#: The three markup styles sites use; see ``repro.marketplaces.public``.
THEMES = ("cards", "table", "dl")


@dataclass(frozen=True)
class MarketplaceSpec:
    """Static description of one public marketplace."""

    name: str
    host: str
    sellers_public: bool
    payment_methods: Tuple[Tuple[str, str], ...]
    theme: str
    page_size: int

    @property
    def discloses_payments(self) -> bool:
        return any(group != "Unknown" for group, _m in self.payment_methods)


def market_host(name: str) -> str:
    return f"{slugify(name)}.example"


def _build_registry() -> Dict[str, MarketplaceSpec]:
    themes = {
        "Accsmarket": ("cards", 40),
        "FameSwap": ("cards", 30),
        "Z2U": ("table", 50),
        "SocialTradia": ("dl", 24),
        "InstaSale": ("cards", 20),
        "MidMan": ("table", 25),
        "TooFame": ("dl", 20),
        "SwapSocials": ("cards", 15),
        "SurgeGram": ("dl", 12),
        "BuySocia": ("table", 16),
        "FameSeller": ("cards", 10),
    }
    registry: Dict[str, MarketplaceSpec] = {}
    for name in cal.MARKETPLACE_TABLE1:
        theme, page_size = themes[name]
        registry[name] = MarketplaceSpec(
            name=name,
            host=market_host(name),
            sellers_public=name not in cal.SELLER_HIDDEN_MARKETS,
            payment_methods=tuple(cal.PAYMENT_METHODS[name]),
            theme=theme,
            page_size=page_size,
        )
    return registry


MARKETPLACES: Dict[str, MarketplaceSpec] = _build_registry()


def seed_urls() -> List[str]:
    """The per-marketplace seed URLs the crawl starts from (Section 3.2)."""
    return [f"http://{spec.host}/listings" for spec in MARKETPLACES.values()]


__all__ = ["MARKETPLACES", "MarketplaceSpec", "THEMES", "market_host", "seed_urls"]
