"""Stand up the marketplace sites on an :class:`~repro.web.server.Internet`."""

from __future__ import annotations

from typing import Dict, List

from repro.marketplaces.public import PublicMarketplaceSite
from repro.marketplaces.registry import MARKETPLACES
from repro.marketplaces.underground import UndergroundForumSite
from repro.synthetic.model import UndergroundPosting, World
from repro.util.rng import RngTree
from repro.web.server import Internet


def deploy_public_marketplaces(
    internet: Internet, world: World
) -> Dict[str, PublicMarketplaceSite]:
    """Register all 11 public marketplace sites serving the world's
    listings.  Returns sites keyed by marketplace name."""
    sites: Dict[str, PublicMarketplaceSite] = {}
    for name, spec in MARKETPLACES.items():
        site = PublicMarketplaceSite(spec, world, clock=internet.clock)
        internet.register(site)
        sites[name] = site
    return sites


def deploy_underground(
    internet: Internet, world: World, rng: RngTree
) -> Dict[str, UndergroundForumSite]:
    """Register one hidden-service forum per underground market that has
    postings in the world."""
    by_market: Dict[str, List[UndergroundPosting]] = {}
    for posting in world.underground_postings:
        by_market.setdefault(posting.market, []).append(posting)
    sites: Dict[str, UndergroundForumSite] = {}
    for market, postings in sorted(by_market.items()):
        site = UndergroundForumSite(
            market, postings, rng.child(market), clock=internet.clock
        )
        internet.register(site)
        sites[market] = site
    return sites


def set_iteration(sites: Dict[str, PublicMarketplaceSite], iteration: int) -> None:
    """Advance every public marketplace to a collection iteration."""
    for site in sites.values():
        site.current_iteration = iteration


__all__ = ["deploy_public_marketplaces", "deploy_underground", "set_iteration"]
