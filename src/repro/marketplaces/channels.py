"""The trading-channel inventory and triage (Table 9).

Section 3.1: the manual search phase produced 58 websites and 9 personal
contact points.  Channels were then triaged on two axes — does the channel
actually sell accounts, and are social-media handles publicly visible —
leaving 11 public marketplaces (plus the underground set) to monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.synthetic import calibration as cal


@dataclass(frozen=True)
class Channel:
    """One row of Table 9."""

    name: str
    category: str  # Public | Underground | Contact
    channel_type: str  # Marketplace | Shop | BlackHat Forum | Email | ...
    source: str  # Google Search | Onion Directory | Public BH Forum | [ref]
    selling: bool  # sells social-media accounts
    handles_public: bool  # account handles publicly visible
    monitored: bool  # included in automated/manual monitoring


def _public(name: str, ctype: str, source: str, selling: bool, handles: bool,
            monitored: bool) -> Channel:
    return Channel(name, "Public", ctype, source, selling, handles, monitored)


def _under(name: str, source: str, selling: bool, monitored: bool) -> Channel:
    return Channel(name, "Underground", "Marketplace", source, selling, False, monitored)


def _contact(name: str, ctype: str) -> Channel:
    return Channel(name, "Contact", ctype, "Public BH Forum", True, False, False)


#: The Table-9 inventory (names as the paper lists them).
CHANNELS: List[Channel] = [
    # -- the 11 monitored public marketplaces (rows map to Table 1 names) --
    _public("accs-market.com", "Marketplace", "Google Search", True, True, True),
    _public("fameswap.com", "Marketplace", "Google Search", True, True, True),
    _public("www.z2u.com", "Marketplace", "Google Search", True, True, True),
    _public("fameseller.com", "Marketplace", "Google Search", True, True, True),
    _public("insta-sale.com/listings/", "Marketplace", "Google Search", True, True, True),
    _public("accsmarket.com", "Shop", "Google Search", True, True, True),
    _public("buysocia.com", "Shop", "Google Search", True, True, True),
    _public("mid-man.com", "Shop", "Google Search", True, True, True),
    _public("socialtradia.com", "Shop", "Google Search", True, True, True),
    _public("swapsocials.com", "Shop", "Google Search", True, True, True),
    _public("www.surgegram.com", "Shop", "Google Search", True, True, True),
    _public("www.toofame.com", "Shop", "Google Search", True, True, True),
    # -- public channels that sell but hide handles or resist crawling --
    _public("cracked.io", "Marketplace", "[34]", True, False, True),
    _public("hackforums.net", "BlackHat Forum", "Google Search", True, False, True),
    _public("swapd.co", "Marketplace", "Google Search", True, False, True),
    _public("accszone.com", "Shop", "Public BH Forum", True, False, False),
    _public("agedprofiles.com", "Shop", "Public BH Forum", True, False, False),
    _public("bulkacc.com", "Shop", "Public BH Forum", True, False, False),
    _public("digitalchaining.mysellix.io", "Shop", "Public BH Forum", True, False, False),
    _public("discord.gg/PMJCYxCcCu", "Shop", "Public BH Forum", True, False, False),
    _public("nwarlordyt.sellpass.io", "Shop", "Public BH Forum", True, False, False),
    _public("famousinfluencer.com", "Shop", "Public BH Forum", True, False, False),
    _public("nloaccs.com", "Shop", "Public BH Forum", True, False, False),
    _public("www.smmzone24.com", "Shop", "Public BH Forum", True, False, False),
    _public("acccluster.com", "Shop", "Google Search", True, False, False),
    _public("accsmaster.com", "Shop", "Google Search", True, False, False),
    _public("buyaccs.com", "Shop", "[57]", True, False, False),
    _public("getbulkaccounts.com", "Shop", "[57]", True, False, False),
    _public("bulkye.com", "Shop", "[57]", True, False, False),
    _public("quickaccounts.bigcartel.com", "Shop", "[57]", True, False, False),
    # -- public channels that no longer sell accounts --
    _public("twiends.com", "BlackHat Forum", "[55]", False, False, False),
    _public("leakzone.net", "BlackHat Forum", "Google Search", False, False, False),
    _public("magicsmm.com", "Shop", "Public BH Forum", False, False, False),
    _public("paneliniz.net", "Shop", "Public BH Forum", False, False, False),
    _public("smmorigins.com", "Shop", "Public BH Forum", False, False, False),
    _public("smmtake.com", "Shop", "Public BH Forum", False, False, False),
    _public("bigfollow.net", "Shop", "[55]", False, False, False),
    _public("intertwitter.com", "Shop", "[55]", False, False, False),
    _public("seguidores.com.br", "Shop", "Redirect from bigfollow", False, False, False),
    _public("scrowise.com", "Shop", "Google Search", False, False, False),
    # -- underground --
    _under("Dark Matter", "Onion Directory", True, True),
    _under("Nexus Market", "Onion Directory", True, True),
    _under("Torzon Market", "Onion Directory", True, True),
    _under("Black Pyramid", "Onion Directory", True, True),
    _under("Kerberos", "[33]", True, True),
    _under("We The North", "[33]", True, True),
    _under("MGM Grand", "[33]", True, False),
    _under("ARES market", "Onion Directory", True, False),
    _under("Soza", "Onion Directory", False, False),
    _under("SuperMarket", "Onion Directory", False, False),
    _under("Quantum Market", "Onion Directory", False, False),
    _under("Quest Market", "Onion Directory", False, False),
    _under("Incognito", "Onion Directory", False, False),
    _under("Alias Market", "Onion Directory", False, False),
    _under("Archetyp", "Onion Directory", False, False),
    _under("City Market", "Onion Directory", False, False),
    _under("Elysium", "Onion Directory", False, False),
    _under("Fish Market", "Onion Directory", False, False),
    _under("Pegasus Market", "Onion Directory", False, False),
    _under("Abacus", "[33]", False, False),
    # -- personal contact points --
    _contact("Skyisthelimitservice@gmail.com", "Email"),
    _contact("t.me/BusinessAts", "Telegram"),
    _contact("t.me/sheriff_x", "Telegram"),
    _contact("t.me/igexpertbhw", "Telegram"),
    _contact("t.me/lulpola", "Telegram"),
    _contact("t.me/prudentagency11", "Telegram"),
    _contact("t.me/gunnupgrades", "Telegram"),
    _contact("+16193762832", "Whatsapp"),
    _contact("@gunnupg", "Discord"),
]


def triage(channels: List[Channel]) -> List[Channel]:
    """The Section-3.1 selection rule: automated monitoring needs a channel
    that both sells accounts and exposes handles publicly."""
    return [c for c in channels if c.selling and c.handles_public]


def monitored_channels() -> List[Channel]:
    return [c for c in CHANNELS if c.monitored]


def websites() -> List[Channel]:
    return [c for c in CHANNELS if c.category in ("Public", "Underground")]


def contact_points() -> List[Channel]:
    return [c for c in CHANNELS if c.category == "Contact"]


__all__ = [
    "CHANNELS",
    "Channel",
    "contact_points",
    "monitored_channels",
    "triage",
    "websites",
]
