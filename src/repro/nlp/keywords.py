"""Cluster keyword extraction via class-based TF-IDF (the KeyBERT role).

BERTopic's c-TF-IDF treats each cluster's concatenated documents as one
"class document" and scores terms by in-class frequency times inverse
class frequency.  The top terms per cluster are what the vetting step
(and a human analyst) reads to decide what a cluster is about.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenize import tokenize


def class_tfidf_keywords(
    texts: Sequence[str],
    labels: Sequence[int],
    top_n: int = 10,
) -> Dict[int, List[Tuple[str, float]]]:
    """Top ``top_n`` keywords per cluster label (noise ``-1`` excluded).

    Returns ``{label: [(term, score), ...]}`` with scores sorted
    descending and deterministic tie-breaking on the term.
    """
    if len(texts) != len(labels):
        raise ValueError("texts and labels must align")
    class_counts: Dict[int, Counter] = {}
    term_class_presence: Counter = Counter()
    for text, label in zip(texts, labels):
        if label < 0:
            continue
        counts = class_counts.setdefault(label, Counter())
        tokens = remove_stopwords(tokenize(text))
        counts.update(tokens)
    for label, counts in class_counts.items():
        for term in counts:
            term_class_presence[term] += 1
    n_classes = max(1, len(class_counts))
    keywords: Dict[int, List[Tuple[str, float]]] = {}
    for label, counts in class_counts.items():
        total = sum(counts.values()) or 1
        scored = []
        for term, count in counts.items():
            tf = count / total
            idf = math.log(1 + n_classes / term_class_presence[term])
            scored.append((term, tf * idf))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        keywords[label] = scored[:top_n]
    return keywords


def keyword_overlap(keywords: List[Tuple[str, float]], vocabulary: Sequence[str]) -> float:
    """Fraction of a keyword list present in a target vocabulary.

    The vetting codebook uses this to match cluster keywords against
    scam-type indicator lists.
    """
    if not keywords:
        return 0.0
    vocab = set(vocabulary)
    hits = sum(1 for term, _score in keywords if term in vocab)
    return hits / len(keywords)


__all__ = ["class_tfidf_keywords", "keyword_overlap"]
