"""Hashed TF-IDF embeddings (the sentence-transformer role).

No pretrained model is available offline, so posts are embedded by
feature hashing: token unigrams and bigrams hash into a fixed number of
dimensions with signed updates (to cancel collisions), weighted by
log-scaled term frequency and a corpus IDF, then L2-normalized.  For the
templated text this study clusters — the paper itself measures 88–100 %
similarity across scam copy — lexical overlap is exactly the signal the
sentence embeddings provided.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenize import bigrams, tokenize
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry


def _hash_feature(feature: str, dims: int) -> tuple:
    """Stable (index, sign) for a feature string."""
    digest = hashlib.blake2b(feature.encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(digest, "big")
    index = value % dims
    sign = 1.0 if (value >> 63) & 1 else -1.0
    return index, sign


class HashedTfidfEmbedder:
    """Embeds documents into a dense ``dims``-dimensional space.

    Usage::

        embedder = HashedTfidfEmbedder(dims=256)
        matrix = embedder.fit_transform(texts)   # (n_docs, dims), rows L2=1
    """

    def __init__(self, dims: int = 256, use_bigrams: bool = True,
                 keep_handles: bool = True, min_df: int = 1,
                 telemetry: Optional[Telemetry] = None) -> None:
        if dims < 8:
            raise ValueError("dims must be at least 8")
        self.dims = dims
        self.use_bigrams = use_bigrams
        self.keep_handles = keep_handles
        self.min_df = min_df
        self.telemetry = telemetry or NULL_TELEMETRY
        self._idf: Optional[Dict[str, float]] = None

    # -- features ------------------------------------------------------------

    def features(self, text: str) -> List[str]:
        tokens = remove_stopwords(tokenize(text, keep_handles=self.keep_handles))
        feats = list(tokens)
        if self.use_bigrams:
            feats.extend(bigrams(tokens))
        return feats

    # -- fitting ---------------------------------------------------------------

    def fit(self, texts: Sequence[str]) -> "HashedTfidfEmbedder":
        """Learn IDF weights over a corpus."""
        with self.telemetry.tracer.span("nlp.embed.fit", n_docs=len(texts)):
            doc_freq: Dict[str, int] = {}
            for text in texts:
                for feature in set(self.features(text)):
                    doc_freq[feature] = doc_freq.get(feature, 0) + 1
            n_docs = max(1, len(texts))
            self._idf = {
                feature: math.log((1 + n_docs) / (1 + df)) + 1.0
                for feature, df in doc_freq.items()
                if df >= self.min_df
            }
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Embed documents; rows are L2-normalized (zero rows stay zero)."""
        with self.telemetry.tracer.span("nlp.embed.transform", n_docs=len(texts)):
            return self._transform(texts)

    def _transform(self, texts: Sequence[str]) -> np.ndarray:
        matrix = np.zeros((len(texts), self.dims), dtype=np.float64)
        for row, text in enumerate(texts):
            counts: Dict[str, int] = {}
            for feature in self.features(text):
                counts[feature] = counts.get(feature, 0) + 1
            for feature, count in counts.items():
                idf = 1.0 if self._idf is None else self._idf.get(feature, 0.0)
                if idf == 0.0:
                    continue
                weight = (1.0 + math.log(count)) * idf
                index, sign = _hash_feature(feature, self.dims)
                matrix[row, index] += sign * weight
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return matrix / norms

    def fit_transform(self, texts: Sequence[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)


def cosine_similarity_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity of L2-normalized rows."""
    return matrix @ matrix.T


__all__ = ["HashedTfidfEmbedder", "cosine_similarity_matrix"]
