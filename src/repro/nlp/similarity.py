"""Text-reuse similarity analysis (Section 4.2).

The paper "carried out a case-insensitive similarity analysis after
removing numbers and punctuation" over underground listings and found
88–100 % word similarity across reused posts.  We implement the same
normalization and measure similarity as the SequenceMatcher ratio over
word sequences, plus helpers to group a corpus into reuse groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher
from typing import Dict, List, Sequence, Tuple

from repro.util.textutil import strip_numbers, words


def normalize_for_similarity(text: str) -> List[str]:
    """Case-folded word sequence with numbers and punctuation removed."""
    return words(strip_numbers(text))


def normalized_word_similarity(a: str, b: str) -> float:
    """Similarity in [0, 1] between two texts after normalization.

    >>> normalized_word_similarity("Selling 5 aged accounts!", "selling 99 aged accounts")
    1.0
    """
    wa, wb = normalize_for_similarity(a), normalize_for_similarity(b)
    if not wa and not wb:
        return 1.0
    return SequenceMatcher(a=wa, b=wb, autojunk=False).ratio()


@dataclass
class ReuseGroup:
    """A group of near-duplicate documents."""

    indices: List[int]
    min_similarity: float
    max_similarity: float

    @property
    def size(self) -> int:
        return len(self.indices)


def reuse_groups(texts: Sequence[str], threshold: float = 0.88) -> List[ReuseGroup]:
    """Group documents whose pairwise similarity reaches ``threshold``.

    Single-link (union-find) over all pairs — the underground corpus is
    tiny (65 postings), so the O(n²) pass is the honest implementation.
    """
    n = len(texts)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    similarities: Dict[Tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            sim = normalized_word_similarity(texts[i], texts[j])
            if sim >= threshold:
                similarities[(i, j)] = sim
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri
    members: Dict[int, List[int]] = {}
    for i in range(n):
        members.setdefault(find(i), []).append(i)
    groups: List[ReuseGroup] = []
    for group_indices in members.values():
        if len(group_indices) < 2:
            continue
        sims = [
            similarities.get((a, b)) or similarities.get((b, a))
            for ai, a in enumerate(group_indices)
            for b in group_indices[ai + 1 :]
        ]
        sims = [s for s in sims if s is not None]
        if not sims:
            # Linked only transitively: recompute the direct bounds.
            sims = [
                normalized_word_similarity(texts[a], texts[b])
                for ai, a in enumerate(group_indices)
                for b in group_indices[ai + 1 :]
            ]
        groups.append(
            ReuseGroup(
                indices=sorted(group_indices),
                min_similarity=min(sims),
                max_similarity=max(sims),
            )
        )
    groups.sort(key=lambda g: (-g.size, g.indices[0]))
    return groups


__all__ = ["ReuseGroup", "normalize_for_similarity", "normalized_word_similarity", "reuse_groups"]
