"""Character n-gram language identification (the CLD2 role).

A tiny but effective classic: per-language character-trigram profiles
built from bundled seed text, classification by cosine similarity of the
document's trigram counts against each profile.  Distinguishing English
from the Romance/Germanic/Turkish text that appears in collected posts
is exactly what the paper needed CLD2 for.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Tuple

_SEED_TEXT: Dict[str, str] = {
    "en": (
        "thank you all for the support new video coming soon follow for more "
        "daily content check out our latest post the best tips and tricks for "
        "your account this week we are sharing more about the community and "
        "how to grow with real followers and likes what do you think about "
        "the new trend let us know in the comments below see you tomorrow "
        "with another update have a great day everyone keep watching and "
        "sharing with your friends the channel is growing every single day "
        "turn your deposit into guaranteed profit with our trading platform "
        "message us to start investing now limited slots on the investment "
        "plan claim your free reward before it sells out verify your login "
        "to keep your profile our support team is waiting order in the "
        "direct messages before the sale closes book the package today only "
        "today's inspiration keep pushing and stay consistent chase your "
        "goals with daily motivation and good vibes for the whole community "
        "subscribe and smash the like button to win the giveaway winners "
        "announced every week stay blessed and keep grinding your "
        "breakthrough is loading contact the certified help desk to remove "
        "the virus from your device send your wallet address to enter"
    ),
    "es": (
        "hola a todos gracias por el apoyo nueva publicacion cada semana "
        "siguenos para mas videos y fotos del equipo el mejor contenido en "
        "espanol comparte con tus amigos manana subimos mas novedades que "
        "piensas del nuevo video dejanos tu comentario abajo nos vemos pronto "
        "con mas contenido para toda la comunidad muchas gracias por estar"
    ),
    "de": (
        "vielen dank an alle follower bald kommen neue videos und mehr "
        "inhalte jede woche neue beitraege rund um mode und stil bleibt dran "
        "das beste aus der welt der technik jeden tag neue tipps was denkt "
        "ihr ueber das neue video schreibt es in die kommentare bis morgen "
        "mit einem weiteren update einen schoenen tag euch allen"
    ),
    "fr": (
        "merci a tous pour votre soutien de nouvelles videos arrivent "
        "bientot chaque semaine du nouveau contenu sur la mode et le style "
        "de vie le meilleur de l'humour francais abonnez vous pour ne rien "
        "rater qu'en pensez vous dites le nous en commentaire a demain pour "
        "une nouvelle publication bonne journee a toutes et a tous"
    ),
    "pt": (
        "obrigado a todos pelo apoio novos videos chegando em breve no canal "
        "toda semana conteudo novo sobre moda e estilo fiquem ligados o "
        "melhor conteudo em portugues compartilhe com os amigos o que voces "
        "acharam do novo video deixem nos comentarios ate amanha com mais "
        "novidades um otimo dia para todos voces"
    ),
    "it": (
        "grazie a tutti per il supporto presto nuovi contenuti sul canale "
        "ogni settimana nuovi video di cucina e ricette della tradizione il "
        "miglior contenuto italiano condividi con gli amici cosa ne pensate "
        "del nuovo video scrivetelo nei commenti a domani con un altro "
        "aggiornamento buona giornata a tutti voi"
    ),
    "tr": (
        "herkese destek icin tesekkurler yakinda yeni videolar geliyor her "
        "hafta yeni icerik takipte kalin ve arkadaslarinizla paylasin en "
        "iyi turkce icerik burada yeni video hakkinda ne dusunuyorsunuz "
        "yorumlarda yazin yarin yeni bir guncelleme ile gorusuruz herkese "
        "iyi gunler dilerim kanal her gun buyuyor"
    ),
}


import re

_SOCIAL_TOKEN_RE = re.compile(r"(?:https?://\S+|[#@]\w+)")


def _trigrams(text: str) -> Counter:
    # Hashtags, mentions, and URLs carry no language signal and skew the
    # trigram profile (a "#motivation #motivationdaily" soup reads as
    # Romance-language text); strip them first, like CLD2 pipelines do.
    text = _SOCIAL_TOKEN_RE.sub(" ", text.lower())
    cleaned = " ".join(ch if ch.isalpha() or ch == " " else " " for ch in text)
    cleaned = " ".join(cleaned.split())
    padded = f" {cleaned} "
    return Counter(padded[i : i + 3] for i in range(len(padded) - 2))


def _normalize(counts: Counter) -> Dict[str, float]:
    norm = math.sqrt(sum(c * c for c in counts.values()))
    if norm == 0:
        return {}
    return {gram: c / norm for gram, c in counts.items()}


class LanguageDetector:
    """Trigram-profile language classifier.

    >>> detector = LanguageDetector()
    >>> detector.detect("thank you all for watching the new video")
    'en'
    >>> detector.is_english("gracias por el apoyo nueva publicacion cada semana")
    False
    """

    def __init__(self, min_confidence: float = 0.05) -> None:
        self._profiles: Dict[str, Dict[str, float]] = {
            lang: _normalize(_trigrams(text)) for lang, text in _SEED_TEXT.items()
        }
        self.min_confidence = min_confidence

    @property
    def languages(self) -> List[str]:
        return sorted(self._profiles)

    def scores(self, text: str) -> List[Tuple[str, float]]:
        """(language, cosine score) sorted best-first."""
        if not isinstance(text, str):
            # Degraded records may carry None; score as empty text.
            text = ""
        doc = _normalize(_trigrams(text))
        results = []
        for lang, profile in self._profiles.items():
            score = sum(weight * profile.get(gram, 0.0) for gram, weight in doc.items())
            results.append((lang, score))
        results.sort(key=lambda pair: (-pair[1], pair[0]))
        return results

    def detect(self, text: str) -> str:
        """Best language, or 'und' (undetermined) for hopeless input."""
        ranked = self.scores(text)
        if not ranked or ranked[0][1] < self.min_confidence:
            return "und"
        return ranked[0][0]

    def is_english(self, text: str) -> bool:
        return self.detect(text) == "en"


__all__ = ["LanguageDetector"]
