"""Dimensionality reduction (the UMAP role).

Two offline-friendly reducers:

* :func:`pca_reduce` — exact PCA via SVD, for corpora that fit in memory;
* :func:`random_projection` — a seeded sparse Achlioptas projection, for
  the 200K-post full-scale corpus where O(n·d²) PCA is unnecessary.

Both preserve what the downstream density clusterer needs: relative
distances between lexical embeddings.
"""

from __future__ import annotations

import numpy as np


def pca_reduce(matrix: np.ndarray, out_dims: int) -> np.ndarray:
    """Project rows onto the top ``out_dims`` principal components."""
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    out_dims = min(out_dims, matrix.shape[1], max(1, matrix.shape[0] - 1))
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    # SVD of the (n x d) matrix; components are rows of Vt.
    _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:out_dims].T


def random_projection(matrix: np.ndarray, out_dims: int, seed: int = 0) -> np.ndarray:
    """Sparse random projection (Achlioptas 2003): entries in
    {+1, 0, -1} with probabilities {1/6, 2/3, 1/6}, scaled by sqrt(3/d)."""
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    in_dims = matrix.shape[1]
    out_dims = min(out_dims, in_dims)
    rng = np.random.default_rng(seed)
    choices = rng.choice(
        np.array([1.0, 0.0, -1.0]),
        size=(in_dims, out_dims),
        p=[1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0],
    )
    projection = choices * np.sqrt(3.0 / out_dims)
    return matrix @ projection


__all__ = ["pca_reduce", "random_projection"]
