"""Density clustering (the HDBSCAN role).

Two clusterers share the label convention ``-1 = noise``:

* :class:`DBSCAN` — the classic algorithm, exact, O(n²) distances
  computed blockwise; right for corpora up to a few thousand posts and
  for validating the scalable path against ground truth;
* :class:`ScalableDensityClusterer` — for the full 200K-post corpus:
  k-means++ seeding, Lloyd iterations, single-link merging of centroids
  within a merge radius (recovering irregular dense regions the way a
  density method does), then small clusters demoted to noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry


def _pairwise_sq_dists(block: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between block rows and all points."""
    cross = block @ points.T
    block_norms = (block * block).sum(axis=1)[:, None]
    point_norms = (points * points).sum(axis=1)[None, :]
    d2 = block_norms + point_norms - 2.0 * cross
    np.maximum(d2, 0.0, out=d2)
    return d2


class DBSCAN:
    """Exact DBSCAN with blockwise distance computation.

    >>> import numpy as np
    >>> pts = np.array([[0, 0], [0, 0.1], [5, 5], [5, 5.1], [9, 9]])
    >>> DBSCAN(eps=0.5, min_samples=2).fit_predict(pts).tolist()
    [0, 0, 1, 1, -1]
    """

    def __init__(self, eps: float, min_samples: int, block_size: int = 512,
                 telemetry: Optional[Telemetry] = None) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.eps = eps
        self.min_samples = min_samples
        self.block_size = block_size
        self.telemetry = telemetry or NULL_TELEMETRY

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        with self.telemetry.tracer.span("nlp.cluster.dbscan", n=len(points)):
            return self._fit_predict(points)

    def _fit_predict(self, points: np.ndarray) -> np.ndarray:
        n = len(points)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        eps2 = self.eps * self.eps
        # Neighbor lists, computed blockwise to bound memory.
        neighbors: List[np.ndarray] = []
        for start in range(0, n, self.block_size):
            block = points[start : start + self.block_size]
            d2 = _pairwise_sq_dists(block, points)
            for row in d2:
                neighbors.append(np.nonzero(row <= eps2)[0])
        labels = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        cluster = 0
        for i in range(n):
            if visited[i]:
                continue
            visited[i] = True
            if len(neighbors[i]) < self.min_samples:
                continue  # noise (may later be claimed as a border point)
            # Grow a new cluster from this core point.
            labels[i] = cluster
            queue = list(neighbors[i])
            head = 0
            while head < len(queue):
                j = queue[head]
                head += 1
                if labels[j] == -1:
                    labels[j] = cluster  # border point
                if visited[j]:
                    continue
                visited[j] = True
                labels[j] = cluster
                if len(neighbors[j]) >= self.min_samples:
                    queue.extend(neighbors[j])
            cluster += 1
        return labels


def _kmeans_pp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding."""
    n = len(points)
    centers = np.empty((k, points.shape[1]), dtype=points.dtype)
    first = rng.integers(0, n)
    centers[0] = points[first]
    closest = _pairwise_sq_dists(points, centers[0:1]).ravel()
    for c in range(1, k):
        total = closest.sum()
        if total <= 0:
            centers[c:] = points[rng.integers(0, n, size=k - c)]
            break
        probs = closest / total
        index = rng.choice(n, p=probs)
        centers[c] = points[index]
        d2 = _pairwise_sq_dists(points, centers[c : c + 1]).ravel()
        np.minimum(closest, d2, out=closest)
    return centers


def _assign_blockwise(points: np.ndarray, centers: np.ndarray,
                      block_size: int = 8192) -> np.ndarray:
    """argmin-distance assignment computed in row blocks (memory-bounded)."""
    assignments = np.empty(len(points), dtype=np.int64)
    for start in range(0, len(points), block_size):
        block = points[start : start + block_size]
        d2 = _pairwise_sq_dists(block, centers)
        assignments[start : start + len(block)] = d2.argmin(axis=1)
    return assignments


def kmeans(points: np.ndarray, k: int, iterations: int = 25,
           seed: int = 0) -> np.ndarray:
    """Lloyd's k-means; returns per-point center assignments.

    Assignment steps run blockwise, so a 200K x 64 corpus never
    materializes a full distance matrix.
    """
    n = len(points)
    k = min(k, n)
    rng = np.random.default_rng(seed)
    # Seed k-means++ on a sample for large corpora: the seeding pass is
    # O(n*k) distance evaluations and the sample preserves density.
    if n > 50_000:
        sample = points[rng.choice(n, size=20_000, replace=False)]
        centers = _kmeans_pp_init(sample, k, rng)
    else:
        centers = _kmeans_pp_init(points, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        new_assignments = _assign_blockwise(points, centers)
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments
        sums = np.zeros_like(centers)
        np.add.at(sums, assignments, points)
        counts = np.bincount(assignments, minlength=k).astype(points.dtype)
        occupied = counts > 0
        centers[occupied] = sums[occupied] / counts[occupied, None]
    return assignments


@dataclass
class ClusterStats:
    """Shape of a clustering result."""

    n_clusters: int
    n_noise: int
    sizes: List[int]


class ScalableDensityClusterer:
    """Large-corpus density clustering: k-means -> centroid merge -> prune.

    Parameters
    ----------
    k:
        Over-segmentation target for the k-means stage; ``None`` picks
        ``min(max_k, n // 40 + 8)``.
    merge_eps:
        Centroids within this Euclidean distance are merged (single
        link), re-joining template families k-means split.
    min_cluster_size:
        Merged clusters smaller than this are demoted to noise, like
        HDBSCAN's minimum cluster size.
    refine_min / refine_divisor:
        Clusters of at least ``refine_min`` points are re-clustered with a
        local k-means (``k = size // refine_divisor``) whose sub-centroids
        are then re-merged under ``merge_eps``.  Homogeneous clusters
        survive intact (their sub-centroids merge back together); mixed
        clusters split, letting small template families surface.  Set
        ``refine_min=None`` to disable.
    """

    def __init__(self, k: Optional[int] = None, merge_eps: float = 0.35,
                 min_cluster_size: int = 8, max_k: int = 256, seed: int = 0,
                 refine_min: Optional[int] = 24, refine_divisor: int = 12,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.k = k
        self.merge_eps = merge_eps
        self.min_cluster_size = min_cluster_size
        self.max_k = max_k
        self.seed = seed
        self.refine_min = refine_min
        self.refine_divisor = refine_divisor
        self.telemetry = telemetry or NULL_TELEMETRY

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        with self.telemetry.tracer.span("nlp.cluster.scalable", n=len(points)):
            return self._fit_predict(points)

    def _fit_predict(self, points: np.ndarray) -> np.ndarray:
        n = len(points)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        k = self.k if self.k is not None else min(self.max_k, n // 40 + 8)
        k = max(1, min(k, n))
        assignments = kmeans(points, k, seed=self.seed)
        centers = np.vstack([
            points[assignments == c].mean(axis=0) if (assignments == c).any()
            else np.full(points.shape[1], np.inf)
            for c in range(k)
        ])
        merged = self._merge_centroids(centers)
        labels = merged[assignments]
        if self.refine_min is not None:
            labels = self._refine(points, labels)
        return self._prune_small(labels)

    def _refine(self, points: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Split heterogeneous clusters; re-merge what belongs together."""
        output = labels.copy()
        next_label = int(labels.max()) + 1 if len(labels) else 0
        for label in np.unique(labels):
            if label < 0:
                continue
            indices = np.nonzero(labels == label)[0]
            if len(indices) < self.refine_min:
                continue
            k = max(2, len(indices) // self.refine_divisor)
            sub = kmeans(points[indices], k, seed=self.seed + int(label) + 1)
            sub_centers = np.vstack([
                points[indices[sub == c]].mean(axis=0) if (sub == c).any()
                else np.full(points.shape[1], np.inf)
                for c in range(k)
            ])
            merged = self._merge_centroids(sub_centers)
            for group in np.unique(merged[sub]):
                members = indices[merged[sub] == group]
                output[members] = next_label
                next_label += 1
        return output

    def _merge_centroids(self, centers: np.ndarray) -> np.ndarray:
        """Union-find single-link merge of centroids within merge_eps.

        Empty clusters are marked by all-inf centroids; distances are
        computed over the finite rows only (inf arithmetic would produce
        NaNs).
        """
        k = len(centers)
        parent = list(range(k))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        finite_indices = np.nonzero(np.isfinite(centers).all(axis=1))[0]
        if len(finite_indices) > 1:
            finite_centers = centers[finite_indices]
            d2 = _pairwise_sq_dists(finite_centers, finite_centers)
            eps2 = self.merge_eps * self.merge_eps
            for a in range(len(finite_indices)):
                for b in range(a + 1, len(finite_indices)):
                    if d2[a, b] <= eps2:
                        ra, rb = find(int(finite_indices[a])), find(int(finite_indices[b]))
                        if ra != rb:
                            parent[rb] = ra
        roots = {}
        mapping = np.empty(k, dtype=np.int64)
        for i in range(k):
            root = find(i)
            if root not in roots:
                roots[root] = len(roots)
            mapping[i] = roots[root]
        return mapping

    def _prune_small(self, labels: np.ndarray) -> np.ndarray:
        """Demote undersized clusters to noise and relabel densely."""
        if len(labels) == 0:
            return labels
        valid = labels >= 0
        if not valid.any():
            return np.full(len(labels), -1, dtype=np.int64)
        counts = np.bincount(labels[valid])
        keep = counts >= self.min_cluster_size
        # Dense relabeling: surviving labels -> 0..k-1, everything else -> -1.
        relabel = np.full(len(counts), -1, dtype=np.int64)
        relabel[keep] = np.arange(int(keep.sum()))
        output = np.full(len(labels), -1, dtype=np.int64)
        output[valid] = relabel[labels[valid]]
        return output


def cluster_stats(labels: np.ndarray) -> ClusterStats:
    """Summarize a label array (-1 = noise)."""
    valid = labels >= 0
    if valid.any():
        counts = np.bincount(labels[valid])
        sizes = sorted((int(c) for c in counts if c > 0), reverse=True)
    else:
        sizes = []
    return ClusterStats(
        n_clusters=len(sizes),
        n_noise=int((labels == -1).sum()),
        sizes=sizes,
    )


__all__ = ["ClusterStats", "DBSCAN", "ScalableDensityClusterer", "cluster_stats", "kmeans"]
