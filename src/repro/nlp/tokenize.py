"""Tokenization for the post-analysis pipeline."""

from __future__ import annotations

import re
from typing import List

_URL_RE = re.compile(r"https?://\S+|\b[\w-]+\.(?:example|onion|com|net|io)\S*")
_HANDLE_RE = re.compile(r"[@#][\w.]+")
_TOKEN_RE = re.compile(r"[a-z][a-z']+")


def tokenize(text: str, keep_handles: bool = False) -> List[str]:
    """Lowercase word tokens; URLs stripped, digits dropped.

    ``keep_handles`` keeps @mentions / #hashtags as single tokens (useful
    as cluster signals); otherwise they are removed.

    >>> tokenize("Visit https://x.example NOW and DM @fastpayout!!")
    ['visit', 'now', 'and', 'dm']
    >>> tokenize("win #crypto", keep_handles=True)
    ['win', '#crypto']
    """
    if not isinstance(text, str):
        # A degraded record can carry None where text was nulled; the
        # token stream is simply empty.
        return []
    lowered = text.lower()
    lowered = _URL_RE.sub(" ", lowered)
    handles: List[str] = []
    if keep_handles:
        handles = _HANDLE_RE.findall(lowered)
    lowered = _HANDLE_RE.sub(" ", lowered)
    tokens = _TOKEN_RE.findall(lowered)
    return tokens + handles


def bigrams(tokens: List[str]) -> List[str]:
    """Adjacent-token bigrams joined with an underscore."""
    return [f"{a}_{b}" for a, b in zip(tokens, tokens[1:])]


__all__ = ["bigrams", "tokenize"]
