"""The NLP stack behind the Section-6 scam-post analysis.

The paper's pipeline was: CLD2 language filter -> stopword removal ->
all-mpnet-base-v2 sentence embeddings -> UMAP -> HDBSCAN -> KeyBERT
keywords -> manual cluster vetting.  Pretrained models are unavailable
offline, so each stage has an equivalent implemented from scratch:

* :mod:`repro.nlp.langdetect` — character n-gram language classifier;
* :mod:`repro.nlp.tokenize` / :mod:`repro.nlp.stopwords` — tokenizer and
  English stopword filtering;
* :mod:`repro.nlp.embeddings` — hashed TF-IDF embeddings (token unigrams
  + bigrams), L2-normalized;
* :mod:`repro.nlp.reduce` — PCA and sparse random projection;
* :mod:`repro.nlp.cluster` — DBSCAN for small corpora and a scalable
  density-merged k-means for large ones;
* :mod:`repro.nlp.keywords` — class-based TF-IDF keyword extraction
  (the BERTopic/KeyBERT role);
* :mod:`repro.nlp.similarity` — normalized word-sequence similarity for
  the underground listing-reuse analysis.
"""

from repro.nlp.cluster import DBSCAN, ScalableDensityClusterer
from repro.nlp.embeddings import HashedTfidfEmbedder
from repro.nlp.keywords import class_tfidf_keywords
from repro.nlp.langdetect import LanguageDetector
from repro.nlp.reduce import pca_reduce, random_projection
from repro.nlp.similarity import normalized_word_similarity, reuse_groups
from repro.nlp.stopwords import STOPWORDS, remove_stopwords
from repro.nlp.tokenize import tokenize

__all__ = [
    "DBSCAN",
    "HashedTfidfEmbedder",
    "LanguageDetector",
    "STOPWORDS",
    "ScalableDensityClusterer",
    "class_tfidf_keywords",
    "normalized_word_similarity",
    "pca_reduce",
    "random_projection",
    "remove_stopwords",
    "reuse_groups",
    "tokenize",
]
