"""repro — reproduction of "Exploration of the Dynamics of Buy and Sale of
Social Media Accounts" (IMC 2025).

The package implements the paper's full measurement pipeline — marketplace
crawling, platform-API profile collection, underground-forum manual
collection, and the Section 4–8 analyses — over a deterministic synthetic
ecosystem calibrated to every marginal the paper publishes (the real
dataset is gated; see DESIGN.md for the substitution table).

Quickstart::

    from repro import Study, StudyConfig
    result = Study(StudyConfig(seed=7, scale=0.05)).run()
    print(result.dataset.summary())

Subpackages
-----------
``repro.synthetic``
    The calibrated world generator (ground truth).
``repro.web``
    The in-process web substrate (HTTP, HTML, sites, client).
``repro.marketplaces`` / ``repro.platforms``
    The 11 public marketplaces, underground forums, and 5 platforms.
``repro.crawler``
    The crawlers and collectors (Figure 1, module 2).
``repro.nlp``
    Language detection, embeddings, clustering, keywords, similarity.
``repro.analysis``
    The Section 4–8 analyses (Tables 1–8, Figures 2–5).
``repro.core``
    Dataset records, the Study pipeline, and table/figure reports.
"""

from repro.core.dataset import MeasurementDataset
from repro.core.pipeline import Study, StudyConfig, StudyResult
from repro.synthetic.world import WorldBuilder, WorldConfig

__version__ = "1.0.0"

__all__ = [
    "MeasurementDataset",
    "Study",
    "StudyConfig",
    "StudyResult",
    "WorldBuilder",
    "WorldConfig",
    "__version__",
]
