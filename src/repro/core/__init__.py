"""Pipeline orchestration: datasets, the three-module study, reports.

* :mod:`repro.core.dataset` — the records the measurement pipeline
  produces (as opposed to the world's ground truth) and a persistable
  container;
* :mod:`repro.core.pipeline` — the Figure-1 three-module study: collect
  marketplaces, collect data, track & analyze;
* :mod:`repro.core.reports` — text rendering of every paper table and
  figure, side by side with the paper's published values.
"""

from repro.core.dataset import (
    ListingRecord,
    MeasurementDataset,
    PostRecord,
    ProfileRecord,
    SellerRecord,
    UndergroundRecord,
)
from repro.core.pipeline import Study, StudyConfig, StudyResult

__all__ = [
    "ListingRecord",
    "MeasurementDataset",
    "PostRecord",
    "ProfileRecord",
    "SellerRecord",
    "Study",
    "StudyConfig",
    "StudyResult",
    "UndergroundRecord",
]
