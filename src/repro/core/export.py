"""CSV export of the paper's figure series, ready for plotting.

``export_figures`` writes one CSV per figure into a directory:

* ``fig2_listing_dynamics.csv`` — iteration, active, cumulative;
* ``fig4_creation_cdf.csv`` — platform, year_fraction, cdf;
* ``table4_followers.csv`` — platform, min, median, max;
* ``table8_efficacy.csv`` — platform, visible, inactive, efficacy_percent.

Any spreadsheet or gnuplot/matplotlib script can regenerate the paper's
plots from these.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional

from repro.analysis.account_setup import AccountSetupAnalysis
from repro.analysis.efficacy import EfficacyAnalysis
from repro.analysis.figures import creation_cdf, listing_dynamics
from repro.core.dataset import MeasurementDataset


def _write_csv(path: str, header: List[str], rows: List[List]) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_figures(
    dataset: MeasurementDataset,
    directory: str,
    active_per_iteration: Optional[List[int]] = None,
    cumulative_per_iteration: Optional[List[int]] = None,
) -> List[str]:
    """Write all exportable series; returns the file paths written."""
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    if active_per_iteration and cumulative_per_iteration:
        dynamics = listing_dynamics(active_per_iteration, cumulative_per_iteration)
        path = os.path.join(directory, "fig2_listing_dynamics.csv")
        _write_csv(
            path,
            ["iteration", "active_listings", "cumulative_listings"],
            [
                [i, dynamics.active[i], dynamics.cumulative[i]]
                for i in dynamics.iterations
            ],
        )
        written.append(path)

    series = creation_cdf(dataset)
    if series:
        path = os.path.join(directory, "fig4_creation_cdf.csv")
        rows = [
            [platform, f"{value:.3f}", f"{fraction:.6f}"]
            for platform, points in sorted(series.items())
            for value, fraction in points
        ]
        _write_csv(path, ["platform", "year_fraction", "cdf"], rows)
        written.append(path)

    setup = AccountSetupAnalysis().run(dataset)
    if setup.followers_by_platform:
        path = os.path.join(directory, "table4_followers.csv")
        _write_csv(
            path,
            ["platform", "min", "median", "max"],
            [
                [platform, int(s.minimum), s.median, int(s.maximum)]
                for platform, s in sorted(setup.followers_by_platform.items())
            ],
        )
        written.append(path)

    efficacy = EfficacyAnalysis().run(dataset)
    if efficacy.per_platform:
        path = os.path.join(directory, "table8_efficacy.csv")
        _write_csv(
            path,
            ["platform", "visible", "inactive", "efficacy_percent"],
            [
                [p, e.visible_accounts, e.inactive_accounts,
                 f"{e.efficacy_percent:.2f}"]
                for p, e in sorted(efficacy.per_platform.items())
            ],
        )
        written.append(path)

    return written


__all__ = ["export_figures"]
