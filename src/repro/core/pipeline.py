"""The three-module study pipeline (Figure 1).

Module 1 — *collect marketplaces*: triage the Table-9 channel inventory
down to the monitorable markets and stand their sites up.

Module 2 — *data collection*: run the iteration crawl over all public
marketplaces, query platform APIs for every visible profile, and run the
manual-protocol collector over the underground forums.

Module 3 — *tracking and analysis* lives in :mod:`repro.analysis`; this
module hands it a complete :class:`~repro.core.dataset.MeasurementDataset`
plus the crawl artifacts (Figure-2 series, payment-method matrix).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.suite import AnalysisResults, STAGE_NAMES, run_analysis_suite
from repro.archive.writer import POST_COLLECTION_PHASE, ArchiveWriter
from repro.contracts.quarantine import QuarantineStore
from repro.contracts.schema import ValidationReport, validate_dataset
from repro.contracts.supervisor import StageFailure, StageSupervisor
from repro.core.dataset import MeasurementDataset
from repro.crawler.crawler import CrawlReport, IterationCrawl, MarketplaceCrawler
from repro.faults import DiskFaultInjector, FaultInjector, resolve_profile
from repro.crawler.profile_collector import ProfileCollector
from repro.crawler.underground_collector import UndergroundCollector
from repro.marketplaces.channels import monitored_channels, triage, websites
from repro.marketplaces.deploy import (
    deploy_public_marketplaces,
    deploy_underground,
    set_iteration,
)
from repro.marketplaces.registry import MARKETPLACES
from repro.obs.prof import StageProfiler
from repro.obs.quality import Scorecard, compute_scorecard
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.watchdog import CrawlWatchdog
from repro.platforms.deploy import deploy_platforms, enable_moderation
from repro.synthetic.model import World
from repro.synthetic.world import WorldBuilder, WorldConfig
from repro.util.rng import RngTree
from repro.web.captcha import HumanSolver
from repro.web.client import ClientConfig, HttpClient
from repro.web.server import Internet


@dataclass(frozen=True)
class StudyConfig:
    """Configuration of one full study run."""

    seed: int = 2024
    scale: float = 0.05
    iterations: int = 4
    include_underground: bool = True
    #: Politeness spacing between same-host requests (simulated seconds).
    per_host_delay_seconds: float = 0.0
    #: Record metrics/spans/events during the run.  Off by default so
    #: benchmark timings are unaffected; the CLI's ``--telemetry-out``
    #: switches it on.  An explicit ``Telemetry`` passed to
    #: :class:`Study` overrides this flag.
    telemetry_enabled: bool = False
    #: Run the crawl-health watchdogs (coverage, error rates, stalls).
    #: Cheap counter arithmetic; on by default, active only when
    #: telemetry is recording.
    watchdogs_enabled: bool = True
    #: Record a performance profile (per-phase/per-stage wall, sim,
    #: memory via tracemalloc, throughput) exported as ``profile.json``
    #: next to the telemetry files.  Off by default: tracemalloc roughly
    #: doubles allocation cost, so profiling must never leak into
    #: benchmark timings or the <5% telemetry-overhead budget.
    profile_enabled: bool = False
    #: Compute the fidelity scorecard at the end of the run.  This
    #: re-runs the analysis stages (including the NLP pipeline), so
    #: benchmarks that time the crawl alone should turn it off.
    scorecard_enabled: bool = True
    #: Chaos profile name (``off``/``light``/``moderate``/``heavy``):
    #: wraps the synthetic Internet in a seeded fault-injection layer.
    chaos_profile: str = "off"
    #: Directory for crawl checkpoints; with it set, the iteration crawl
    #: persists its tracker after every iteration.
    checkpoint_dir: Optional[str] = None
    #: Resume from an existing checkpoint in ``checkpoint_dir`` instead
    #: of starting fresh (the CLI's ``repro run --resume``).
    resume: bool = False
    #: Run every record through its contract after collection (repairs,
    #: degrades, quarantines — see :mod:`repro.contracts`).
    contracts_enabled: bool = True
    #: Turn the first quarantine or stage failure into a hard error
    #: (the CLI's ``--strict-contracts``).
    strict_contracts: bool = False
    #: Analysis stages to fail deliberately (``--fail-stage``) —
    #: degraded-run drills and supervisor tests.
    fail_stages: Tuple[str, ...] = ()
    #: Directory for the crawl archive (``--archive-dir``): every HTTP
    #: exchange is captured into a content-addressed store sealed at the
    #: end of the run, from which ``repro replay`` re-runs extraction
    #: and analysis offline.  Off (None) by default so benchmark
    #: timings are unaffected.
    archive_dir: Optional[str] = None

    def world_config(self) -> WorldConfig:
        return WorldConfig(
            seed=self.seed,
            scale=self.scale,
            iterations=self.iterations,
            include_underground=self.include_underground,
        )


@dataclass
class StudyResult:
    """Everything a study run produced."""

    dataset: MeasurementDataset
    world: World  # ground truth, for validation only — analyses not using it
    #: Figure-2 series.
    active_per_iteration: List[int] = field(default_factory=list)
    cumulative_per_iteration: List[int] = field(default_factory=list)
    #: Table-3 raw material: marketplace -> [(group, method)].
    payment_methods: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    crawl_reports: List[CrawlReport] = field(default_factory=list)
    simulated_seconds: float = 0.0
    #: The telemetry context the run recorded into (no-op when disabled).
    telemetry: Telemetry = field(default_factory=Telemetry.disabled)
    #: The crawl-health watchdog that ran (None when disabled).
    watchdog: Optional[CrawlWatchdog] = None
    #: End-of-run fidelity scorecard (None when disabled).
    scorecard: Optional[Scorecard] = None
    #: The fault injector the run crawled through (None when chaos off).
    fault_injector: Optional[FaultInjector] = None
    #: The storage-plane fault injector (None unless the chaos profile
    #: has disk rates).  The CLI reuses it for the post-run store save,
    #: so a byte budget spans checkpoints *and* the final dataset — one
    #: disk, one budget.
    disk_faults: Optional[DiskFaultInjector] = None
    #: Contract-validation tally (None when contracts disabled).
    contracts: Optional[ValidationReport] = None
    #: The dead-letter store for quarantined records (always present).
    quarantine: Optional[QuarantineStore] = None
    #: Supervised analysis reports (None unless the scorecard path ran).
    analyses: Optional[AnalysisResults] = None
    #: Stages that degraded instead of reporting.
    stage_failures: List[StageFailure] = field(default_factory=list)
    #: Sealed-archive summary (dir, counts, chain hash) when the run
    #: archived its crawl (None otherwise).
    archive: Optional[dict] = None


class Study:
    """Builds the world, deploys all sites, and runs modules 1 and 2."""

    def __init__(self, config: Optional[StudyConfig] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.config = config or StudyConfig()
        self._rng = RngTree(self.config.seed, name="study")
        if telemetry is not None:
            self.telemetry = telemetry
        elif self.config.telemetry_enabled:
            self.telemetry = Telemetry()
        else:
            self.telemetry = NULL_TELEMETRY
        # ``profile_enabled`` installs a profiler on the (enabled)
        # telemetry unless the caller already supplied one.
        if (self.config.profile_enabled and self.telemetry.enabled
                and not self.telemetry.profiler.enabled):
            self.telemetry.profiler = StageProfiler(
                stages_expected=STAGE_NAMES
            )

    # -- module 1: collect marketplaces ------------------------------------

    def marketplaces_to_monitor(self) -> List[str]:
        """Triage the channel inventory (Section 3.1 / Table 9)."""
        selected = triage(websites())
        return [c.name for c in selected]

    # -- modules 1+2: run -----------------------------------------------------

    def run(self) -> StudyResult:
        telemetry = self.telemetry
        telemetry.profiler.start()
        try:
            with telemetry.tracer.span(
                "study", seed=self.config.seed, scale=self.config.scale
            ):
                result = self._run_instrumented(telemetry)
        finally:
            telemetry.profiler.finish()
        return result

    def _run_instrumented(self, telemetry: Telemetry) -> StudyResult:
        tracer = telemetry.tracer
        profiler = telemetry.profiler
        internet = Internet()
        telemetry.set_clock(internet.clock)
        internet.set_telemetry(telemetry)

        # Chaos: interpose the fault injector between client and sites.
        # Sites still register against the real Internet (the injector
        # delegates); only the crawling client sees injected weather.
        fault_profile = resolve_profile(self.config.chaos_profile)
        injector: Optional[FaultInjector] = None
        network = internet
        if fault_profile.active:
            injector = FaultInjector(
                internet, fault_profile,
                seed=self.config.seed, telemetry=telemetry,
            )
            network = injector
        # Storage-plane chaos is independent of network chaos: the same
        # profile may carry either or both sets of rates.
        disk_faults: Optional[DiskFaultInjector] = None
        if fault_profile.disk_active:
            disk_faults = DiskFaultInjector(
                fault_profile, seed=self.config.seed, telemetry=telemetry,
            )

        with tracer.span("build_world"), profiler.phase("build_world"):
            world = WorldBuilder(self.config.world_config()).build()
        with tracer.span("deploy"), profiler.phase("deploy"):
            # Collection runs against the pre-ban state of the platforms;
            # the Section-8 status sweep at the end sees enforcement.
            platform_sites = deploy_platforms(
                internet, world, enforce_moderation=False
            )
            market_sites = deploy_public_marketplaces(internet, world)
            underground_sites = (
                deploy_underground(internet, world, self._rng.child("underground"))
                if self.config.include_underground
                else {}
            )

        # Crawl archive: the capture hook both clients write through.
        archive: Optional[ArchiveWriter] = None
        if self.config.archive_dir:
            archive = ArchiveWriter(
                self.config.archive_dir,
                internet.clock,
                telemetry=telemetry,
                resume=self.config.resume,
            )

        client = HttpClient(
            network,
            ClientConfig(per_host_delay_seconds=self.config.per_host_delay_seconds),
            telemetry=telemetry,
            capture=archive,
        )
        checkpoint_path: Optional[str] = None
        if self.config.checkpoint_dir:
            checkpoint_path = os.path.join(
                self.config.checkpoint_dir, "crawl_checkpoint.json"
            )
            if not self.config.resume and os.path.exists(checkpoint_path):
                # A fresh (non-resume) run must not silently continue a
                # previous crawl's state.
                os.remove(checkpoint_path)

        def advance_iteration(iteration: int) -> None:
            set_iteration(market_sites, iteration)
            if injector is not None:
                injector.begin_iteration(iteration)
            if injector is not None or checkpoint_path:
                # Reset per-host transport state (breakers, retry budget,
                # politeness) at the iteration boundary: iterations are
                # days apart in simulated time, and a resumed run must
                # enter iteration k with the same client state an
                # uninterrupted run would have.
                client.begin_epoch(iteration)

        watchdog: Optional[CrawlWatchdog] = None
        if telemetry.enabled and self.config.watchdogs_enabled:
            watchdog = CrawlWatchdog(
                telemetry=telemetry,
                clock=internet.clock,
                expected_counts=lambda: {
                    name: len(site.active_listings())
                    for name, site in market_sites.items()
                },
            )
        crawl = IterationCrawl(
            client=client,
            seed_urls={
                name: f"http://{spec.host}/listings"
                for name, spec in MARKETPLACES.items()
            },
            set_iteration=advance_iteration,
            iterations=self.config.iterations,
            checkpoint_path=checkpoint_path,
            telemetry=telemetry,
            watchdog=watchdog,
            archive=archive,
            disk_faults=disk_faults,
        )
        with tracer.span("iteration_crawl"), profiler.phase("iteration_crawl"):
            dataset = crawl.run()
        profiler.add_counts(
            "iteration_crawl",
            pages=sum(r.pages_fetched for r in crawl.reports),
            records=len(dataset.listings),
        )
        if watchdog is not None:
            watchdog.finish()
        if archive is not None:
            # Everything after the iteration crawl (payments, profiles,
            # sweep, underground) archives into one post-collection index.
            archive.begin_phase(POST_COLLECTION_PHASE)

        # Post-crawl stages get their own fault epoch and fresh client
        # state.  Without this, a run resumed from an already-complete
        # checkpoint (which skips the crawl entirely) would enter the
        # payment/profile/underground stages with different RNG-stream
        # offsets than an uninterrupted run — and diverge.
        if injector is not None:
            injector.begin_iteration(self.config.iterations)
        if injector is not None or checkpoint_path:
            client.begin_epoch(self.config.iterations)

        # Payment pages, once per marketplace (Table 3).
        payments: Dict[str, List[Tuple[str, str]]] = {}
        with tracer.span("payment_pages"), profiler.phase("payment_pages"):
            for name, spec in MARKETPLACES.items():
                crawler = MarketplaceCrawler(
                    client, name, f"http://{spec.host}/listings",
                    telemetry=telemetry,
                )
                payments[name] = crawler.collect_payment_methods()
        profiler.add_counts(
            "payment_pages",
            records=sum(len(pairs) for pairs in payments.values()),
        )

        # Profile metadata + timelines for visible accounts, collected
        # while the accounts are still live.
        collector = ProfileCollector(client, telemetry=telemetry)
        with tracer.span("profile_collection"), profiler.phase("profile_collection"):
            profiles, posts = collector.collect(dataset.listings)
        dataset.profiles = profiles
        dataset.posts = posts
        profiler.add_counts(
            "profile_collection",
            records=len(profiles) + len(posts),
        )

        # End-of-study status sweep (Section 8): bans are now visible.
        with tracer.span("status_sweep"), profiler.phase("status_sweep"):
            enable_moderation(platform_sites)
            collector.sweep_status(dataset.profiles)
        profiler.add_counts("status_sweep", records=len(dataset.profiles))

        # Underground manual-protocol collection.
        if underground_sites:
            tor_client = HttpClient(
                network,
                ClientConfig(via_tor=True, per_host_delay_seconds=0.0),
                client_id="manual-analyst",
                telemetry=telemetry,
                capture=archive,
            )
            manual = UndergroundCollector(
                client=tor_client,
                solver=HumanSolver(self._rng.child("solver")),
                telemetry=telemetry,
            )
            with tracer.span("underground_collection"), \
                    profiler.phase("underground_collection"):
                for market, site in underground_sites.items():
                    dataset.underground.extend(
                        manual.collect_market(market, site.host)
                    )
            profiler.add_counts(
                "underground_collection", records=len(dataset.underground)
            )
            profiler.add_client("manual-analyst", tor_client.stats)

        # Collection is over: seal the archive (hash-chain the indexes,
        # GC unreferenced blobs, write archive.json).
        archive_summary: Optional[dict] = None
        if archive is not None:
            with tracer.span("archive_seal"), profiler.phase("archive_seal"):
                archive_summary = archive.summary(archive.seal(self.config))

        # Contract boundary: validate everything collection produced
        # before any analysis sees it.  Quarantined records leave the
        # dataset for the dead-letter store.
        quarantine = QuarantineStore(
            telemetry if telemetry.enabled else None,
            strict=self.config.strict_contracts,
        )
        contracts: Optional[ValidationReport] = None
        if self.config.contracts_enabled:
            with tracer.span("contracts"), profiler.phase("contracts"):
                contracts = validate_dataset(
                    dataset, quarantine,
                    telemetry if telemetry.enabled else None,
                )
            if contracts is not None:
                profiler.add_counts(
                    "contracts", records=contracts.checked_total
                )

        profiler.add_client("crawler", client.stats)
        result = StudyResult(
            dataset=dataset,
            world=world,
            active_per_iteration=crawl.active_per_iteration,
            cumulative_per_iteration=crawl.cumulative_per_iteration,
            payment_methods=payments,
            crawl_reports=crawl.reports,
            simulated_seconds=internet.clock.now(),
            telemetry=telemetry,
            watchdog=watchdog,
            fault_injector=injector,
            disk_faults=disk_faults,
            contracts=contracts,
            quarantine=quarantine,
            archive=archive_summary,
        )
        # Fidelity scorecard: run the supervised analysis suite, then
        # score the collected dataset against the world's ground truth
        # and the paper-shape targets (§quality).  A failed stage
        # degrades its scorecard sections instead of killing the run.
        if telemetry.enabled and self.config.scorecard_enabled:
            supervisor = StageSupervisor(
                telemetry,
                strict=self.config.strict_contracts,
                fail_stages=self.config.fail_stages,
            )
            with tracer.span("analysis_suite"), profiler.phase("analysis_suite"):
                result.analyses = run_analysis_suite(
                    dataset, supervisor, telemetry=telemetry,
                )
            result.stage_failures = list(supervisor.failures)
            with tracer.span("scorecard"), profiler.phase("scorecard"):
                result.scorecard = compute_scorecard(
                    result, analyses=result.analyses,
                )
            result.scorecard.register_gauges(telemetry.metrics)
        return result


__all__ = ["Study", "StudyConfig", "StudyResult"]
