"""Records produced by the measurement pipeline, and their container.

These are deliberately distinct from :mod:`repro.synthetic.model`: the
pipeline only knows what it extracted from HTML and API payloads.  All
records are JSON-serializable dataclasses; :class:`MeasurementDataset`
persists to/loads from a JSON-lines directory so long crawls can be
checkpointed and analyses re-run offline — the workflow the paper's
"share the data on request" model implies.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.util.fileio import atomic_write_lines

#: Provenance value of a record with no degradation flags.
PROVENANCE_COMPLETE = "complete"


def provenance_flags(record) -> List[str]:
    """The record's provenance trail as a list (empty when complete).

    Handles both the historical single-value form (``"partial:<reason>"``)
    and the comma-joined trail: a single value is simply a one-flag trail.
    """
    value = getattr(record, "provenance", PROVENANCE_COMPLETE)
    if not value or value == PROVENANCE_COMPLETE:
        return []
    return [flag for flag in value.split(",") if flag]


def add_provenance(record, flag: str) -> None:
    """Append ``flag`` to the record's provenance trail.

    Idempotent (a repeated flag is not duplicated) and a no-op on record
    types without a ``provenance`` field (posts, underground).
    """
    if not hasattr(record, "provenance"):
        return
    flags = provenance_flags(record)
    if flag in flags:
        return
    flags.append(flag)
    record.provenance = ",".join(flags)


@dataclass
class SellerRecord:
    """A marketplace seller as extracted from their public page."""

    seller_url: str
    marketplace: str
    name: Optional[str] = None
    country: Optional[str] = None
    rating: Optional[float] = None
    joined: Optional[str] = None  # ISO date


@dataclass
class ListingRecord:
    """One account-for-sale offer as extracted from its offer page."""

    offer_url: str
    marketplace: str
    title: str = ""
    platform: Optional[str] = None
    price_usd: Optional[float] = None
    category: Optional[str] = None
    followers_claimed: Optional[int] = None
    monthly_revenue_usd: Optional[float] = None
    income_source: Optional[str] = None
    description: Optional[str] = None
    seller_url: Optional[str] = None
    seller_name: Optional[str] = None
    profile_url: Optional[str] = None
    verified_claim: bool = False
    #: Collection-iteration bookkeeping (Figure 2).
    first_seen_iteration: int = 0
    last_seen_iteration: int = 0
    #: Data lineage: ``"complete"`` for a clean extraction, or a
    #: comma-joined trail of flags (``"partial:<reason>"``,
    #: ``"contract:<rule>"``, ...) appended via :func:`add_provenance`.
    #: Pre-trail files holding a single flag load unchanged.
    provenance: str = PROVENANCE_COMPLETE

    @property
    def has_visible_profile(self) -> bool:
        return self.profile_url is not None


@dataclass
class ProfileRecord:
    """A social media profile as returned by the platform API."""

    profile_url: str
    platform: str
    handle: str
    status: str = "active"  # ApiStatus value
    account_id: Optional[str] = None
    name: Optional[str] = None
    description: Optional[str] = None
    created: Optional[str] = None  # ISO date
    followers: Optional[int] = None
    account_type: Optional[str] = None
    location: Optional[str] = None
    category: Optional[str] = None
    email: Optional[str] = None
    phone: Optional[str] = None
    website: Optional[str] = None
    #: Data lineage trail (see :func:`add_provenance`): ``"complete"``,
    #: or flags like ``"partial:<reason>"`` when a subsidiary fetch
    #: (e.g. the timeline) failed and fields are missing.
    provenance: str = PROVENANCE_COMPLETE

    @property
    def is_active(self) -> bool:
        return self.status == "active"


@dataclass
class PostRecord:
    """One collected profile post."""

    post_id: str
    platform: str
    handle: str
    text: str
    date: Optional[str] = None  # ISO date
    likes: int = 0
    views: int = 0


@dataclass
class UndergroundRecord:
    """One underground-forum posting as recorded manually."""

    url: str
    market: str
    title: str
    body: str
    author: str
    platform: Optional[str] = None
    date: Optional[str] = None
    price_usd: Optional[float] = None
    quantity: int = 1
    replies: int = 0


_RECORD_TYPES = {
    "sellers": SellerRecord,
    "listings": ListingRecord,
    "profiles": ProfileRecord,
    "posts": PostRecord,
    "underground": UndergroundRecord,
}


@dataclass
class MeasurementDataset:
    """Everything one study run collected."""

    sellers: List[SellerRecord] = field(default_factory=list)
    listings: List[ListingRecord] = field(default_factory=list)
    profiles: List[ProfileRecord] = field(default_factory=list)
    posts: List[PostRecord] = field(default_factory=list)
    underground: List[UndergroundRecord] = field(default_factory=list)

    # -- views ---------------------------------------------------------------

    def listings_by_marketplace(self) -> Dict[str, List[ListingRecord]]:
        grouped: Dict[str, List[ListingRecord]] = {}
        for record in self.listings:
            grouped.setdefault(record.marketplace, []).append(record)
        return grouped

    def profiles_by_platform(self) -> Dict[str, List[ProfileRecord]]:
        grouped: Dict[str, List[ProfileRecord]] = {}
        for record in self.profiles:
            grouped.setdefault(record.platform, []).append(record)
        return grouped

    def posts_by_platform(self) -> Dict[str, List[PostRecord]]:
        grouped: Dict[str, List[PostRecord]] = {}
        for record in self.posts:
            grouped.setdefault(record.platform, []).append(record)
        return grouped

    def visible_listings(self) -> List[ListingRecord]:
        return [l for l in self.listings if l.has_visible_profile]

    def profile_for_url(self, profile_url: str) -> Optional[ProfileRecord]:
        """First profile with this URL, via a lazily built index.

        The linear scan this replaces made the network-analysis stage
        quadratic (one full pass per listing).  The index is rebuilt
        whenever ``profiles`` has visibly changed — new list object,
        new length, or a different first/last element — so appends,
        wholesale replacement, and edge in-place swaps all invalidate
        it.  Mutation contract: a same-length swap of an *interior*
        element, or mutating an existing record's ``profile_url`` in
        place, is not detectable and returns stale results — call
        :meth:`invalidate_profile_index` after such edits.
        """
        profiles = self.profiles
        cache = self.__dict__.get("_profile_index")
        if (cache is None or cache[0] is not profiles
                or cache[1] != len(profiles)
                or (profiles and (cache[2] is not profiles[0]
                                  or cache[3] is not profiles[-1]))):
            index: Dict[str, ProfileRecord] = {}
            for profile in profiles:
                index.setdefault(profile.profile_url, profile)
            cache = (profiles, len(profiles),
                     profiles[0] if profiles else None,
                     profiles[-1] if profiles else None, index)
            self.__dict__["_profile_index"] = cache
        return cache[4].get(profile_url)

    def invalidate_profile_index(self) -> None:
        """Drop the lazy URL index after an in-place mutation the
        fingerprint cannot see (interior swap, edited ``profile_url``)."""
        self.__dict__.pop("_profile_index", None)

    # -- persistence -----------------------------------------------------------

    def save(self, directory: str) -> None:
        """Write the dataset as one JSON-lines file per record type.

        Each file is written atomically (temp file + rename), so a
        crash mid-save leaves the previous complete file — or no file —
        never a torn one that :meth:`load` would have to quarantine.
        """
        os.makedirs(directory, exist_ok=True)
        for name in _RECORD_TYPES:
            records = getattr(self, name)
            path = os.path.join(directory, f"{name}.jsonl")
            atomic_write_lines(
                path,
                (json.dumps(dataclasses.asdict(record))
                 for record in records),
            )

    @classmethod
    def load(cls, directory: str,
             quarantine=None) -> "MeasurementDataset":
        """Load a dataset previously written by :meth:`save`.

        Corrupt lines — a truncated final line after a SIGKILL, or a
        payload that no longer matches the record shape — are skipped,
        not fatal.  When a :class:`repro.contracts.QuarantineStore` is
        passed as ``quarantine`` each skipped line is dead-lettered
        there with a machine-readable rule (``jsonl_decode_error`` /
        ``record_shape_error``); without one they are silently dropped.
        """
        dataset = cls()
        for name, record_type in _RECORD_TYPES.items():
            path = os.path.join(directory, f"{name}.jsonl")
            if not os.path.exists(path):
                continue
            records = getattr(dataset, name)
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError as exc:
                        _quarantine_line(
                            quarantine, name, "jsonl_decode_error",
                            str(exc), line,
                        )
                        continue
                    try:
                        records.append(record_from_dict(record_type, payload))
                    except TypeError as exc:
                        _quarantine_line(
                            quarantine, name, "record_shape_error",
                            str(exc), line,
                        )
        return dataset

    def merge(self, other: "MeasurementDataset") -> None:
        """Append all records from ``other`` (no deduplication)."""
        for name in _RECORD_TYPES:
            getattr(self, name).extend(getattr(other, name))

    def summary(self) -> Dict[str, int]:
        return {name: len(getattr(self, name)) for name in _RECORD_TYPES}


def record_from_dict(record_type, payload: dict):
    """Build a record from a JSON payload, dropping unknown keys.

    Forward compatibility: a dataset written by a newer schema (extra
    fields) still loads; a payload that is not a dict or misses required
    fields raises ``TypeError`` for the caller to quarantine.
    """
    if not isinstance(payload, dict):
        raise TypeError(
            f"expected a JSON object, got {type(payload).__name__}"
        )
    known = {f.name for f in dataclasses.fields(record_type)}
    return record_type(**{k: v for k, v in payload.items() if k in known})


def _quarantine_line(quarantine, record_type: str, rule: str,
                     reason: str, line: str) -> None:
    if quarantine is None:
        return
    # Deferred import: contracts imports this module.
    from repro.contracts.quarantine import SOURCE_JSONL_LOAD

    quarantine.quarantine(
        record_type, rule, reason, raw=line[:500], source=SOURCE_JSONL_LOAD,
    )


def dedup_by(records: Iterable, key) -> List:
    """Order-preserving deduplication by a key function."""
    seen = set()
    output = []
    for record in records:
        k = key(record)
        if k not in seen:
            seen.add(k)
            output.append(record)
    return output


__all__ = [
    "ListingRecord",
    "MeasurementDataset",
    "PROVENANCE_COMPLETE",
    "PostRecord",
    "ProfileRecord",
    "SellerRecord",
    "UndergroundRecord",
    "add_provenance",
    "dedup_by",
    "provenance_flags",
    "record_from_dict",
]
