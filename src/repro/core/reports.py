"""Text rendering of every paper table and figure.

Each ``render_*`` function takes analysis outputs and returns the rows the
paper reports, with the paper's published value printed next to the
measured one.  The benchmark harness prints these; EXPERIMENTS.md records
them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.account_setup import AccountSetupReport
from repro.analysis.efficacy import EfficacyReport
from repro.analysis.figures import ListingDynamics
from repro.analysis.marketplace_anatomy import AnatomyReport, MarketplaceAnatomy
from repro.analysis.network import NetworkReport
from repro.analysis.scam_posts import ScamReport
from repro.analysis.underground_analysis import UndergroundReport
from repro.synthetic import calibration as cal
from repro.util.money import format_usd


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with column alignment."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_table1(report: AnatomyReport, scale: float) -> str:
    """Table 1: sellers and listings per marketplace, vs paper."""
    rows = []
    for market, (paper_sellers, paper_listings) in cal.MARKETPLACE_TABLE1.items():
        sellers, listings = report.table1.get(market, (0, 0))
        rows.append(
            (
                market,
                sellers,
                "-" if market in cal.SELLER_HIDDEN_MARKETS else round(paper_sellers * scale),
                listings,
                round(paper_listings * scale),
            )
        )
    rows.append(
        ("Total", report.sellers_total, round(cal.TOTAL_SELLERS * scale),
         report.listings_total, round(cal.TOTAL_LISTINGS * scale))
    )
    return "Table 1 - marketplaces (measured vs paper, scaled)\n" + _table(
        ("Marketplace", "Sellers", "Paper", "Listings", "Paper"), rows
    )


def render_table2(report: AnatomyReport, scale: float) -> str:
    rows = []
    for platform, (pv, pp, pa) in cal.PLATFORM_TABLE2.items():
        visible, posts, all_count = report.table2.get(platform, (0, 0, 0))
        rows.append(
            (platform, visible, round(pv * scale), posts, round(pp * scale),
             all_count, round(pa * scale))
        )
    rows.append(
        ("Total", report.visible_total, round(cal.TOTAL_VISIBLE * scale),
         report.posts_total, round(cal.TOTAL_POSTS * scale),
         report.listings_total, round(cal.TOTAL_LISTINGS * scale))
    )
    return "Table 2 - data collection (measured vs paper, scaled)\n" + _table(
        ("Platform", "Visible", "Paper", "Posts", "Paper", "All", "Paper"), rows
    )


def render_table3(payment_matrix: Dict[str, Dict[str, List[str]]]) -> str:
    rows = []
    for market, groups in payment_matrix.items():
        expected = {m for _g, m in cal.PAYMENT_METHODS[market] if m != "Unknown"}
        found = {m for ms in groups.values() for m in ms if m != "Unknown"}
        rows.append(
            (
                market,
                ", ".join(sorted(found)) or "Unknown",
                "match" if found == expected else f"paper: {sorted(expected) or 'Unknown'}",
            )
        )
    return "Table 3 - payment methods per marketplace\n" + _table(
        ("Marketplace", "Methods found", "vs paper"), rows
    )


def render_table4(report: AccountSetupReport) -> str:
    rows = []
    for platform, (pmin, pmed, pmax) in cal.VISIBLE_FOLLOWERS.items():
        summary = report.followers_by_platform.get(platform)
        if summary is None:
            continue
        rows.append(
            (platform, int(summary.minimum), pmin, int(summary.median), pmed,
             int(summary.maximum), f"{pmax:,}")
        )
    return "Table 4 - visible-account followers (measured vs paper)\n" + _table(
        ("Platform", "Min", "Paper", "Median", "Paper", "Max", "Paper"), rows
    )


def render_table5(report: ScamReport, scale: float) -> str:
    rows = []
    for platform, (pa, pp) in cal.SCAM_TABLE5.items():
        accounts, posts = report.table5.get(platform, (0, 0))
        rows.append(
            (platform, accounts, round(pa * scale), posts, round(pp * scale))
        )
    rows.append(
        ("Total", report.total_scam_accounts, round(cal.TOTAL_SCAM_ACCOUNTS * scale),
         report.total_scam_posts, round(cal.TOTAL_SCAM_POSTS * scale))
    )
    return "Table 5 - scam accounts/posts per platform (measured vs paper, scaled)\n" + _table(
        ("Platform", "Accounts", "Paper", "Posts", "Paper"), rows
    )


def render_table6(report: ScamReport, scale: float) -> str:
    rows = []
    for category, subtypes in cal.SCAM_TAXONOMY.items():
        measured = report.table6.get(category, {})
        cat_accounts = sum(a for a, _p in measured.values())
        cat_posts = sum(p for _a, p in measured.values())
        paper_accounts = sum(a for a, _p in subtypes.values())
        paper_posts = sum(p for _a, p in subtypes.values())
        rows.append(
            (category, cat_accounts, round(paper_accounts * scale),
             cat_posts, round(paper_posts * scale))
        )
        for subtype, (pa, pp) in subtypes.items():
            accounts, posts = measured.get(subtype, (0, 0))
            rows.append(
                (f"  - {subtype}", accounts, round(pa * scale), posts, round(pp * scale))
            )
    return "Table 6 - scam taxonomy (measured vs paper, scaled)\n" + _table(
        ("Category", "Accounts", "Paper", "Posts", "Paper"), rows
    )


def render_table7(report: NetworkReport, scale: float) -> str:
    rows = []
    for platform, (attr, pclusters, paccounts, pmax, pmedian) in cal.NETWORK_TABLE7.items():
        stats = report.per_platform.get(platform)
        if stats is None:
            continue
        rows.append(
            (platform, stats.attributes, stats.clusters, round(pclusters * scale),
             stats.cluster_accounts, round(paccounts * scale),
             stats.max_size, pmax, f"{stats.cluster_fraction * 100:.1f}%")
        )
    rows.append(
        ("All", "-", report.total_clusters, round(cal.TOTAL_CLUSTERS * scale),
         report.total_cluster_accounts, round(cal.TOTAL_CLUSTERED_ACCOUNTS * scale),
         "-", 46, f"{report.overall_fraction * 100:.1f}%")
    )
    return "Table 7 - network clusters (measured vs paper, scaled)\n" + _table(
        ("Platform", "Attributes", "Clusters", "Paper", "Accts", "Paper",
         "Max", "Paper", "Share"), rows
    )


def render_table8(report: EfficacyReport) -> str:
    rows = []
    for platform, paper_rate in cal.BLOCKING_EFFICACY.items():
        eff = report.per_platform.get(platform)
        if eff is None:
            continue
        rows.append(
            (platform, eff.visible_accounts, eff.inactive_accounts,
             f"{eff.efficacy_percent:.2f}", f"{paper_rate * 100:.2f}")
        )
    rows.append(
        ("All", report.total_visible, report.total_inactive,
         f"{report.overall_percent:.2f}", f"{cal.OVERALL_EFFICACY * 100:.2f}")
    )
    return "Table 8 - detection efficacy (measured vs paper, %)\n" + _table(
        ("Platform", "Visible", "Inactive", "Efficacy", "Paper"), rows
    )


def render_table9(channels) -> str:
    monitored = [c for c in channels if c.monitored]
    selling = [c for c in channels if c.selling]
    handles = [c for c in channels if c.handles_public]
    rows = [
        ("websites", sum(1 for c in channels if c.category != "Contact"),
         cal.CHANNELS_TOTAL_SITES + 2),  # paper: 58 sites (+ some double-listed)
        ("contact points", sum(1 for c in channels if c.category == "Contact"),
         cal.CHANNELS_CONTACT_POINTS),
        ("selling accounts", len(selling), "-"),
        ("handles public", len(handles), 12),
        ("monitored", len(monitored), "-"),
    ]
    return "Table 9 - trading channel triage (measured vs paper)\n" + _table(
        ("Channel class", "Count", "Paper"), rows
    )


def render_fig2(dynamics: ListingDynamics) -> str:
    rows = [
        (i, dynamics.active[i], dynamics.cumulative[i])
        for i in dynamics.iterations
    ]
    shape = (
        f"active declines after peak: {dynamics.active_declines} (paper: True); "
        f"cumulative monotonic: {dynamics.cumulative_monotonic} (paper: True)"
    )
    return (
        "Figure 2 - listing dynamics per iteration\n"
        + _table(("Iteration", "Active", "Cumulative"), rows)
        + "\n" + shape
    )


def render_fig3(outlier) -> str:
    if outlier is None:
        return "Figure 3 - no extreme-price outlier found (paper: $50M FameSwap listing)"
    return (
        "Figure 3 - extreme-price exemplar\n"
        f"marketplace={outlier.marketplace} (paper: FameSwap), "
        f"price={format_usd(outlier.price_usd)} (paper: $50,000,000), "
        f"followers={outlier.followers_claimed:,} (paper: ~990,000)"
    )


def render_fig4(report: AccountSetupReport) -> str:
    rows = []
    for platform, stats in report.creation_by_platform.items():
        rows.append(
            (platform, f"{stats.pre_2020_fraction * 100:.1f}%",
             stats.earliest_year, cal.CREATION_YEAR_FLOOR.get(platform, "-"),
             f"{stats.fraction_2006_2010 * 100:.2f}%")
        )
    overall = report.creation_overall
    rows.append(
        ("All", f"{overall.pre_2020_fraction * 100:.1f}%", overall.earliest_year,
         2006, f"{overall.fraction_2006_2010 * 100:.2f}%")
    )
    return (
        "Figure 4 - creation dates (paper: ~30% pre-2020; <0.5% of YouTube in 2006-2010)\n"
        + _table(("Platform", "Pre-2020", "Earliest", "Paper floor", "2006-2010"), rows)
    )


def render_fig5(descriptions: List[str]) -> str:
    lines = ["Figure 5 - exemplar cluster profile descriptions"]
    for index, text in enumerate(descriptions, 1):
        lines.append(f"  {index}. {text}")
    return "\n".join(lines)


def render_underground(report: UndergroundReport) -> str:
    rows = []
    for market, (pposts, psellers, _platforms) in cal.UNDERGROUND_MARKETS.items():
        stats = report.markets.get(market)
        if stats is None:
            rows.append((market, 0, pposts, 0, psellers))
            continue
        rows.append((market, stats.posts, pposts, stats.sellers, psellers))
    reuse_lines = []
    for platform, reuse in report.reuse_by_platform.items():
        paper = (
            f"{cal.UNDERGROUND_TIKTOK_REUSED}/{cal.UNDERGROUND_TIKTOK_POSTS}"
            if platform == "TikTok"
            else "/".join(map(str, cal.UNDERGROUND_OTHER_REUSE.get(platform, (0, 0))))
        )
        reuse_lines.append(
            f"  {platform}: reused {reuse.reused_posts}/{reuse.posts} "
            f"(paper {paper}), similarity {reuse.min_similarity:.2f}-"
            f"{reuse.max_similarity:.2f} (paper 0.88-1.00), "
            f"authors {reuse.authors_involved}"
        )
    return (
        "Section 4.2 - underground markets (measured vs paper)\n"
        + _table(("Market", "Posts", "Paper", "Sellers", "Paper"), rows)
        + f"\ntotal posts: {report.total_posts} (paper {cal.UNDERGROUND_TOTAL_POSTS})\n"
        + "\n".join(reuse_lines)
        + f"\ncross-market sellers: {len(report.cross_market_sellers)} "
        f"(paper {cal.UNDERGROUND_CROSS_MARKET_SELLERS})"
    )


def render_anatomy_extras(report: AnatomyReport, scale: float) -> str:
    top_cats = MarketplaceAnatomy.top_categories(report)
    top_countries = MarketplaceAnatomy.top_seller_countries(report)
    prices = report.prices
    lines = [
        "Section 4.1 extras (measured vs paper, scaled)",
        f"categories: {len(report.category_counts)} unique "
        f"(paper {cal.LISTING_CATEGORY_COUNT}); uncategorized "
        f"{report.uncategorized / max(1, report.listings_total) * 100:.0f}% (paper 22%)",
        "top categories: " + ", ".join(f"{c} ({n})" for c, n in top_cats)
        + "  [paper head: " + ", ".join(c for c, _n in cal.LISTING_TOP_CATEGORIES) + "]",
        "top seller countries: " + ", ".join(f"{c} ({n})" for c, n in top_countries)
        + "  [paper head: US, Ethiopia, Pakistan, UK, Turkey]",
        f"verified claims: {report.verified_count} "
        f"(paper {round(cal.VERIFIED_LISTINGS * scale)}), platforms "
        f"{dict(report.verified_platforms)} (paper: all YouTube), "
        f"with profile URL: {report.verified_with_profile_url} (paper 0)",
        f"monetized: {report.monetized.count} listings "
        f"(paper {round(cal.MONETIZED_LISTINGS * scale)}), median "
        f"{format_usd(report.monetized.median)}/mo (paper $136)",
        f"descriptions: {report.description_count / max(1, report.listings_total) * 100:.0f}% "
        "(paper 63%)",
        "price medians: " + ", ".join(
            f"{p}={format_usd(v)} (paper {format_usd(cal.PRICE_MEDIANS[p])})"
            for p, v in prices.medians_by_platform.items()
        ),
        f"total advertised: {format_usd(prices.overall_total)} "
        f"(paper {format_usd(cal.TOTAL_ADVERTISED_VALUE)} at scale 1.0)",
        f"top-grossing platform: {prices.top_platform} (paper TikTok); "
        f"lowest: {prices.bottom_platform} (paper Facebook)",
        f">$20K block: {prices.high_price_count} listings "
        f"(paper {round(cal.HIGH_PRICE_COUNT * scale)}), median "
        f"{format_usd(prices.high_price_median)} (paper $45,000), max "
        f"{format_usd(prices.high_price_max)} (paper $5,000,000)",
    ]
    return "\n".join(lines)


__all__ = [name for name in dir() if name.startswith("render_")]
