"""An in-process web substrate.

The paper's crawler drove real marketplace websites with Selenium and the
Chrome DevTools Protocol.  Re-crawling live account-trading sites is out of
scope (gated data, ethics), so this package provides the substrate the
reproduction crawls instead:

* :mod:`repro.web.http` — request/response primitives and error types;
* :mod:`repro.web.url` — URL normalization and joining;
* :mod:`repro.web.html` — an HTML element tree with a builder and renderer;
* :mod:`repro.web.html_parser` — an HTML parser back into the element tree,
  with a small query API the extractor uses;
* :mod:`repro.web.server` — virtual hosts, routing, and the
  :class:`~repro.web.server.Internet` that maps hostnames to sites;
* :mod:`repro.web.client` — an HTTP client with cookies, redirects,
  politeness delays, timeouts, and retry/backoff, metered on a simulated
  clock;
* :mod:`repro.web.breaker` — the per-host circuit breaker the client
  uses to fast-fail hosts that keep erroring;
* :mod:`repro.web.ratelimit` — token-bucket limiting used by sites;
* :mod:`repro.web.robots` — robots.txt parsing and checking;
* :mod:`repro.web.captcha` — the CAPTCHA gate underground forums put in
  front of their content.

The crawler in :mod:`repro.crawler` sees exactly the same surface it would
against the real web: URLs, status codes, HTML.
"""

from repro.web.breaker import BreakerConfig, CircuitBreaker
from repro.web.client import ClientConfig, HttpClient
from repro.web.html import Element, E, escape_html, text_of
from repro.web.html_parser import parse_html
from repro.web.http import (
    CircuitOpen,
    ConnectionFailed,
    HttpError,
    Request,
    RequestTimeout,
    Response,
    TooManyRedirects,
    parse_retry_after,
)
from repro.web.server import Internet, Route, Site
from repro.web.url import join_url, normalize_url, parse_query, url_host, url_path

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpen",
    "ClientConfig",
    "ConnectionFailed",
    "E",
    "Element",
    "HttpClient",
    "HttpError",
    "Internet",
    "Request",
    "RequestTimeout",
    "Response",
    "Route",
    "Site",
    "TooManyRedirects",
    "parse_retry_after",
    "escape_html",
    "join_url",
    "normalize_url",
    "parse_html",
    "parse_query",
    "text_of",
    "url_host",
    "url_path",
]
