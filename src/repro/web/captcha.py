"""CAPTCHA gates, as found on the underground forums.

The paper reports that every underground market "implemented complex,
site-specific, non-standard CAPTCHAs", which is why that data was collected
manually.  We model the gate faithfully: a challenge the automated crawler
*cannot* answer (and, per the ethics statement, would not try to bypass),
and a :class:`HumanSolver` that represents the researcher solving it by
hand at a bounded, human pace.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict

from repro.util.rng import RngTree


@dataclass(frozen=True)
class Challenge:
    """One issued CAPTCHA challenge.

    ``answer`` stays server-side (inside the gate); clients only ever see
    ``challenge_id`` and ``prompt``.
    """

    challenge_id: str
    prompt: str
    answer: str


class CaptchaGate:
    """Issues site-specific challenges and verifies answers."""

    def __init__(self, rng: RngTree, style: str = "arithmetic") -> None:
        if style not in ("arithmetic", "word-pick"):
            raise ValueError(f"unknown captcha style: {style}")
        self._rng = rng
        self.style = style
        self._issued: Dict[str, str] = {}
        self._counter = 0

    def issue(self) -> Challenge:
        self._counter += 1
        challenge_id = f"c{self._counter:06d}"
        if self.style == "arithmetic":
            a = self._rng.randint(2, 19)
            b = self._rng.randint(2, 19)
            prompt = f"What is {a} plus {b}?"
            answer = str(a + b)
        else:
            options = ["onion", "market", "vendor", "escrow", "listing"]
            index = self._rng.randint(0, len(options) - 1)
            prompt = (
                "Type the word number "
                f"{index + 1} from: {', '.join(options)}"
            )
            answer = options[index]
        self._issued[challenge_id] = answer
        return Challenge(challenge_id=challenge_id, prompt=prompt, answer=answer)

    def verify(self, challenge_id: str, answer: str) -> bool:
        """Check an answer; challenges are single-use."""
        expected = self._issued.pop(challenge_id, None)
        return expected is not None and answer.strip().lower() == expected.lower()

    @property
    def outstanding(self) -> int:
        return len(self._issued)


class HumanSolver:
    """A researcher solving CAPTCHAs by hand, *from the prompt text only*.

    Solves correctly with high (not perfect) probability and takes tens of
    simulated seconds per challenge — which is what bounds the underground
    collection to a manual protocol.  Never sees server-side state.
    """

    _ARITHMETIC = re.compile(r"What is (\d+) plus (\d+)\?")
    _WORD_PICK = re.compile(r"Type the word number (\d+) from: (.+)$")

    def __init__(self, rng: RngTree, accuracy: float = 0.96,
                 seconds_per_challenge: float = 25.0) -> None:
        if not 0 < accuracy <= 1:
            raise ValueError("accuracy must be in (0, 1]")
        self._rng = rng
        self.accuracy = accuracy
        self.seconds_per_challenge = seconds_per_challenge

    def solve(self, prompt: str) -> str:
        """Work out the answer from the prompt, with human error."""
        answer = self._read(prompt)
        if self._rng.bernoulli(self.accuracy):
            return answer
        return answer + "x"  # a typo

    def _read(self, prompt: str) -> str:
        match = self._ARITHMETIC.search(prompt)
        if match:
            return str(int(match.group(1)) + int(match.group(2)))
        match = self._WORD_PICK.search(prompt)
        if match:
            options = [w.strip() for w in match.group(2).split(",")]
            index = int(match.group(1)) - 1
            if 0 <= index < len(options):
                return options[index]
        return "unknown"


__all__ = ["CaptchaGate", "Challenge", "HumanSolver"]
