"""Token-bucket rate limiting on the simulated clock.

Marketplace sites throttle aggressive clients with 429s; the crawler's
politeness layer spaces its own requests.  Both are built on this bucket.
"""

from __future__ import annotations

from repro.util.simtime import SimClock


class TokenBucket:
    """A classic token bucket.

    Tokens refill at ``rate_per_second`` up to ``capacity``.  ``try_take``
    is the server-side operation (fail fast -> 429); ``delay_until_ready``
    is the client-side operation (how long to politely wait).
    """

    def __init__(self, clock: SimClock, rate_per_second: float, capacity: float) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._clock = clock
        self.rate = float(rate_per_second)
        self.capacity = float(capacity)
        self._tokens = float(capacity)
        self._last_refill = clock.now()

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last_refill = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; return whether it succeeded."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def delay_until_ready(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens would be available (0 if now)."""
        if amount > self.capacity:
            raise ValueError("amount exceeds bucket capacity")
        self._refill()
        deficit = amount - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


__all__ = ["TokenBucket"]
