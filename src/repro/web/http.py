"""HTTP primitives: requests, responses, status codes, and error types."""

from __future__ import annotations

import datetime as _dt
import email.utils
from dataclasses import dataclass, field
from typing import Dict, Optional

# Status codes the substrate actually uses, named for readability.
OK = 200
MOVED_PERMANENTLY = 301
FOUND = 302
BAD_REQUEST = 400
UNAUTHORIZED = 401
FORBIDDEN = 403
NOT_FOUND = 404
METHOD_NOT_ALLOWED = 405
TOO_MANY_REQUESTS = 429
INTERNAL_SERVER_ERROR = 500
BAD_GATEWAY = 502
SERVICE_UNAVAILABLE = 503
GATEWAY_TIMEOUT = 504

REDIRECT_CODES = frozenset({MOVED_PERMANENTLY, FOUND})
#: Transient server answers worth retrying.  502/504 are what a flaky
#: reverse proxy in front of a marketplace emits, and the fault layer
#: injects them alongside 500/503.
RETRYABLE_CODES = frozenset({
    TOO_MANY_REQUESTS,
    INTERNAL_SERVER_ERROR,
    BAD_GATEWAY,
    SERVICE_UNAVAILABLE,
    GATEWAY_TIMEOUT,
})

REASONS = {
    OK: "OK",
    MOVED_PERMANENTLY: "Moved Permanently",
    FOUND: "Found",
    BAD_REQUEST: "Bad Request",
    UNAUTHORIZED: "Unauthorized",
    FORBIDDEN: "Forbidden",
    NOT_FOUND: "Not Found",
    METHOD_NOT_ALLOWED: "Method Not Allowed",
    TOO_MANY_REQUESTS: "Too Many Requests",
    INTERNAL_SERVER_ERROR: "Internal Server Error",
    BAD_GATEWAY: "Bad Gateway",
    SERVICE_UNAVAILABLE: "Service Unavailable",
    GATEWAY_TIMEOUT: "Gateway Timeout",
}

#: Wall-clock instant that simulated second 0 corresponds to (the start
#: of the paper's collection window).  HTTP-date headers — notably
#: ``Retry-After`` — are interpreted against this epoch.
SIM_EPOCH = _dt.datetime(2024, 2, 1, tzinfo=_dt.timezone.utc)


class HttpError(Exception):
    """Base class for errors raised by the web substrate."""


class ConnectionFailed(HttpError):
    """The hostname does not resolve or the site refused the connection."""


class RequestTimeout(HttpError):
    """The server took longer than the client's timeout to answer."""


class CircuitOpen(HttpError):
    """The client's per-host circuit breaker is open; request not sent."""


class TooManyRedirects(HttpError):
    """A redirect chain exceeded the client's limit."""


class RequestRejected(HttpError):
    """The client refused to send the request (e.g. robots.txt disallows)."""


def sim_http_date(sim_now: float) -> str:
    """Format a simulated timestamp as an RFC 7231 HTTP-date."""
    instant = SIM_EPOCH + _dt.timedelta(seconds=sim_now)
    return email.utils.format_datetime(instant, usegmt=True)


def parse_retry_after(value: Optional[str], sim_now: float = 0.0) -> Optional[float]:
    """Parse a ``Retry-After`` header into a non-negative delay in seconds.

    RFC 7231 allows both forms: delta-seconds (``"120"``) and an
    HTTP-date (``"Fri, 31 Dec 1999 23:59:59 GMT"``).  Dates are resolved
    against :data:`SIM_EPOCH` plus ``sim_now``.  Returns ``None`` for a
    missing or unparseable header, so callers fall back to their own
    backoff instead of crashing on a hostile server.
    """
    if not value:
        return None
    text = value.strip()
    try:
        return max(0.0, float(text))
    except ValueError:
        pass
    try:
        instant = email.utils.parsedate_to_datetime(text)
    except (TypeError, ValueError):
        return None
    if instant is None:
        return None
    if instant.tzinfo is None:
        instant = instant.replace(tzinfo=_dt.timezone.utc)
    delta = (instant - SIM_EPOCH).total_seconds() - sim_now
    return max(0.0, delta)


@dataclass
class Request:
    """An HTTP request as the in-process server receives it."""

    method: str
    url: str
    headers: Dict[str, str] = field(default_factory=dict)
    params: Dict[str, str] = field(default_factory=dict)
    form: Dict[str, str] = field(default_factory=dict)
    cookies: Dict[str, str] = field(default_factory=dict)
    #: Filled by the router when the matched route has path parameters.
    path_params: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if self.method not in ("GET", "POST", "HEAD"):
            raise ValueError(f"unsupported method: {self.method}")

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        wanted = name.lower()
        for key, value in self.headers.items():
            if key.lower() == wanted:
                return value
        return default


@dataclass
class Response:
    """An HTTP response."""

    status: int
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    url: str = ""
    set_cookies: Dict[str, str] = field(default_factory=dict)
    #: Simulated seconds the request took (server latency + transfer).
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in REDIRECT_CODES and "Location" in self.headers

    @property
    def reason(self) -> str:
        return REASONS.get(self.status, "Unknown")

    def header(self, name: str, default: str = "") -> str:
        wanted = name.lower()
        for key, value in self.headers.items():
            if key.lower() == wanted:
                return value
        return default

    @property
    def content_type(self) -> str:
        return self.header("Content-Type", "text/html")

    def raise_for_status(self) -> "Response":
        if not self.ok:
            raise HttpError(f"{self.status} {self.reason} for {self.url}")
        return self


def html_response(body: str, status: int = OK) -> Response:
    """Convenience constructor for HTML pages."""
    return Response(status=status, body=body, headers={"Content-Type": "text/html"})


def json_like_response(body: str, status: int = OK) -> Response:
    """Convenience constructor for API endpoints returning JSON text."""
    return Response(status=status, body=body, headers={"Content-Type": "application/json"})


def redirect_response(location: str, permanent: bool = False) -> Response:
    status = MOVED_PERMANENTLY if permanent else FOUND
    return Response(status=status, headers={"Location": location})


def error_response(status: int, message: str = "") -> Response:
    reason = REASONS.get(status, "Error")
    body = message or f"<html><body><h1>{status} {reason}</h1></body></html>"
    return Response(status=status, body=body, headers={"Content-Type": "text/html"})


__all__ = [
    "BAD_GATEWAY",
    "BAD_REQUEST",
    "FORBIDDEN",
    "FOUND",
    "GATEWAY_TIMEOUT",
    "INTERNAL_SERVER_ERROR",
    "METHOD_NOT_ALLOWED",
    "MOVED_PERMANENTLY",
    "NOT_FOUND",
    "OK",
    "REASONS",
    "REDIRECT_CODES",
    "RETRYABLE_CODES",
    "SERVICE_UNAVAILABLE",
    "SIM_EPOCH",
    "TOO_MANY_REQUESTS",
    "UNAUTHORIZED",
    "CircuitOpen",
    "ConnectionFailed",
    "HttpError",
    "Request",
    "RequestRejected",
    "RequestTimeout",
    "Response",
    "TooManyRedirects",
    "error_response",
    "html_response",
    "json_like_response",
    "parse_retry_after",
    "redirect_response",
    "sim_http_date",
]
