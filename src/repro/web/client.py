"""The HTTP client the crawler uses.

Implements what the paper's Selenium/CDP stack provided at the transport
level: sessions (cookies), redirects, retry with exponential backoff on
retryable statuses, per-host politeness delays, and robots.txt compliance.
All timing is charged to the simulated clock, so crawls are deterministic.

The client is hardened against a hostile substrate (see
:mod:`repro.faults`): requests time out after
:attr:`ClientConfig.timeout_seconds` of simulated time, transient
transport failures (connect errors, timeouts) are retried with the same
backoff as retryable statuses, each host has a finite *retry budget* per
crawl epoch, and a per-host circuit breaker
(:class:`~repro.web.breaker.CircuitBreaker`) fast-fails requests to
hosts that keep failing, probing them again after a cooldown.

Every request is observable: the client keeps per-host counters and
retry/politeness overhead in :class:`ClientStats`, and — when handed a
:class:`~repro.obs.telemetry.Telemetry` — records
``http_requests_total{host,status}``, retry/robots/timeout counters,
breaker state gauges, a sim-time latency histogram, and a span per
top-level request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.web import http
from repro.web.breaker import STATE_CODES, BreakerConfig, CircuitBreaker
from repro.web.http import (
    CircuitOpen,
    ConnectionFailed,
    Request,
    RequestRejected,
    RequestTimeout,
    Response,
    TooManyRedirects,
)
from repro.web.robots import RobotsPolicy
from repro.web.server import Internet
from repro.web.url import join_url, url_host, url_path

#: Statuses that count as host failures for the circuit breaker.  429 is
#: deliberately absent: a throttling host is alive, and backoff — not the
#: breaker — is the right response.
_BREAKER_FAILURE_CODES = frozenset({
    http.INTERNAL_SERVER_ERROR,
    http.BAD_GATEWAY,
    http.SERVICE_UNAVAILABLE,
    http.GATEWAY_TIMEOUT,
})


@dataclass
class ClientConfig:
    """Tunables for :class:`HttpClient`."""

    user_agent: str = "repro-measurement-crawler/1.0"
    max_redirects: int = 5
    max_retries: int = 3
    backoff_base_seconds: float = 1.0
    backoff_multiplier: float = 2.0
    #: Minimum spacing between requests to the same host (politeness).
    per_host_delay_seconds: float = 0.5
    #: Honour robots.txt on public (non-onion) hosts.
    respect_robots: bool = True
    via_tor: bool = False
    #: Give up on a response after this much simulated time (None = never).
    #: Hung servers otherwise stall the crawl forever.
    timeout_seconds: Optional[float] = 30.0
    #: Retries allowed per host per crawl epoch; once spent, transient
    #: failures surface immediately instead of backing off again.
    retry_budget_per_host: int = 64
    #: Per-host circuit breaker (None disables breaking entirely).
    breaker: Optional[BreakerConfig] = field(default_factory=BreakerConfig)


@dataclass
class ClientStats:
    """Counters for reporting and tests.

    ``requests_sent``/``retries``/``robots_blocked``/``by_status`` are
    the original fields; ``by_host`` and the two overhead accumulators
    make politeness cost measurable per run.
    """

    requests_sent: int = 0
    retries: int = 0
    robots_blocked: int = 0
    by_status: Dict[int, int] = field(default_factory=dict)
    #: Requests per hostname (includes robots.txt fetches).
    by_host: Dict[str, int] = field(default_factory=dict)
    #: Response body bytes received, total and per hostname — the raw
    #: material for the profiler's per-host throughput rates.
    bytes_received: int = 0
    bytes_by_host: Dict[str, int] = field(default_factory=dict)
    #: Simulated seconds spent waiting in retry backoff.
    retry_wait_seconds: float = 0.0
    #: Simulated seconds spent waiting for per-host politeness spacing.
    politeness_wait_seconds: float = 0.0
    #: Requests abandoned because the server exceeded the client timeout.
    timeouts: int = 0
    #: Requests fast-failed by an open circuit breaker.
    breaker_fast_fails: int = 0

    def record(self, status: int, host: Optional[str] = None,
               nbytes: int = 0) -> None:
        self.requests_sent += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if host is not None:
            self.by_host[host] = self.by_host.get(host, 0) + 1
        if nbytes:
            self.bytes_received += nbytes
            if host is not None:
                self.bytes_by_host[host] = (
                    self.bytes_by_host.get(host, 0) + nbytes
                )


class HttpClient:
    """A polite, retrying HTTP client bound to one :class:`Internet`."""

    def __init__(
        self,
        internet: Internet,
        config: Optional[ClientConfig] = None,
        client_id: str = "crawler",
        telemetry: Optional[Telemetry] = None,
        capture=None,
    ) -> None:
        self._internet = internet
        self.config = config or ClientConfig()
        self.client_id = client_id
        #: Optional :class:`~repro.archive.writer.ArchiveWriter` (duck-
        #: typed).  When set, every wire exchange and every top-level
        #: request outcome is archived.  Exchanges are recorded in
        #: ``_send_once`` — *before* the retry/redirect machinery can
        #: repair or discard them — so intermediate 503s, truncated
        #: bodies, and timed-out responses land in the archive exactly
        #: as observed.
        self.capture = capture
        self.cookies: Dict[str, Dict[str, str]] = {}
        self.stats = ClientStats()
        self._robots_cache: Dict[str, Optional[RobotsPolicy]] = {}
        self._last_request_at: Dict[str, float] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._retry_budget: Dict[str, int] = {}
        self.telemetry = telemetry or NULL_TELEMETRY
        metrics = self.telemetry.metrics
        self._m_requests = metrics.counter(
            "http_requests_total", "requests sent, by host and status",
            labels=("host", "status"),
        )
        self._m_retries = metrics.counter(
            "http_retries_total", "retried requests, by host", labels=("host",)
        )
        self._m_retry_wait = metrics.counter(
            "http_retry_wait_seconds_total",
            "simulated seconds spent in retry backoff", labels=("host",),
        )
        self._m_politeness_wait = metrics.counter(
            "http_politeness_wait_seconds_total",
            "simulated seconds spent in per-host politeness spacing",
            labels=("host",),
        )
        self._m_robots_blocked = metrics.counter(
            "robots_blocked_total", "requests rejected by robots.txt",
            labels=("host",),
        )
        self._m_latency = metrics.histogram(
            "http_request_sim_seconds",
            "simulated seconds per top-level request (incl. waits)",
            labels=("host",),
        )
        self._m_timeouts = metrics.counter(
            "http_timeouts_total", "requests abandoned at the client timeout",
            labels=("host",),
        )
        self._m_response_bytes = metrics.counter(
            "http_response_bytes_total",
            "response body bytes received, by host", labels=("host",),
        )
        self._m_breaker_state = metrics.gauge(
            "circuit_breaker_state",
            "breaker state per host: 0 closed, 1 open, 2 half-open",
            labels=("host",),
        )
        self._m_breaker_transitions = metrics.counter(
            "circuit_breaker_transitions_total",
            "breaker transitions, by host and new state",
            labels=("host", "to"),
        )
        self._m_breaker_fast_fail = metrics.counter(
            "circuit_breaker_fast_fails_total",
            "requests rejected by an open breaker", labels=("host",),
        )

    # -- public API ----------------------------------------------------------

    @property
    def clock(self):
        """The simulated clock this client charges its time to."""
        return self._internet.clock

    def begin_epoch(self, epoch: int) -> None:
        """Start a new crawl epoch (a collection iteration).

        Iterations are days apart in simulated time: breakers would have
        cooled down, retry budgets replenished, and politeness spacing
        elapsed long ago.  The robots cache is dropped too — a week-old
        robots.txt must be re-checked, and re-fetching it at every epoch
        keeps the per-host request sequence (and therefore the seeded
        fault stream) identical between a resumed crawl and an
        uninterrupted one (see ``tests/integration/test_kill_resume.py``).
        """
        for breaker in self._breakers.values():
            breaker.reset()
        self._retry_budget.clear()
        self._last_request_at.clear()
        self._robots_cache.clear()

    def breaker_state(self, host: str) -> str:
        """The breaker state for ``host`` ("closed" when untracked)."""
        breaker = self._breakers.get(host)
        return breaker.state if breaker is not None else "closed"

    def get(self, url: str, **params: str) -> Response:
        return self.request("GET", url, params={k: str(v) for k, v in params.items()})

    def post(self, url: str, form: Optional[Dict[str, str]] = None) -> Response:
        return self.request("POST", url, form=form or {})

    def request(
        self,
        method: str,
        url: str,
        params: Optional[Dict[str, str]] = None,
        form: Optional[Dict[str, str]] = None,
    ) -> Response:
        """Send a request, following redirects and retrying retryables."""
        host = url_host(url)
        sim_start = self._internet.clock.now()
        with self.telemetry.tracer.span("http.request", method=method, url=url):
            try:
                response = self._follow_redirects(method, url, params, form)
            except http.HttpError as exc:
                if self.capture is not None:
                    self.capture.record_outcome(
                        client=self.client_id, method=method, url=url,
                        params=params, form=form, error=exc,
                    )
                raise
            finally:
                self._m_latency.observe(
                    self._internet.clock.now() - sim_start, host=host
                )
        if self.capture is not None:
            self.capture.record_outcome(
                client=self.client_id, method=method, url=url,
                params=params, form=form, response=response,
            )
        return response

    def _follow_redirects(
        self,
        method: str,
        url: str,
        params: Optional[Dict[str, str]],
        form: Optional[Dict[str, str]],
    ) -> Response:
        redirects = 0
        current_url = url
        while True:
            response = self._send_with_retries(method, current_url, params, form)
            if response.is_redirect:
                redirects += 1
                if redirects > self.config.max_redirects:
                    raise TooManyRedirects(f"redirect limit exceeded at {current_url}")
                current_url = join_url(current_url, response.headers["Location"])
                method, params, form = "GET", None, None
                continue
            return response

    # -- internals -------------------------------------------------------------

    def _send_with_retries(
        self,
        method: str,
        url: str,
        params: Optional[Dict[str, str]],
        form: Optional[Dict[str, str]],
    ) -> Response:
        attempt = 0
        backoff = self.config.backoff_base_seconds
        host = url_host(url)
        breaker = self._breaker_for(host)
        while True:
            if breaker is not None and not breaker.allow():
                self.stats.breaker_fast_fails += 1
                self._m_breaker_fast_fail.inc(host=host)
                raise CircuitOpen(f"circuit breaker open for {host}")
            failure: Optional[http.HttpError] = None
            response: Optional[Response] = None
            try:
                response = self._send_once(method, url, params, form)
            except (ConnectionFailed, RequestTimeout) as exc:
                failure = exc
            if breaker is not None:
                if failure is not None or response.status in _BREAKER_FAILURE_CODES:
                    breaker.record_failure()
                elif response.status != http.TOO_MANY_REQUESTS:
                    # 429 is neutral: alive but throttling.
                    breaker.record_success()
            if failure is None and response.status not in http.RETRYABLE_CODES:
                return response
            if attempt >= self.config.max_retries or not self._take_retry_token(host):
                if failure is not None:
                    raise failure
                return response
            attempt += 1
            self.stats.retries += 1
            self._m_retries.inc(host=host)
            retry_after = (
                http.parse_retry_after(
                    response.header("Retry-After"), self._internet.clock.now()
                )
                if response is not None else None
            )
            wait = max(retry_after if retry_after is not None else 0.0, backoff)
            self.stats.retry_wait_seconds += wait
            self._m_retry_wait.inc(wait, host=host)
            self._internet.clock.advance(wait)
            backoff *= self.config.backoff_multiplier

    def _breaker_for(self, host: str) -> Optional[CircuitBreaker]:
        if self.config.breaker is None:
            return None
        breaker = self._breakers.get(host)
        if breaker is None:
            def on_transition(old: str, new: str, host: str = host) -> None:
                self._m_breaker_state.set(STATE_CODES[new], host=host)
                self._m_breaker_transitions.inc(host=host, to=new)
                self.telemetry.events.emit(
                    f"breaker.{new}", host=host, previous=old,
                    level="warning" if new == "open" else "info",
                )
            breaker = CircuitBreaker(
                self._internet.clock, self.config.breaker, on_transition
            )
            self._m_breaker_state.set(STATE_CODES[breaker.state], host=host)
            self._breakers[host] = breaker
        return breaker

    def _take_retry_token(self, host: str) -> bool:
        remaining = self._retry_budget.get(host, self.config.retry_budget_per_host)
        if remaining <= 0:
            return False
        self._retry_budget[host] = remaining - 1
        return True

    def _send_once(
        self,
        method: str,
        url: str,
        params: Optional[Dict[str, str]],
        form: Optional[Dict[str, str]],
    ) -> Response:
        host = url_host(url)
        self._check_robots(url, host)
        self._be_polite(host)
        request = Request(
            method=method,
            url=url,
            headers={"User-Agent": self.config.user_agent},
            params=dict(params or {}),
            form=dict(form or {}),
            cookies=dict(self.cookies.get(host, {})),
        )
        fetch_started = self._internet.clock.now()
        try:
            response = self._internet.fetch(
                request, client_id=self.client_id, via_tor=self.config.via_tor
            )
        except ConnectionFailed as exc:
            if self.capture is not None:
                self.capture.record_exchange(
                    client=self.client_id, method=method, url=url,
                    params=params, form=form, error=exc,
                )
            raise
        self._last_request_at[host] = self._internet.clock.now()
        elapsed = self._internet.clock.now() - fetch_started
        timeout = self.config.timeout_seconds
        if timeout is not None and elapsed > timeout:
            # The answer arrived after the client hung up: discard it.
            self.stats.timeouts += 1
            self._m_timeouts.inc(host=host)
            error = RequestTimeout(
                f"no response from {host} within {timeout:.0f}s "
                f"(server took {elapsed:.0f}s)"
            )
            if self.capture is not None:
                # Archive the late answer as observed — the caller never
                # sees it, but the archive keeps the wire truth.
                self.capture.record_exchange(
                    client=self.client_id, method=method, url=url,
                    params=params, form=form, response=response,
                    error=error, note="timeout_discarded",
                )
            raise error
        if self.capture is not None:
            self.capture.record_exchange(
                client=self.client_id, method=method, url=url,
                params=params, form=form, response=response,
            )
        nbytes = len(response.body or "")
        self.stats.record(response.status, host=host, nbytes=nbytes)
        self._m_requests.inc(host=host, status=str(response.status))
        if nbytes:
            self._m_response_bytes.inc(nbytes, host=host)
        if response.set_cookies:
            jar = self.cookies.setdefault(host, {})
            jar.update(response.set_cookies)
        return response

    def _be_polite(self, host: str) -> None:
        last = self._last_request_at.get(host)
        if last is None:
            return
        delay = self.config.per_host_delay_seconds
        # robots.txt Crawl-delay overrides the default spacing upward.
        policy = self._robots_cache.get(host)
        if self.config.respect_robots and policy is not None:
            crawl_delay = policy.crawl_delay(self.config.user_agent)
            if crawl_delay is not None:
                delay = max(delay, crawl_delay)
        elapsed = self._internet.clock.now() - last
        remaining = delay - elapsed
        if remaining > 0:
            self.stats.politeness_wait_seconds += remaining
            self._m_politeness_wait.inc(remaining, host=host)
            self._internet.clock.advance(remaining)

    def _check_robots(self, url: str, host: str) -> None:
        if not self.config.respect_robots or host.endswith(".onion"):
            return
        path = url_path(url)
        if path == "/robots.txt":
            return
        policy = self._robots_policy(host, url)
        if policy is not None and not policy.allows(self.config.user_agent, path):
            self.stats.robots_blocked += 1
            self._m_robots_blocked.inc(host=host)
            self.telemetry.events.emit(
                "robots_blocked", url=url, host=host, path=path
            )
            raise RequestRejected(f"robots.txt disallows {path} on {host}")

    def _robots_policy(self, host: str, any_url: str) -> Optional[RobotsPolicy]:
        if host in self._robots_cache:
            return self._robots_cache[host]
        robots_url = f"http://{host}/robots.txt"
        try:
            request = Request(
                method="GET",
                url=robots_url,
                headers={"User-Agent": self.config.user_agent},
            )
            response = self._internet.fetch(
                request, client_id=self.client_id, via_tor=self.config.via_tor
            )
            nbytes = len(response.body or "")
            self.stats.record(response.status, host=host, nbytes=nbytes)
            self._m_requests.inc(host=host, status=str(response.status))
            if nbytes:
                self._m_response_bytes.inc(nbytes, host=host)
        except http.HttpError as exc:
            if self.capture is not None:
                self.capture.record_exchange(
                    client=self.client_id, method="GET", url=robots_url,
                    error=exc, note="robots",
                )
            self._robots_cache[host] = None
            return None
        if self.capture is not None:
            self.capture.record_exchange(
                client=self.client_id, method="GET", url=robots_url,
                response=response, note="robots",
            )
        policy = RobotsPolicy.parse(response.body) if response.ok else None
        self._robots_cache[host] = policy
        return policy


__all__ = ["ClientConfig", "ClientStats", "HttpClient"]
