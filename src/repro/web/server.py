"""In-process virtual hosts and the Internet that connects them.

A :class:`Site` owns a hostname, a routing table, optional robots.txt, an
optional per-client rate limit, and simulated latency.  The
:class:`Internet` resolves hostnames to sites and dispatches requests; the
client in :mod:`repro.web.client` talks only to the Internet, exactly as a
real crawler talks only to sockets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.util.simtime import SimClock
from repro.web import http
from repro.web.http import ConnectionFailed, Request, Response
from repro.web.ratelimit import TokenBucket
from repro.web.robots import RobotsPolicy
from repro.web.url import parse_query, url_host, url_path

Handler = Callable[[Request], Response]

_PARAM_RE = re.compile(r"<([a-zA-Z_][a-zA-Z0-9_]*)>")


@dataclass
class Route:
    """One route: method + path pattern with ``<param>`` segments."""

    method: str
    pattern: str
    handler: Handler

    def __post_init__(self) -> None:
        parts = []
        for token in re.split(r"(<[a-zA-Z_][a-zA-Z0-9_]*>)", self.pattern):
            match = _PARAM_RE.fullmatch(token)
            if match:
                # One path segment, at least one character: an empty
                # segment (``/listing//view``) is not a parameter value.
                parts.append(f"(?P<{match.group(1)}>[^/]+)")
            else:
                parts.append(re.escape(token))
        self._regex = re.compile("^" + "".join(parts) + "$")

    def match_path(self, path: str) -> Optional[Dict[str, str]]:
        """Match the path alone (any method); used for 405 detection."""
        found = self._regex.match(path)
        if not found:
            return None
        params = found.groupdict()
        if any(not value for value in params.values()):
            return None
        return params

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        if method != self.method:
            return None
        return self.match_path(path)


class Site:
    """A virtual host: routes, robots policy, rate limiting, latency."""

    def __init__(
        self,
        host: str,
        clock: Optional[SimClock] = None,
        latency_seconds: float = 0.15,
        robots: Optional[RobotsPolicy] = None,
        robots_text: Optional[str] = None,
        rate_limit_per_second: Optional[float] = None,
        rate_limit_burst: float = 10.0,
    ) -> None:
        self.host = host.lower()
        self.clock = clock or SimClock()
        self.latency_seconds = latency_seconds
        self.robots_text = robots_text
        self.robots = robots if robots is not None else (
            RobotsPolicy.parse(robots_text) if robots_text else None
        )
        self._routes: List[Route] = []
        self._buckets: Dict[str, TokenBucket] = {}
        self._rate = rate_limit_per_second
        self._burst = rate_limit_burst
        self.request_count = 0
        if robots_text is not None:
            self.route("GET", "/robots.txt", self._serve_robots)

    # -- routing ------------------------------------------------------------

    def route(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append(Route(method.upper(), pattern, handler))

    def get(self, pattern: str):
        """Decorator form: ``@site.get('/offer/<offer_id>')``."""

        def register(handler: Handler) -> Handler:
            self.route("GET", pattern, handler)
            return handler

        return register

    def post(self, pattern: str):
        def register(handler: Handler) -> Handler:
            self.route("POST", pattern, handler)
            return handler

        return register

    def _serve_robots(self, request: Request) -> Response:
        return Response(
            status=http.OK,
            body=self.robots_text or "",
            headers={"Content-Type": "text/plain"},
        )

    # -- dispatch -----------------------------------------------------------

    def _bucket_for(self, client_id: str) -> Optional[TokenBucket]:
        if self._rate is None:
            return None
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.clock, self._rate, self._burst)
            self._buckets[client_id] = bucket
        return bucket

    def handle(self, request: Request, client_id: str = "anon") -> Response:
        """Dispatch one request to this site."""
        self.request_count += 1
        path = url_path(request.url)
        # robots.txt is exempt from rate limiting: a crawler must always
        # be able to learn the rules, even when its budget is exhausted —
        # throttling the policy file would teach clients to skip it.
        if path != "/robots.txt":
            bucket = self._bucket_for(client_id)
            if bucket is not None and not bucket.try_take():
                response = http.error_response(http.TOO_MANY_REQUESTS)
                response.headers["Retry-After"] = f"{bucket.delay_until_ready():.1f}"
                return self._finish(request, response)
        request.params = {**parse_query(request.url), **request.params}
        allowed_methods: List[str] = []
        for route in self._routes:
            params = route.match_path(path)
            if params is None:
                continue
            if route.method != request.method:
                allowed_methods.append(route.method)
                continue
            request.path_params = params
            try:
                response = route.handler(request)
            except http.HttpError:
                raise
            except Exception as exc:  # site bug -> 500, like a real server
                response = http.error_response(
                    http.INTERNAL_SERVER_ERROR, f"<html><body>error: {exc}</body></html>"
                )
            return self._finish(request, response)
        if allowed_methods:
            # The path exists, the verb does not: 405 with Allow, not a
            # 404 that would make the resource look absent.
            response = http.error_response(http.METHOD_NOT_ALLOWED)
            response.headers["Allow"] = ", ".join(sorted(set(allowed_methods)))
            return self._finish(request, response)
        return self._finish(request, http.error_response(http.NOT_FOUND))

    def _finish(self, request: Request, response: Response) -> Response:
        response.url = request.url
        response.elapsed = self.latency_seconds
        return response


class Internet:
    """Hostname -> Site resolution and request dispatch.

    Tor hidden services (".onion" hosts) are only reachable when the
    request carries ``via_tor=True`` — mirroring that the underground
    markets are not on the clear web.
    """

    def __init__(self, clock: Optional[SimClock] = None,
                 telemetry=None) -> None:
        self.clock = clock or SimClock()
        self._sites: Dict[str, Site] = {}
        #: Server-side accounting: requests served per hostname.
        self.requests_by_host: Dict[str, int] = {}
        self._telemetry = telemetry
        self._m_served = (
            telemetry.metrics.counter(
                "server_requests_total",
                "requests served, by host and status",
                labels=("host", "status"),
            )
            if telemetry is not None else None
        )

    def set_telemetry(self, telemetry) -> None:
        """Bind a telemetry context after construction (the pipeline
        creates the Internet before it knows the run's telemetry)."""
        self._telemetry = telemetry
        self._m_served = telemetry.metrics.counter(
            "server_requests_total",
            "requests served, by host and status",
            labels=("host", "status"),
        )

    def register(self, site: Site) -> Site:
        if site.host in self._sites:
            raise ValueError(f"host already registered: {site.host}")
        self._sites[site.host] = site
        return site

    def site(self, host: str) -> Site:
        try:
            return self._sites[host.lower()]
        except KeyError:
            raise ConnectionFailed(f"unknown host: {host}") from None

    @property
    def hosts(self) -> List[str]:
        return sorted(self._sites)

    def fetch(self, request: Request, client_id: str = "anon", via_tor: bool = False) -> Response:
        host = url_host(request.url)
        if not host:
            raise ConnectionFailed(f"URL has no host: {request.url}")
        if host.endswith(".onion") and not via_tor:
            raise ConnectionFailed(f"{host} is a Tor hidden service; connect via Tor")
        site = self.site(host)
        self.clock.advance(site.latency_seconds)
        self.requests_by_host[host] = self.requests_by_host.get(host, 0) + 1
        response = site.handle(request, client_id=client_id)
        if self._m_served is not None:
            self._m_served.inc(host=host, status=str(response.status))
        return response


__all__ = ["Handler", "Internet", "Route", "Site"]
