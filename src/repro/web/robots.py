"""Minimal robots.txt parsing and checking.

The study's ethics statement commits to passive collection of public data;
the crawler honours robots.txt on every public marketplace.  This module
implements the subset of the robots exclusion protocol the sites use:
``User-agent`` groups with ``Allow``/``Disallow`` prefix rules and optional
``Crawl-delay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class RobotsGroup:
    agents: List[str] = field(default_factory=list)
    # (allow?, path-prefix) rules in file order.
    rules: List[Tuple[bool, str]] = field(default_factory=list)
    crawl_delay: Optional[float] = None

    def applies_to(self, user_agent: str) -> bool:
        ua = user_agent.lower()
        return any(agent == "*" or agent in ua for agent in self.agents)


class RobotsPolicy:
    """Parsed robots.txt for one host."""

    def __init__(self, groups: List[RobotsGroup]) -> None:
        self._groups = groups

    @classmethod
    def parse(cls, text: str) -> "RobotsPolicy":
        groups: List[RobotsGroup] = []
        current: Optional[RobotsGroup] = None
        expecting_agents = False
        for raw_line in text.splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line or ":" not in line:
                continue
            keyword, _, value = line.partition(":")
            keyword = keyword.strip().lower()
            value = value.strip()
            if keyword == "user-agent":
                if current is None or not expecting_agents:
                    current = RobotsGroup()
                    groups.append(current)
                    expecting_agents = True
                current.agents.append(value.lower())
            elif current is not None:
                expecting_agents = False
                if keyword == "disallow":
                    if value:
                        current.rules.append((False, value))
                elif keyword == "allow":
                    if value:
                        current.rules.append((True, value))
                elif keyword == "crawl-delay":
                    try:
                        current.crawl_delay = float(value)
                    except ValueError:
                        pass
        return cls(groups)

    def _group_for(self, user_agent: str) -> Optional[RobotsGroup]:
        specific = [g for g in self._groups if g.applies_to(user_agent) and "*" not in g.agents]
        if specific:
            return specific[0]
        for group in self._groups:
            if "*" in group.agents:
                return group
        return None

    def allows(self, user_agent: str, path: str) -> bool:
        """Longest-prefix-match decision, allow on tie (Google semantics)."""
        group = self._group_for(user_agent)
        if group is None:
            return True
        best_len = -1
        best_allow = True
        for allow, prefix in group.rules:
            if path.startswith(prefix) and len(prefix) > best_len:
                best_len = len(prefix)
                best_allow = allow
            elif path.startswith(prefix) and len(prefix) == best_len and allow:
                best_allow = True
        return best_allow

    def crawl_delay(self, user_agent: str) -> Optional[float]:
        group = self._group_for(user_agent)
        return group.crawl_delay if group else None


ALLOW_ALL = RobotsPolicy.parse("User-agent: *\nDisallow:\n")


def robots_txt(disallowed: List[str], crawl_delay: Optional[float] = None) -> str:
    """Render a robots.txt string disallowing the given path prefixes."""
    lines = ["User-agent: *"]
    lines.extend(f"Disallow: {path}" for path in disallowed)
    if crawl_delay is not None:
        lines.append(f"Crawl-delay: {crawl_delay}")
    return "\n".join(lines) + "\n"


__all__ = ["ALLOW_ALL", "RobotsGroup", "RobotsPolicy", "robots_txt"]
