"""URL normalization, joining, and inspection.

Thin, explicit wrappers over :mod:`urllib.parse` so the rest of the code
never manipulates URL strings by hand.  Normalization matters for the
crawler's frontier: two spellings of the same page must dedup to one key.
"""

from __future__ import annotations

from typing import Dict, List, Tuple
from urllib.parse import parse_qsl, urlencode, urljoin, urlsplit, urlunsplit


def normalize_url(url: str) -> str:
    """Return a canonical form of ``url`` for frontier deduplication.

    Lowercases scheme and host, drops fragments and default ports, removes
    trailing slashes on non-root paths, and sorts query parameters.

    >>> normalize_url("HTTP://Example.COM:80/Listings/?b=2&a=1#frag")
    'http://example.com/Listings?a=1&b=2'
    """
    parts = urlsplit(url)
    scheme = parts.scheme.lower()
    host = parts.hostname.lower() if parts.hostname else ""
    port = parts.port
    default_ports = {"http": 80, "https": 443}
    netloc = host
    if port is not None and default_ports.get(scheme) != port:
        netloc = f"{host}:{port}"
    path = parts.path or "/"
    if len(path) > 1 and path.endswith("/"):
        path = path.rstrip("/")
    query_pairs = sorted(parse_qsl(parts.query, keep_blank_values=True))
    query = urlencode(query_pairs)
    return urlunsplit((scheme, netloc, path, query, ""))


def join_url(base: str, link: str) -> str:
    """Resolve ``link`` (possibly relative) against ``base``."""
    return urljoin(base, link)


def url_host(url: str) -> str:
    """Hostname of ``url``, lowercased ('' if absent)."""
    host = urlsplit(url).hostname
    return host.lower() if host else ""


def url_path(url: str) -> str:
    """Path component of ``url`` ('/' if absent)."""
    return urlsplit(url).path or "/"


def url_scheme(url: str) -> str:
    return urlsplit(url).scheme.lower()


def parse_query(url: str) -> Dict[str, str]:
    """Query parameters as a dict (last value wins on duplicates)."""
    return dict(parse_qsl(urlsplit(url).query, keep_blank_values=True))


def query_pairs(url: str) -> List[Tuple[str, str]]:
    """Query parameters as ordered pairs."""
    return parse_qsl(urlsplit(url).query, keep_blank_values=True)


def with_query(url: str, **params: str) -> str:
    """Return ``url`` with query parameters replaced/added from ``params``."""
    parts = urlsplit(url)
    existing = dict(parse_qsl(parts.query, keep_blank_values=True))
    existing.update({k: str(v) for k, v in params.items()})
    query = urlencode(sorted(existing.items()))
    return urlunsplit((parts.scheme, parts.netloc, parts.path, query, parts.fragment))


def is_onion(url: str) -> bool:
    """True for Tor hidden-service hosts (underground marketplaces)."""
    return url_host(url).endswith(".onion")


__all__ = [
    "is_onion",
    "join_url",
    "normalize_url",
    "parse_query",
    "query_pairs",
    "url_host",
    "url_path",
    "url_scheme",
    "with_query",
]
