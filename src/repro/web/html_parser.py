"""Parse HTML markup back into the :class:`~repro.web.html.Element` tree.

Built on the stdlib :class:`html.parser.HTMLParser`, with the tolerance a
crawler needs: unknown entities pass through, stray close tags are ignored,
and unclosed elements are closed implicitly at the end of input.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import List, Optional, Tuple

from repro.web.html import VOID_TAGS, Element

# Tags whose open implicitly closes a same-tag ancestor (enough tolerance
# for the markup our marketplaces and a typical scraped page produce).
_IMPLICIT_CLOSE = {"li", "p", "tr", "td", "th", "option"}


class _TreeBuilder(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Element("document")
        self._stack: List[Element] = [self.root]

    @property
    def _top(self) -> Element:
        return self._stack[-1]

    def handle_starttag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        tag = tag.lower()
        if tag in _IMPLICIT_CLOSE and self._top.tag == tag:
            self._stack.pop()
        element = Element(tag, {name: (value or "") for name, value in attrs})
        self._top.append(element)
        if tag not in VOID_TAGS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        element = Element(tag.lower(), {name: (value or "") for name, value in attrs})
        self._top.append(element)

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        # Pop to the nearest matching open tag; ignore unmatched closers.
        for depth in range(len(self._stack) - 1, 0, -1):
            if self._stack[depth].tag == tag:
                del self._stack[depth:]
                return

    def handle_data(self, data: str) -> None:
        if data.strip():
            self._top.append(data)


def parse_html(markup: str) -> Element:
    """Parse markup into an element tree rooted at a ``document`` element.

    >>> doc = parse_html('<div class="x"><a href="/p">go</a></div>')
    >>> doc.find('a').get('href')
    '/p'
    >>> doc.find('div', class_='x').text
    'go'
    """
    builder = _TreeBuilder()
    builder.feed(markup)
    builder.close()
    return builder.root


__all__ = ["parse_html"]
