"""An HTML element tree with a builder API and a renderer.

Marketplace sites in :mod:`repro.marketplaces` build pages with this tree
and serve the rendered HTML; the crawler parses it back with
:mod:`repro.web.html_parser`.  Keeping generation and parsing separate (the
crawler never sees element objects, only markup) preserves the real
pipeline's failure modes: the extractor must find fields in markup, not in
convenient data structures.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Union

VOID_TAGS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "source", "track", "wbr"}
)

Node = Union["Element", str]


def escape_html(text: str) -> str:
    """Escape text for safe inclusion in HTML content."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def unescape_html(text: str) -> str:
    """Reverse :func:`escape_html` (covers the entities we emit)."""
    return (
        text.replace("&quot;", '"')
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&#39;", "'")
        .replace("&amp;", "&")
    )


class Element:
    """A single HTML element with attributes and child nodes.

    Children are either ``Element`` instances or plain strings (text).
    """

    __slots__ = ("tag", "attrs", "children")

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        children: Optional[Sequence[Node]] = None,
    ) -> None:
        self.tag = tag.lower()
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.children: List[Node] = list(children or [])

    # -- construction -------------------------------------------------------

    def append(self, node: Node) -> "Element":
        self.children.append(node)
        return self

    def extend(self, nodes: Sequence[Node]) -> "Element":
        self.children.extend(nodes)
        return self

    # -- inspection ---------------------------------------------------------

    def get(self, name: str, default: str = "") -> str:
        return self.attrs.get(name, default)

    @property
    def classes(self) -> List[str]:
        return self.attrs.get("class", "").split()

    def has_class(self, name: str) -> bool:
        return name in self.classes

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find_all(
        self,
        tag: Optional[str] = None,
        class_: Optional[str] = None,
        **attrs: str,
    ) -> List["Element"]:
        """All descendants (including self) matching tag / class / attrs."""
        results = []
        for el in self.iter():
            if tag is not None and el.tag != tag.lower():
                continue
            if class_ is not None and not el.has_class(class_):
                continue
            if any(el.attrs.get(k) != v for k, v in attrs.items()):
                continue
            results.append(el)
        return results

    def find(
        self,
        tag: Optional[str] = None,
        class_: Optional[str] = None,
        **attrs: str,
    ) -> Optional["Element"]:
        """First match of :meth:`find_all`, or None."""
        for el in self.iter():
            if tag is not None and el.tag != tag.lower():
                continue
            if class_ is not None and not el.has_class(class_):
                continue
            if any(el.attrs.get(k) != v for k, v in attrs.items()):
                continue
            return el
        return None

    @property
    def text(self) -> str:
        """Concatenated text of all descendant text nodes."""
        return text_of(self)

    def links(self) -> List[str]:
        """All href values of descendant anchors."""
        return [a.get("href") for a in self.find_all("a") if a.get("href")]

    # -- rendering ----------------------------------------------------------

    def render(self, indent: int = 0, pretty: bool = False) -> str:
        """Render this subtree to HTML markup."""
        pad = "  " * indent if pretty else ""
        nl = "\n" if pretty else ""
        attr_text = "".join(
            f' {name}="{escape_html(value)}"' for name, value in self.attrs.items()
        )
        open_tag = f"{pad}<{self.tag}{attr_text}>"
        if self.tag in VOID_TAGS:
            return open_tag + nl
        parts = [open_tag, nl]
        for child in self.children:
            if isinstance(child, Element):
                parts.append(child.render(indent + 1, pretty=pretty))
            else:
                child_pad = "  " * (indent + 1) if pretty else ""
                parts.append(f"{child_pad}{escape_html(str(child))}{nl}")
        parts.append(f"{pad}</{self.tag}>{nl}")
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag} attrs={self.attrs} children={len(self.children)}>"


def text_of(node: Node) -> str:
    """Text content of a node tree, whitespace-joined."""
    if isinstance(node, str):
        return node
    pieces = [text_of(child) for child in node.children]
    return " ".join(p for p in (piece.strip() for piece in pieces) if p)


class _Builder:
    """Terse element construction: ``E.div(E.a('x', href='/y'), class_='c')``.

    Keyword arguments become attributes; trailing underscores are stripped
    so reserved words work (``class_`` -> ``class``); underscores map to
    hyphens for ``data_*`` attributes.
    """

    def __getattr__(self, tag: str):
        def make(*children: Node, **attrs: str) -> Element:
            fixed = {}
            for name, value in attrs.items():
                name = name.rstrip("_")
                if name.startswith("data_"):
                    name = name.replace("_", "-")
                fixed[name] = str(value)
            return Element(tag, fixed, list(children))

        return make


E = _Builder()


def document(title: str, *body_children: Node, lang: str = "en") -> Element:
    """A complete HTML document with the given title and body content."""
    return E.html(
        E.head(E.title(title), E.meta(charset="utf-8")),
        E.body(*body_children),
        lang=lang,
    )


def render_document(doc: Element) -> str:
    """Render a full document with doctype."""
    return "<!DOCTYPE html>\n" + doc.render()


__all__ = [
    "E",
    "Element",
    "Node",
    "VOID_TAGS",
    "document",
    "escape_html",
    "render_document",
    "text_of",
    "unescape_html",
]
