"""Per-host circuit breakers for the crawling client.

The paper's crawl ran against marketplaces that went down for hours at a
time; hammering a dead host burns the retry budget and (worse) politeness
time that could go to healthy hosts.  A :class:`CircuitBreaker` follows
the classic three-state machine:

* **closed** — requests flow; consecutive transport-level failures are
  counted, and reaching ``failure_threshold`` trips the breaker;
* **open** — requests fast-fail (the client raises
  :class:`~repro.web.http.CircuitOpen`) until ``cooldown_seconds`` of
  simulated time pass;
* **half-open** — after the cooldown, a limited number of probe requests
  are let through: one success closes the breaker, one failure re-opens
  it for another full cooldown.

All timing is charged to the simulated clock, so breaker behaviour is
byte-deterministic across same-seed runs.  State is observable: the
owning client exports a ``circuit_breaker_state`` gauge and a
``circuit_breaker_transitions_total`` counter per host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of the state machine (exported as metrics).
STATE_CODES = {CLOSED: 0.0, OPEN: 1.0, HALF_OPEN: 2.0}


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables for one :class:`CircuitBreaker`."""

    #: Consecutive failures that trip a closed breaker.
    failure_threshold: int = 8
    #: Simulated seconds an open breaker blocks requests.
    cooldown_seconds: float = 180.0
    #: Probe requests allowed while half-open before a verdict.
    half_open_probes: int = 1


class CircuitBreaker:
    """One host's breaker: closed -> open -> half-open -> closed."""

    def __init__(
        self,
        clock,
        config: Optional[BreakerConfig] = None,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self._clock = clock
        self.config = config or BreakerConfig()
        self.state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._on_transition = on_transition

    # -- state machine -----------------------------------------------------

    def allow(self) -> bool:
        """Whether a request may be sent right now.

        An open breaker whose cooldown has elapsed transitions to
        half-open here, so the first post-cooldown call gets the probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock.now() - self._opened_at >= self.config.cooldown_seconds:
                self._transition(HALF_OPEN)
            else:
                return False
        # half-open: admit up to half_open_probes outstanding probes.
        if self._probes_in_flight < self.config.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == HALF_OPEN:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # The probe failed: back to a full cooldown.
            self._open()
            return
        self._consecutive_failures += 1
        if self.state == CLOSED and (
            self._consecutive_failures >= self.config.failure_threshold
        ):
            self._open()

    def reset(self) -> None:
        """Force-close the breaker (used at iteration epochs, where days
        of simulated idle time pass between crawls)."""
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        if self.state != CLOSED:
            self._transition(CLOSED)

    # -- internals ---------------------------------------------------------

    def _open(self) -> None:
        self._opened_at = self._clock.now()
        self._transition(OPEN)

    def _transition(self, new_state: str) -> None:
        old_state, self.state = self.state, new_state
        if new_state != HALF_OPEN:
            self._probes_in_flight = 0
        if new_state == CLOSED:
            self._consecutive_failures = 0
        if self._on_transition is not None and old_state != new_state:
            self._on_transition(old_state, new_state)


__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_CODES",
    "BreakerConfig",
    "CircuitBreaker",
]
