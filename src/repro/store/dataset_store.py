"""Bridge between the segmented store and
:class:`~repro.core.dataset.MeasurementDataset`.

:func:`save_dataset` streams a dataset into a store directory one
record at a time — never holding serialized output in RAM — and
degrades gracefully when the disk fills: whatever records fit are
flushed and sealed, the manifest carries ``partial: "disk_full"``, and
the report says exactly how far the save got.  :func:`load_dataset`
rebuilds a dataset through the same tolerant
:func:`~repro.core.dataset.record_from_dict` path the flat-file loader
uses, so schema-drifted or corrupt records quarantine instead of
crashing.  :func:`is_store_dir` lets CLI consumers accept either
layout (flat ``*.jsonl`` files or a segmented store) transparently.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.core.dataset import (
    MeasurementDataset,
    _RECORD_TYPES,
    record_from_dict,
)
from repro.faults.disk import DiskFullError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.store.segments import (
    DEFAULT_SEGMENT_RECORDS,
    SEGMENTS_DIRNAME,
    STORE_MANIFEST_FILENAME,
    StoreReader,
    StoreWriter,
)

#: Quarantine rule for a stored payload that no longer matches the
#: record dataclass shape (mirrors the flat loader's
#: ``record_shape_error``).
RULE_RECORD_SHAPE = "store_record_shape_error"


def is_store_dir(directory: str) -> bool:
    """True when ``directory`` holds a segmented store (manifest or a
    ``segments/`` directory), as opposed to flat ``*.jsonl`` files."""
    return (
        os.path.exists(os.path.join(directory, STORE_MANIFEST_FILENAME))
        or os.path.isdir(os.path.join(directory, SEGMENTS_DIRNAME))
    )


@dataclass
class StoreSaveReport:
    """What one :func:`save_dataset` actually persisted."""

    directory: str
    #: record_type -> records durably flushed.
    counts: Dict[str, int] = field(default_factory=dict)
    #: Degradation marker (``"disk_full"``) when the save was cut short.
    partial: Optional[str] = None
    #: record_type -> records the dataset held but the disk refused.
    dropped: Dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.partial is None


def _iter_dataset(dataset: MeasurementDataset) -> Iterator[Tuple[str, dict]]:
    for name in _RECORD_TYPES:
        for record in getattr(dataset, name):
            yield name, dataclasses.asdict(record)


def save_dataset(dataset: MeasurementDataset, directory: str,
                 segment_max_records: int = DEFAULT_SEGMENT_RECORDS,
                 faults=None,
                 telemetry: Optional[Telemetry] = None) -> StoreSaveReport:
    """Stream ``dataset`` into a segmented store at ``directory``.

    A full disk (injected or real ENOSPC) does not raise: the records
    that fit are sealed, the manifest is marked ``partial: "disk_full"``
    (metadata writes are exempt from the byte budget, the way real
    filesystems reserve blocks), and the report's ``dropped`` tallies
    what was lost.  Non-degradable failures (torn write twice, fsync
    EIO) propagate as :class:`~repro.faults.disk.DiskWriteError`.
    """
    telemetry = telemetry or NULL_TELEMETRY
    writer = StoreWriter(
        directory, segment_max_records=segment_max_records,
        faults=faults, telemetry=telemetry,
    )
    report = StoreSaveReport(directory=directory)
    stream = _iter_dataset(dataset)
    try:
        for name, payload in stream:
            writer.append(name, payload)
    except DiskFullError as exc:
        report.partial = "disk_full"
        report.dropped[name] = report.dropped.get(name, 0) + 1
        for leftover_name, _ in stream:
            report.dropped[leftover_name] = \
                report.dropped.get(leftover_name, 0) + 1
        telemetry.events.emit(
            "store.disk_full", level="error",
            detail=str(exc), flushed=writer.counts(),
            dropped=dict(sorted(report.dropped.items())),
        )
        try:
            writer.seal(partial="disk_full")
        except OSError as seal_exc:
            # The full disk can refuse even the manifest write (the
            # probabilistic ENOSPC rate hits metadata too).  Degradation
            # still holds: flushed segments remain recoverable tails for
            # the reader, and the report already says the save was cut
            # short — so swallow, never re-raise past the contract.
            writer.close()
            telemetry.events.emit(
                "store.seal_failed", level="error",
                detail=str(seal_exc), flushed=writer.counts(),
            )
    else:
        writer.seal()
    report.counts = writer.counts()
    return report


def load_dataset(directory: str, quarantine=None,
                 telemetry: Optional[Telemetry] = None,
                 faults=None) -> MeasurementDataset:
    """Rebuild a :class:`MeasurementDataset` from a store directory.

    Unknown record types in the store are ignored (forward
    compatibility); payloads that fail dataclass construction are
    quarantined under ``store_record_shape_error`` and skipped, the
    same containment contract the flat loader honors.  Torn tails and
    corrupt segments are handled inside :class:`StoreReader`.
    """
    reader = StoreReader.open(
        directory, quarantine=quarantine, telemetry=telemetry,
        faults=faults,
    )
    dataset = MeasurementDataset()
    for name, record_type in _RECORD_TYPES.items():
        records = getattr(dataset, name)
        for payload in reader.iter_records(name):
            try:
                records.append(record_from_dict(record_type, payload))
            except TypeError as exc:
                if quarantine is not None:
                    from repro.store.segments import SOURCE_STORE_LOAD

                    quarantine.quarantine(
                        name, RULE_RECORD_SHAPE, str(exc),
                        record=payload if isinstance(payload, dict) else None,
                        source=SOURCE_STORE_LOAD,
                    )
    return dataset


__all__ = [
    "RULE_RECORD_SHAPE",
    "StoreSaveReport",
    "is_store_dir",
    "load_dataset",
    "save_dataset",
]
