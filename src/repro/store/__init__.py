"""Crash-safe segmented record store — the pipeline's durable data plane.

* :mod:`repro.store.segments` — the append-only segmented JSONL store:
  fixed-size segments with a per-segment SHA-256 + record-count footer,
  a sealed, atomically-replaced ``store.json`` manifest
  (``repro.store/v1``), torn-tail recovery, corrupt-segment quarantine,
  and streaming record-at-a-time reads with bounded-memory grouping;
* :mod:`repro.store.dataset_store` — the bridge between the store and
  :class:`~repro.core.dataset.MeasurementDataset`: stream a dataset in,
  load one back, or iterate records without materializing the world.

The write path degrades gracefully under storage chaos
(:mod:`repro.faults.disk`): ENOSPC flushes what fits and seals it, torn
appends are truncated back and retried, and a SIGKILL at any byte
reloads exactly the flushed prefix.
"""

from repro.store.dataset_store import (
    StoreSaveReport,
    is_store_dir,
    load_dataset,
    save_dataset,
)
from repro.store.segments import (
    DEFAULT_SEGMENT_RECORDS,
    STORE_MANIFEST_FILENAME,
    GroupedView,
    StoreCorruptError,
    StoreError,
    StoreReader,
    StoreWriter,
)

__all__ = [
    "DEFAULT_SEGMENT_RECORDS",
    "GroupedView",
    "STORE_MANIFEST_FILENAME",
    "StoreCorruptError",
    "StoreError",
    "StoreReader",
    "StoreSaveReport",
    "StoreWriter",
    "is_store_dir",
    "load_dataset",
    "save_dataset",
]
