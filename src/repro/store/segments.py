"""The append-only segmented record store.

Layout of a store directory::

    <dir>/
      store.json                 # manifest (repro.store/v1), atomic replace
      segments/
        listings-000000.seg      # JSONL records + one footer line
        listings-000001.seg
        profiles-000000.seg
        ...

Records append to fixed-size JSONL **segments**, one family per record
type.  When a segment reaches ``segment_max_records`` it is *sealed*:
a footer line carrying the record count and the SHA-256 of the payload
bytes is appended, the file is fsynced, and the manifest is atomically
replaced to claim it.  The manifest is therefore always a consistent
snapshot of the sealed prefix; the at-most-one unsealed tail segment
per record type is the only part of the store a crash can tear.

Crash recovery on read:

* a **torn tail** (truncated final line after a SIGKILL mid-append) is
  logically truncated — the intact prefix loads, the partial line is
  dropped and counted in ``store_recovered_tail_total``;
* a **corrupt sealed segment** (checksum or count mismatch, undecodable
  line — e.g. a bit flip on cold media) is quarantined through the
  :class:`~repro.contracts.quarantine.QuarantineStore` dead-letter
  channel and skipped, so one rotten segment costs its own records, not
  the run;
* a missing manifest is not fatal: every segment is scanned as a tail
  (footers still validate when present).

Reads are streaming: :meth:`StoreReader.iter_records` yields one record
dict at a time, holding at most one segment's bytes in memory, and
:class:`GroupedView` offers bounded-memory grouped access (distinct
keys + counts in one pass, per-group iteration by re-scan) so analyses
need never materialize the whole world.

All writes route through an optional
:class:`~repro.faults.disk.DiskFaultInjector`: ENOSPC raises
:class:`~repro.faults.disk.DiskFullError` after the store has truncated
away any partial line (callers flush what fits via
:meth:`StoreWriter.seal` with a ``partial`` reason); torn writes are
truncated back and retried once; fsync failures fail the seal loudly —
a store that cannot promise durability must not pretend to.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.faults.disk import DiskFullError, DiskWriteError, is_disk_full
from repro.obs.schemas import STORE_SCHEMA, artifact_schema
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.util.fileio import atomic_write_json

STORE_MANIFEST_FILENAME = "store.json"
SEGMENTS_DIRNAME = "segments"
SEGMENT_SUFFIX = ".seg"

#: Records per segment before it seals.  Small enough that one segment
#: in memory is bounded (~hundreds of KB), large enough that manifest
#: rewrites stay rare.
DEFAULT_SEGMENT_RECORDS = 512

#: The footer line's sentinel key (no record payload carries it).
FOOTER_KEY = "__segment_footer__"

#: Quarantine rules the loader emits.
RULE_SEGMENT_CORRUPT = "store_segment_corrupt"
RULE_LINE_CORRUPT = "store_decode_error"

#: ``source`` value for store-loader quarantines (the dead-letter
#: store's provenance field).
SOURCE_STORE_LOAD = "store_load"


class StoreError(RuntimeError):
    """A store directory is missing, unreadable, or structurally wrong.
    The message is a single printable line."""


class StoreCorruptError(StoreError):
    """Verification found checksum/count mismatches (``repro data
    verify`` exit 2)."""


def _dump_line(payload: dict) -> str:
    """One record as its canonical stored line (stable key order, so
    same-seed twin runs write byte-identical segments)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def segment_name(record_type: str, seq: int) -> str:
    return f"{record_type}-{seq:06d}{SEGMENT_SUFFIX}"


def _parse_segment_name(name: str) -> Optional[Tuple[str, int]]:
    if not name.endswith(SEGMENT_SUFFIX):
        return None
    stem = name[:-len(SEGMENT_SUFFIX)]
    record_type, _, seq = stem.rpartition("-")
    if not record_type or not seq.isdigit():
        return None
    return record_type, int(seq)


class _OpenSegment:
    """Write-side bookkeeping of the active (unsealed) tail segment."""

    __slots__ = ("record_type", "seq", "path", "handle", "records",
                 "bytes", "hasher")

    def __init__(self, record_type: str, seq: int, path: str) -> None:
        self.record_type = record_type
        self.seq = seq
        self.path = path
        self.handle = open(path, "a", encoding="utf-8")
        self.records = 0
        self.bytes = 0
        self.hasher = hashlib.sha256()


def _existing_store_artifact(directory: str,
                             segments_dir: str) -> Optional[str]:
    """The first store artifact already present in ``directory``
    (manifest or segment file), or None when the directory is fresh."""
    if os.path.exists(os.path.join(directory, STORE_MANIFEST_FILENAME)):
        return STORE_MANIFEST_FILENAME
    if os.path.isdir(segments_dir):
        for name in sorted(os.listdir(segments_dir)):
            if name.endswith(SEGMENT_SUFFIX):
                return os.path.join(SEGMENTS_DIRNAME, name)
    return None


class StoreWriter:
    """Appends records to a store directory; seal-as-you-go durability.

    A store directory is **write-once**: the writer refuses a directory
    that already holds a manifest or segment files.  Reopening existing
    segments in append mode would restart sequence numbers at 0, mix
    two runs' records in one file, and break every footer count — the
    previous run's data must be read, not extended.  Point each run at
    a fresh directory (or delete the old store first).

    Usable as a context manager: a clean ``with`` exit seals the store;
    an exception leaves whatever was flushed on disk for the reader's
    recovery paths (that *is* the crash story, not a leak).
    """

    def __init__(self, directory: str,
                 segment_max_records: int = DEFAULT_SEGMENT_RECORDS,
                 faults=None,
                 telemetry: Optional[Telemetry] = None) -> None:
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        self.directory = directory
        self.segments_dir = os.path.join(directory, SEGMENTS_DIRNAME)
        artifact = _existing_store_artifact(directory, self.segments_dir)
        if artifact is not None:
            raise StoreError(
                f"{directory} already holds a store ({artifact}); "
                f"appending would corrupt it — use a fresh directory "
                f"or delete the old store first"
            )
        os.makedirs(self.segments_dir, exist_ok=True)
        self.segment_max_records = segment_max_records
        self.faults = faults
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_segments = self.telemetry.metrics.counter(
            "store_segments_total", "sealed store segments",
        )
        self._m_bytes = self.telemetry.metrics.counter(
            "store_bytes_total", "record payload bytes appended",
            labels=("record_type",),
        )
        #: record_type -> active segment.
        self._open: Dict[str, _OpenSegment] = {}
        #: Sealed-segment manifest entries, in seal order.
        self._sealed: List[dict] = []
        #: record_type -> next segment sequence number.
        self._next_seq: Dict[str, int] = {}
        #: record_type -> records appended (sealed + active).
        self._counts: Dict[str, int] = {}
        self._finished = False

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.seal()
        else:
            self.close()

    # -- appends -----------------------------------------------------------

    def append(self, record_type: str, payload: dict) -> None:
        """Append one record; raises :class:`DiskFullError` /
        :class:`DiskWriteError` on unmaskable storage faults, with the
        store left consistent (no partial line)."""
        if self._finished:
            raise StoreError("store is sealed; no further appends")
        segment = self._open.get(record_type)
        if segment is None:
            segment = self._new_segment(record_type)
        line = _dump_line(payload)
        self._write_line(segment, line)
        encoded = line.encode("utf-8")
        segment.records += 1
        segment.bytes += len(encoded)
        segment.hasher.update(encoded)
        self._counts[record_type] = self._counts.get(record_type, 0) + 1
        self._m_bytes.inc(len(encoded), record_type=record_type)
        if segment.records >= self.segment_max_records:
            self._seal_segment(segment)

    def counts(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    # -- sealing -----------------------------------------------------------

    def seal(self, partial: Optional[str] = None) -> dict:
        """Seal every open segment and write the final manifest.

        ``partial`` marks a store cut short by graceful degradation
        (e.g. ``"disk_full"``); the manifest records it so consumers can
        tell a complete study from a flushed prefix.  Returns the
        manifest document.  Best-effort under a full disk: a segment
        whose footer cannot be written stays an unsealed tail (the
        reader recovers it); the manifest write itself is atomic.
        """
        for segment in list(self._open.values()):
            try:
                self._seal_segment(segment)
            except OSError:
                if partial is None:
                    raise
                # Degraded flush: leave the segment as a recoverable
                # tail rather than losing the records that did land.
                self._drop_open(segment)
        manifest = self._manifest_document(sealed=True, partial=partial)
        atomic_write_json(
            os.path.join(self.directory, STORE_MANIFEST_FILENAME),
            manifest, fsync=True, faults=self.faults,
        )
        self._finished = True
        return manifest

    def close(self) -> None:
        """Drop the open handles without sealing (crash simulation and
        error paths); flushed bytes stay on disk for recovery."""
        for segment in list(self._open.values()):
            self._drop_open(segment)
        self._finished = True

    # -- internals ---------------------------------------------------------

    def _new_segment(self, record_type: str) -> _OpenSegment:
        seq = self._next_seq.get(record_type, 0)
        path = os.path.join(self.segments_dir,
                            segment_name(record_type, seq))
        segment = _OpenSegment(record_type, seq, path)
        self._open[record_type] = segment
        self._next_seq[record_type] = seq + 1
        return segment

    def _drop_open(self, segment: _OpenSegment) -> None:
        try:
            segment.handle.close()
        except OSError:
            pass
        self._open.pop(segment.record_type, None)

    def _write_line(self, segment: _OpenSegment, line: str,
                    data: bool = True) -> None:
        """One durable line append with torn-write recovery.

        A failed write (injected or real) may leave a partial line; the
        file is truncated back to the last good byte before retrying
        once or raising, so the segment never holds a torn *middle*.
        """
        for attempt in (1, 2):
            try:
                if self.faults is not None:
                    self.faults.write(segment.handle, segment.path, line,
                                      data=data)
                else:
                    segment.handle.write(line)
                segment.handle.flush()
                return
            except OSError as exc:
                self._truncate_back(segment)
                if is_disk_full(exc):
                    raise DiskFullError(str(exc)) if not isinstance(
                        exc, DiskFullError) else exc
                if attempt == 2:
                    raise DiskWriteError(
                        f"segment append failed twice: {exc}"
                    ) from exc
                self.telemetry.events.emit(
                    "store.write_retry", level="warning",
                    segment=os.path.basename(segment.path),
                    detail=str(exc),
                )

    def _truncate_back(self, segment: _OpenSegment) -> None:
        """Rewind the segment file to its last known-good byte."""
        try:
            segment.handle.close()
        except OSError:
            pass
        os.truncate(segment.path, segment.bytes)
        segment.handle = open(segment.path, "a", encoding="utf-8")

    def _seal_segment(self, segment: _OpenSegment) -> None:
        """Footer + fsync + manifest update: the segment becomes part of
        the store's durable, checksummed prefix."""
        footer = {FOOTER_KEY: {
            "records": segment.records,
            "sha256": segment.hasher.hexdigest(),
        }}
        self._write_line(segment, _dump_line(footer), data=False)
        try:
            if self.faults is not None:
                self.faults.fsync(segment.path, segment.handle.fileno())
            else:
                os.fsync(segment.handle.fileno())
        except OSError as exc:
            raise DiskWriteError(
                f"segment fsync failed: {exc}"
            ) from exc
        finally:
            if segment.handle.closed:
                pass
        segment.handle.close()
        self._open.pop(segment.record_type, None)
        self._sealed.append({
            "name": os.path.basename(segment.path),
            "record_type": segment.record_type,
            "records": segment.records,
            "bytes": segment.bytes,
            "sha256": segment.hasher.hexdigest(),
        })
        self._m_segments.inc()
        self.telemetry.events.emit(
            "store.segment_sealed", level="info",
            segment=os.path.basename(segment.path),
            records=segment.records,
        )
        atomic_write_json(
            os.path.join(self.directory, STORE_MANIFEST_FILENAME),
            self._manifest_document(sealed=False),
            fsync=True, faults=self.faults,
        )

    def _manifest_document(self, sealed: bool,
                           partial: Optional[str] = None) -> dict:
        document = {
            "schema": STORE_SCHEMA,
            "sealed": sealed,
            "segment_max_records": self.segment_max_records,
            "counts": self.counts(),
            "segments": list(self._sealed),
        }
        if partial:
            document["partial"] = partial
        return document


# -- reading -----------------------------------------------------------------


class _SegmentView:
    """Read-side description of one on-disk segment."""

    __slots__ = ("name", "path", "record_type", "seq", "sealed_entry")

    def __init__(self, name: str, path: str, record_type: str, seq: int,
                 sealed_entry: Optional[dict]) -> None:
        self.name = name
        self.path = path
        self.record_type = record_type
        self.seq = seq
        #: The manifest entry when the segment is claimed sealed.
        self.sealed_entry = sealed_entry


class StoreReader:
    """Streaming, self-verifying reads over a store directory.

    Corruption handling is *containment*, not failure: a broken sealed
    segment or torn tail line is quarantined/recovered and counted, and
    iteration continues with everything else.  :meth:`verify` is the
    strict audit (``repro data verify``) that reports every problem.
    """

    def __init__(self, directory: str,
                 quarantine=None,
                 telemetry: Optional[Telemetry] = None,
                 faults=None) -> None:
        self.directory = directory
        self.segments_dir = os.path.join(directory, SEGMENTS_DIRNAME)
        self.quarantine = quarantine
        self.telemetry = telemetry or NULL_TELEMETRY
        self.faults = faults
        self._m_recovered = self.telemetry.metrics.counter(
            "store_recovered_tail_total",
            "torn tail segments recovered on load",
        )
        self._m_quarantined = self.telemetry.metrics.counter(
            "store_quarantined_segments_total",
            "corrupt segments quarantined on load",
        )
        #: Loader tallies (also exposed via metrics/events).
        self.recovered_tails = 0
        self.quarantined_segments = 0
        self.recovered_lines_dropped = 0
        #: Problems already accounted, keyed ``(segment, kind[, line])``
        #: — re-scans (GroupedView passes, repeated counts()) must not
        #: re-quarantine the same corruption or re-inflate the metrics.
        self._noted_problems: set = set()
        self.manifest = self._load_manifest()

    @classmethod
    def open(cls, directory: str, quarantine=None,
             telemetry: Optional[Telemetry] = None,
             faults=None) -> "StoreReader":
        if not os.path.isdir(directory):
            raise StoreError(f"store directory {directory} does not exist")
        segments_dir = os.path.join(directory, SEGMENTS_DIRNAME)
        manifest_path = os.path.join(directory, STORE_MANIFEST_FILENAME)
        if not os.path.isdir(segments_dir) and \
                not os.path.exists(manifest_path):
            raise StoreError(
                f"{directory} is not a segmented store "
                f"(no {STORE_MANIFEST_FILENAME}, no {SEGMENTS_DIRNAME}/)"
            )
        return cls(directory, quarantine=quarantine, telemetry=telemetry,
                   faults=faults)

    # -- manifest ----------------------------------------------------------

    def _load_manifest(self) -> Optional[dict]:
        path = os.path.join(self.directory, STORE_MANIFEST_FILENAME)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"unreadable store manifest {path}: {exc}"
            ) from None
        if artifact_schema(document) != STORE_SCHEMA:
            raise StoreError(
                f"{path}: schema id {artifact_schema(document)!r} does "
                f"not match expected {STORE_SCHEMA!r}"
            )
        return document

    @property
    def partial(self) -> Optional[str]:
        """The manifest's degradation marker (e.g. ``"disk_full"``)."""
        if self.manifest is None:
            return None
        return self.manifest.get("partial")

    # -- segment discovery -------------------------------------------------

    def _segments(self, record_type: Optional[str] = None) -> List[_SegmentView]:
        """Every on-disk segment, ordered ``(record_type, seq)``."""
        sealed_by_name: Dict[str, dict] = {}
        if self.manifest is not None:
            sealed_by_name = {
                entry["name"]: entry
                for entry in self.manifest.get("segments", [])
            }
        views: List[_SegmentView] = []
        if os.path.isdir(self.segments_dir):
            for name in sorted(os.listdir(self.segments_dir)):
                parsed = _parse_segment_name(name)
                if parsed is None:
                    continue
                rtype, seq = parsed
                if record_type is not None and rtype != record_type:
                    continue
                views.append(_SegmentView(
                    name, os.path.join(self.segments_dir, name),
                    rtype, seq, sealed_by_name.get(name),
                ))
        views.sort(key=lambda v: (v.record_type, v.seq))
        return views

    def record_types(self) -> List[str]:
        return sorted({view.record_type for view in self._segments()})

    # -- streaming reads ---------------------------------------------------

    def iter_records(self, record_type: str) -> Iterator[dict]:
        """Yield record payload dicts in append order, one at a time.

        Memory high-water mark is one segment's bytes: sealed segments
        are checksum-verified *before* any of their records are yielded,
        so a caller never consumes data a later byte would invalidate.
        """
        for view in self._segments(record_type):
            yield from self._iter_segment(view)

    def iter_all(self) -> Iterator[Tuple[str, dict]]:
        """Yield ``(record_type, payload)`` across the whole store."""
        for view in self._segments():
            for payload in self._iter_segment(view):
                yield view.record_type, payload

    def count(self, record_type: str) -> int:
        counted = 0
        for _ in self.iter_records(record_type):
            counted += 1
        return counted

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record_type, _ in self.iter_all():
            totals[record_type] = totals.get(record_type, 0) + 1
        return dict(sorted(totals.items()))

    def grouped(self, record_type: str,
                key: Union[str, Callable[[dict], object]]) -> "GroupedView":
        return GroupedView(self, record_type, key)

    # -- segment decoding --------------------------------------------------

    def _read_segment_bytes(self, view: _SegmentView) -> bytes:
        with open(view.path, "rb") as handle:
            payload = handle.read()
        if self.faults is not None:
            payload = self.faults.filter_read(view.path, payload)
        return payload

    def _iter_segment(self, view: _SegmentView) -> Iterator[dict]:
        payload = self._read_segment_bytes(view)
        if view.sealed_entry is not None:
            problem = _sealed_segment_problem(payload, view.sealed_entry)
            if problem is not None:
                self._quarantine_segment(view, problem)
                return
            for line in payload.splitlines()[:-1]:  # last line = footer
                yield json.loads(line)
            return
        # Unsealed tail (or a sealed-but-unclaimed segment after a crash
        # between footer and manifest): scan line by line, recovering.
        yield from self._iter_tail(view, payload)

    def _iter_tail(self, view: _SegmentView, payload: bytes) -> Iterator[dict]:
        lines = payload.split(b"\n")
        torn_final = lines and lines[-1] != b""
        if not torn_final and lines and lines[-1] == b"":
            lines = lines[:-1]
        for index, raw in enumerate(lines):
            final = index == len(lines) - 1
            if final and torn_final:
                # Truncated final line: the classic SIGKILL artifact.
                if raw:
                    self._recover_tail(view, raw)
                continue
            if not raw:
                continue
            try:
                parsed = json.loads(raw)
            except json.JSONDecodeError as exc:
                if final:
                    # A complete-looking but undecodable final line is
                    # still torn-tail shaped (e.g. killed mid-flush).
                    self._recover_tail(view, raw)
                else:
                    self._quarantine_line(view, raw, str(exc), index)
                continue
            if isinstance(parsed, dict) and FOOTER_KEY in parsed:
                # A footer seals the segment: everything before it was
                # verified implicitly by arriving intact, and nothing
                # legitimately appends past it.  Quarantine any trailing
                # bytes instead of serving them as data.
                for extra_index in range(index + 1, len(lines)):
                    extra = lines[extra_index]
                    if extra:
                        self._quarantine_line(
                            view, extra, "record after sealed footer",
                            extra_index,
                        )
                return
            yield parsed

    # -- recovery bookkeeping ----------------------------------------------

    def _recover_tail(self, view: _SegmentView, raw: bytes) -> None:
        if not self._note_problem((view.name, "tail")):
            return
        self.recovered_tails += 1
        self.recovered_lines_dropped += 1
        self._m_recovered.inc()
        self.telemetry.events.emit(
            "store.recovered_tail", level="warning",
            segment=view.name, dropped_bytes=len(raw),
        )

    def _quarantine_segment(self, view: _SegmentView, problem: str) -> None:
        if not self._note_problem((view.name, "segment")):
            return
        self.quarantined_segments += 1
        self._m_quarantined.inc()
        self.telemetry.events.emit(
            "store.segment_quarantined", level="error",
            segment=view.name, detail=problem,
        )
        if self.quarantine is not None:
            self.quarantine.quarantine(
                view.record_type, RULE_SEGMENT_CORRUPT, problem,
                raw=view.name, source=SOURCE_STORE_LOAD,
            )

    def _quarantine_line(self, view: _SegmentView, raw: bytes,
                         reason: str, index: int) -> None:
        if not self._note_problem((view.name, "line", index)):
            return
        self.recovered_lines_dropped += 1
        self.telemetry.events.emit(
            "store.line_quarantined", level="error",
            segment=view.name, detail=reason,
        )
        if self.quarantine is not None:
            self.quarantine.quarantine(
                view.record_type, RULE_LINE_CORRUPT, reason,
                raw=raw.decode("utf-8", "replace")[:500],
                source=SOURCE_STORE_LOAD,
            )

    def _note_problem(self, key: tuple) -> bool:
        """True the first time ``key`` is seen; later passes over the
        same corruption are silent (already counted, already
        dead-lettered)."""
        if key in self._noted_problems:
            return False
        self._noted_problems.add(key)
        return True

    # -- verification ------------------------------------------------------

    def verify(self) -> List[str]:
        """Audit the whole store; returns one line per problem.

        Checks: every manifest segment exists, matches its recorded
        byte size, checksum, and record count; unclaimed segments decode
        (a recovered torn tail is reported as a note-level problem only
        when strict callers want it — here it is *not* a problem, it is
        the design); counts add up.
        """
        problems: List[str] = []
        claimed = set()
        manifest_segments = []
        if self.manifest is not None:
            manifest_segments = self.manifest.get("segments", [])
        for entry in manifest_segments:
            name = entry.get("name", "?")
            claimed.add(name)
            path = os.path.join(self.segments_dir, name)
            if not os.path.exists(path):
                problems.append(f"{name}: listed in manifest but missing")
                continue
            view = _SegmentView(name, path, entry.get("record_type", "?"),
                                -1, entry)
            payload = self._read_segment_bytes(view)
            problem = _sealed_segment_problem(payload, entry)
            if problem is not None:
                problems.append(f"{name}: {problem}")
        for view in self._segments():
            if view.name in claimed:
                continue
            payload = self._read_segment_bytes(view)
            problems.extend(
                f"{view.name}: {issue}"
                for issue in _tail_segment_problems(payload)
            )
        return problems


def _sealed_segment_problem(payload: bytes, entry: dict) -> Optional[str]:
    """Why a sealed segment's bytes do not match its manifest claim
    (None when clean)."""
    lines = payload.split(b"\n")
    if not lines or lines[-1] != b"":
        return "sealed segment does not end in a newline"
    lines = lines[:-1]
    if not lines:
        return "sealed segment is empty"
    try:
        footer_line = json.loads(lines[-1])
    except json.JSONDecodeError:
        return "sealed segment footer is undecodable"
    footer = (footer_line or {}).get(FOOTER_KEY) \
        if isinstance(footer_line, dict) else None
    if not isinstance(footer, dict):
        return "sealed segment has no footer line"
    body = b"\n".join(lines[:-1]) + b"\n" if len(lines) > 1 else b""
    digest = hashlib.sha256(body).hexdigest()
    records = len(lines) - 1
    if footer.get("records") != records:
        return (f"footer claims {footer.get('records')} records, "
                f"segment holds {records}")
    if footer.get("sha256") != digest:
        return "footer checksum does not match segment bytes"
    if entry.get("records") != records:
        return (f"manifest claims {entry.get('records')} records, "
                f"segment holds {records}")
    if entry.get("sha256") != digest:
        return "manifest checksum does not match segment bytes"
    return None


def _tail_segment_problems(payload: bytes) -> List[str]:
    """Structural problems in an unclaimed (tail) segment.  A truncated
    final line is recoverable-by-design and therefore not a problem; an
    undecodable complete line is, and so is any data past a footer
    (nothing legitimately appends to a sealed segment)."""
    problems: List[str] = []
    lines = payload.split(b"\n")
    if lines and lines[-1] != b"":
        lines = lines[:-1]  # torn final line: recovered, fine
    footer_seen = False
    for raw in lines:
        if not raw:
            continue
        if footer_seen:
            problems.append("data after sealed footer in tail segment")
            break
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError:
            problems.append("undecodable line in tail segment")
            break
        if isinstance(parsed, dict) and FOOTER_KEY in parsed:
            footer_seen = True
    return problems


class GroupedView:
    """Bounded-memory grouped access to one record type.

    ``keys()``/``counts()`` make one streaming pass and hold only the
    distinct key set; ``iter_group(key)`` re-scans and yields matches
    one at a time.  The trade is deliberate: re-reading a disk segment
    is cheap, holding tens of millions of records is not.
    """

    def __init__(self, reader: StoreReader, record_type: str,
                 key: Union[str, Callable[[dict], object]]) -> None:
        self.reader = reader
        self.record_type = record_type
        self._key = key if callable(key) else \
            (lambda payload: payload.get(key))

    def counts(self) -> Dict[object, int]:
        """Distinct keys -> record count, in first-seen order."""
        totals: Dict[object, int] = {}
        for payload in self.reader.iter_records(self.record_type):
            value = self._key(payload)
            totals[value] = totals.get(value, 0) + 1
        return totals

    def keys(self) -> List[object]:
        return list(self.counts())

    def iter_group(self, value: object) -> Iterator[dict]:
        for payload in self.reader.iter_records(self.record_type):
            if self._key(payload) == value:
                yield payload

    def __iter__(self) -> Iterator[Tuple[object, Iterator[dict]]]:
        for value in self.keys():
            yield value, self.iter_group(value)


__all__ = [
    "DEFAULT_SEGMENT_RECORDS",
    "FOOTER_KEY",
    "GroupedView",
    "RULE_LINE_CORRUPT",
    "RULE_SEGMENT_CORRUPT",
    "SEGMENTS_DIRNAME",
    "SOURCE_STORE_LOAD",
    "STORE_MANIFEST_FILENAME",
    "StoreCorruptError",
    "StoreError",
    "StoreReader",
    "StoreWriter",
    "segment_name",
]
