"""Seeded fault injection over the synthetic Internet.

:class:`FaultInjector` wraps an :class:`~repro.web.server.Internet` and
presents the same surface (``clock``, ``fetch``, ``site``, ``register``,
``hosts``), so the :class:`~repro.web.client.HttpClient` cannot tell the
difference — exactly as a real crawler cannot tell a dying reverse proxy
from the site behind it.  On each ``fetch`` it may, per the active
:class:`~repro.faults.profiles.FaultProfile`:

* raise a connect error (outage bursts),
* answer 500/502/503/504 (5xx bursts),
* stall beyond the client timeout (hangs) or just below it (tarpits),
* truncate or mangle the HTML body it relays,
* answer 429 storms bearing ``Retry-After`` in both RFC 7231 forms,
* trip a mid-crawl flash ban (a window of 403 answers).

Every decision comes from a :class:`~repro.util.rng.RngTree` stream
derived from ``(seed, epoch, host)``, where the epoch advances at each
collection iteration (:meth:`FaultInjector.begin_iteration`).  Two
same-seed runs therefore inject byte-identical fault sequences, and —
because a resumed crawl re-enters iteration *k* with the same epoch
stream an uninterrupted run would use — checkpointed resume stays
deterministic under chaos too.

Every injected fault is observable: a ``fault.<kind>`` event with host
and URL context, plus a ``faults_injected_total{host,kind}`` counter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.profiles import FaultProfile, FaultRates
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.util.rng import RngTree
from repro.web import http
from repro.web.http import ConnectionFailed, Request, Response
from repro.web.server import Internet

#: 5xx codes a burst cycles through (503 first: the most common answer
#: of an overloaded marketplace).
_BURST_CODES = (
    http.SERVICE_UNAVAILABLE,
    http.INTERNAL_SERVER_ERROR,
    http.BAD_GATEWAY,
    http.GATEWAY_TIMEOUT,
)

#: Simulated seconds a failed connect attempt costs the client.
_CONNECT_FAIL_SECONDS = 1.0


class _HostState:
    """Per-host fault bookkeeping within one epoch."""

    __slots__ = ("rng", "requests", "burst_kind", "burst_remaining", "burst_index")

    def __init__(self, rng: RngTree) -> None:
        self.rng = rng
        self.requests = 0
        self.burst_kind: Optional[str] = None
        self.burst_remaining = 0
        self.burst_index = 0


class FaultInjector:
    """An :class:`Internet` proxy that injects seeded faults per host."""

    def __init__(
        self,
        inner: Internet,
        profile: FaultProfile,
        seed: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._inner = inner
        self.profile = profile
        self._seed = seed
        self._epoch = 0
        self._states: Dict[str, _HostState] = {}
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_faults = self.telemetry.metrics.counter(
            "faults_injected_total", "injected faults, by host and kind",
            labels=("host", "kind"),
        )
        #: Injected-fault tally by kind (tests and reporting).
        self.counts: Dict[str, int] = {}

    # -- Internet surface --------------------------------------------------

    @property
    def clock(self):
        return self._inner.clock

    @property
    def hosts(self) -> List[str]:
        return self._inner.hosts

    @property
    def requests_by_host(self) -> Dict[str, int]:
        return self._inner.requests_by_host

    def register(self, site):
        return self._inner.register(site)

    def site(self, host: str):
        return self._inner.site(host)

    def set_telemetry(self, telemetry: Telemetry) -> None:
        self._inner.set_telemetry(telemetry)
        self.telemetry = telemetry
        self._m_faults = telemetry.metrics.counter(
            "faults_injected_total", "injected faults, by host and kind",
            labels=("host", "kind"),
        )

    # -- epochs ------------------------------------------------------------

    def begin_iteration(self, iteration: int) -> None:
        """Reseed all per-host fault streams for a collection iteration.

        Keying streams by ``(seed, iteration, host)`` — instead of one
        global request counter — is what makes a checkpointed resume see
        the same faults at iteration *k* as an uninterrupted run.
        """
        self._epoch = iteration
        self._states.clear()

    # -- fetch -------------------------------------------------------------

    def fetch(self, request: Request, client_id: str = "anon",
              via_tor: bool = False) -> Response:
        if not self.profile.active:
            return self._inner.fetch(request, client_id=client_id, via_tor=via_tor)
        from repro.web.url import url_host

        host = url_host(request.url)
        state = self._state_for(host)
        state.requests += 1
        rates = self.profile.rates
        action = self._next_action(state, rates)
        if action == "outage":
            self._note(host, request, "outage")
            self.clock.advance(_CONNECT_FAIL_SECONDS)
            raise ConnectionFailed(f"injected outage: {host} unreachable")
        if action == "server_error":
            code = _BURST_CODES[state.burst_index % len(_BURST_CODES)]
            self._note(host, request, f"http_{code}")
            return self._synthetic(request, http.error_response(code))
        if action == "rate_storm":
            self._note(host, request, "rate_storm")
            response = http.error_response(http.TOO_MANY_REQUESTS)
            delay = rates.retry_after_seconds
            if state.rng.random() < rates.retry_after_http_date_share:
                response.headers["Retry-After"] = http.sim_http_date(
                    self.clock.now() + delay
                )
            else:
                response.headers["Retry-After"] = f"{delay:.1f}"
            return self._synthetic(request, response)
        if action == "flash_ban":
            self._note(host, request, "flash_ban")
            return self._synthetic(request, http.error_response(http.FORBIDDEN))
        if action == "hang":
            # The server sits on the request past the client timeout;
            # the client will discard whatever eventually arrives.
            self._note(host, request, "hang")
            self.clock.advance(rates.hang_seconds)
            return self._inner.fetch(request, client_id=client_id, via_tor=via_tor)
        if action == "tarpit":
            self._note(host, request, "tarpit")
            self.clock.advance(rates.tarpit_seconds)
            return self._inner.fetch(request, client_id=client_id, via_tor=via_tor)

        response = self._inner.fetch(request, client_id=client_id, via_tor=via_tor)
        if action in ("truncate", "mangle") and _is_html(response) and response.ok:
            if action == "truncate":
                self._note(host, request, "truncated_html")
                cut = max(1, int(len(response.body) * state.rng.uniform(0.25, 0.7)))
                response.body = response.body[:cut]
            else:
                self._note(host, request, "mangled_html")
                response.body = _mangle(response.body)
        return response

    # -- internals ---------------------------------------------------------

    def _state_for(self, host: str) -> _HostState:
        state = self._states.get(host)
        if state is None:
            stream = RngTree(self._seed, name="faults").child(
                f"epoch:{self._epoch}"
            ).child(host)
            state = _HostState(stream)
            self._states[host] = state
        return state

    def _next_action(self, state: _HostState, rates: FaultRates) -> Optional[str]:
        """One fault decision: continue an active burst or roll a new one."""
        if state.burst_remaining > 0:
            state.burst_remaining -= 1
            state.burst_index += 1
            return state.burst_kind
        state.burst_kind = None
        roll = state.rng.random()
        threshold = 0.0
        for kind, probability in (
            ("outage", rates.outage),
            ("server_error", rates.server_error),
            ("hang", rates.hang),
            ("tarpit", rates.tarpit),
            ("truncate", rates.truncate_body),
            ("mangle", rates.mangle_body),
            ("rate_storm", rates.rate_storm),
            ("flash_ban", rates.flash_ban),
        ):
            threshold += probability
            if roll < threshold and probability > 0.0:
                self._begin_burst(state, kind, rates)
                return kind
        return None

    def _begin_burst(self, state: _HostState, kind: str,
                     rates: FaultRates) -> None:
        """Arm burst bookkeeping for fault families that come in runs."""
        lengths = {
            "outage": rates.outage_burst,
            "server_error": rates.server_error_burst,
            "rate_storm": rates.rate_storm_burst,
            "flash_ban": (rates.flash_ban_requests, rates.flash_ban_requests),
        }.get(kind)
        state.burst_index = 0
        if lengths is None:
            state.burst_remaining = 0
            return
        low, high = lengths
        # This request is the first of the burst; the rest follow.
        state.burst_kind = kind
        state.burst_remaining = max(0, state.rng.randint(low, high) - 1)

    def _synthetic(self, request: Request, response: Response) -> Response:
        """Stamp an injected response like a real site answer."""
        latency = 0.15
        try:
            latency = self._inner.site(_host_of(request)).latency_seconds
        except http.HttpError:
            pass
        self.clock.advance(latency)
        response.url = request.url
        response.elapsed = latency
        return response

    def _note(self, host: str, request: Request, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._m_faults.inc(host=host, kind=kind)
        self.telemetry.events.emit(
            f"fault.{kind}", level="info", host=host, url=request.url,
        )


def _host_of(request: Request) -> str:
    from repro.web.url import url_host

    return url_host(request.url)


def _is_html(response: Response) -> bool:
    return "text/html" in response.content_type


def _mangle(body: str) -> str:
    """Scramble markup the way silent site redesigns and WAF
    interstitials did in the paper's crawl: the page still parses, but
    every class hook the extractor keys on is gone."""
    return body.replace("class=", "data-chaos=")


__all__ = ["FaultInjector"]
