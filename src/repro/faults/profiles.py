"""Named chaos profiles: how hostile the synthetic Internet behaves.

The paper's five-month measurement ran against marketplaces that
throttled, banned, went down, and silently changed markup.  A
:class:`FaultRates` bundle gives each fault family a per-request
trigger probability plus its shape parameters; a :class:`FaultProfile`
names one such bundle so runs can ask for ``--chaos moderate`` and get
the same weather every time.

Profile tuning notes: burst lengths stay at or below the client's
default ``max_retries`` (3), so every *transient* fault family is
recoverable by backoff alone; what moderate chaos permanently costs the
crawl is corrupted pages that fail the integrity re-fetch and the odd
flash-ban window — both rare enough that the fidelity scorecard stays
inside its calibration bands (enforced by the CI chaos gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class FaultRates:
    """Per-request fault probabilities and shapes for one host."""

    #: Connect errors (the host is unreachable), in short bursts.
    outage: float = 0.0
    outage_burst: Tuple[int, int] = (1, 1)
    #: 5xx answers (500/502/503/504 cycling), in short bursts.
    server_error: float = 0.0
    server_error_burst: Tuple[int, int] = (1, 2)
    #: Responses slower than the client timeout (the crawl hangs, then
    #: the client gives up).
    hang: float = 0.0
    hang_seconds: float = 90.0
    #: Responses slow enough to hurt but below the timeout (tarpits).
    tarpit: float = 0.0
    tarpit_seconds: float = 15.0
    #: HTML bodies cut off mid-page (proxy died mid-transfer).
    truncate_body: float = 0.0
    #: HTML bodies with the markup scrambled (markup drift / WAF page).
    mangle_body: float = 0.0
    #: 429 storms carrying a ``Retry-After`` header, in bursts.
    rate_storm: float = 0.0
    rate_storm_burst: Tuple[int, int] = (1, 2)
    retry_after_seconds: float = 5.0
    #: Share of storm answers whose Retry-After is an HTTP-date instead
    #: of delta-seconds (exercising the client's dual-form parser).
    retry_after_http_date_share: float = 0.3
    #: Mid-crawl flash bans: a request trips a window of 403 answers.
    flash_ban: float = 0.0
    flash_ban_requests: int = 2

    # -- storage plane (see :mod:`repro.faults.disk`) ----------------------

    #: Per-write probability of ENOSPC (the disk is full *now*).
    disk_enospc: float = 0.0
    #: Deterministic disk-full drill: record-data writes fail with
    #: ENOSPC once this many payload bytes have been written (None =
    #: never).  Metadata writes (segment footers, manifests) are exempt,
    #: modeling the reserved blocks real filesystems keep — exactly the
    #: regime in which "flush what fits and seal" is possible.
    disk_enospc_after_bytes: Optional[int] = None
    #: Per-write probability the write lands only a prefix, then errors
    #: (a torn write: power loss or a dying device mid-transfer).
    disk_torn_write: float = 0.0
    #: Per-fsync probability the flush to stable storage fails (EIO).
    disk_fsync_fail: float = 0.0
    #: Per-read probability one bit of the payload comes back flipped
    #: (silent media corruption the checksums must catch).
    disk_bit_flip: float = 0.0

    @property
    def active(self) -> bool:
        """Any *network* fault family armed (the web injector's switch)."""
        return any((
            self.outage, self.server_error, self.hang, self.tarpit,
            self.truncate_body, self.mangle_body, self.rate_storm,
            self.flash_ban,
        ))

    @property
    def disk_active(self) -> bool:
        """Any *storage* fault family armed (the disk injector's switch)."""
        return bool(
            self.disk_enospc or self.disk_torn_write
            or self.disk_fsync_fail or self.disk_bit_flip
            or self.disk_enospc_after_bytes is not None
        )


@dataclass(frozen=True)
class FaultProfile:
    """A named chaos level applied uniformly across hosts."""

    name: str
    rates: FaultRates = field(default_factory=FaultRates)

    @property
    def active(self) -> bool:
        return self.rates.active

    @property
    def disk_active(self) -> bool:
        return self.rates.disk_active


#: The registry behind ``--chaos <name>``.
PROFILES: Dict[str, FaultProfile] = {
    "off": FaultProfile(name="off"),
    "light": FaultProfile(
        name="light",
        rates=FaultRates(
            outage=0.002,
            server_error=0.005, server_error_burst=(1, 2),
            tarpit=0.002, tarpit_seconds=10.0,
            truncate_body=0.002,
            rate_storm=0.003, rate_storm_burst=(1, 2),
            retry_after_seconds=4.0,
        ),
    ),
    "moderate": FaultProfile(
        name="moderate",
        rates=FaultRates(
            outage=0.004, outage_burst=(1, 2),
            server_error=0.010, server_error_burst=(1, 3),
            hang=0.003, hang_seconds=90.0,
            tarpit=0.004, tarpit_seconds=15.0,
            truncate_body=0.004,
            mangle_body=0.003,
            rate_storm=0.006, rate_storm_burst=(1, 3),
            retry_after_seconds=6.0,
            flash_ban=0.0015, flash_ban_requests=2,
        ),
    ),
    "heavy": FaultProfile(
        name="heavy",
        rates=FaultRates(
            outage=0.010, outage_burst=(1, 3),
            server_error=0.030, server_error_burst=(1, 3),
            hang=0.008, hang_seconds=120.0,
            tarpit=0.010, tarpit_seconds=20.0,
            truncate_body=0.010,
            mangle_body=0.008,
            rate_storm=0.015, rate_storm_burst=(2, 3),
            retry_after_seconds=8.0,
            retry_after_http_date_share=0.4,
            flash_ban=0.004, flash_ban_requests=4,
        ),
    ),
    # Storage-plane chaos: the network is calm, the disk is dying.
    # Rates are per-write/-read, and a study writes thousands of
    # records, so even small probabilities exercise every recovery path.
    "disk": FaultProfile(
        name="disk",
        rates=FaultRates(
            disk_enospc=0.001,
            disk_torn_write=0.004,
            disk_fsync_fail=0.002,
            disk_bit_flip=0.0005,
        ),
    ),
    # The disk-full drill: record-data writes start failing after 256
    # KiB, deterministically, whatever the seed — the run must flush
    # what fits, seal it, and exit cleanly with partial:disk_full.
    "disk_full": FaultProfile(
        name="disk_full",
        rates=FaultRates(
            disk_enospc_after_bytes=256 * 1024,
        ),
    ),
}

#: Accepted aliases for the quiet profile.
_OFF_ALIASES = ("off", "none", "disabled")


def resolve_profile(name: str) -> FaultProfile:
    """Look up a chaos profile by name (case-insensitive)."""
    key = (name or "off").strip().lower()
    if key in _OFF_ALIASES:
        return PROFILES["off"]
    try:
        return PROFILES[key]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {name!r}; choose from "
            f"{', '.join(sorted(PROFILES))}"
        ) from None


__all__ = ["PROFILES", "FaultProfile", "FaultRates", "resolve_profile"]
