"""Seeded, deterministic fault injection for chaos-hardened crawling.

* :mod:`repro.faults.profiles` — named chaos levels (``off``/``light``/
  ``moderate``/``heavy``) bundling per-request fault probabilities;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` proxy that
  wraps the synthetic :class:`~repro.web.server.Internet` and injects
  outages, 5xx bursts, hangs, tarpits, body corruption, 429 storms, and
  flash bans from per-``(seed, iteration, host)`` RNG streams.

Same seed, same faults — chaos runs stay byte-deterministic, which is
what lets CI diff twin runs and assert kill-and-resume equivalence.
"""

from repro.faults.injector import FaultInjector
from repro.faults.profiles import PROFILES, FaultProfile, FaultRates, resolve_profile

__all__ = [
    "PROFILES",
    "FaultInjector",
    "FaultProfile",
    "FaultRates",
    "resolve_profile",
]
