"""Seeded, deterministic fault injection for chaos-hardened crawling
and storage.

* :mod:`repro.faults.profiles` — named chaos levels (``off``/``light``/
  ``moderate``/``heavy`` for the network, ``disk``/``disk_full`` for
  the storage plane) bundling per-request fault probabilities;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` proxy that
  wraps the synthetic :class:`~repro.web.server.Internet` and injects
  outages, 5xx bursts, hangs, tarpits, body corruption, 429 storms, and
  flash bans from per-``(seed, iteration, host)`` RNG streams;
* :mod:`repro.faults.disk` — the :class:`DiskFaultInjector` the durable
  writers (segmented store, checkpoints, atomic file writes) route
  through: ENOSPC, torn writes, fsync failure, and bit-flip-on-read
  from per-``(seed, op, path)`` RNG streams.

Same seed, same faults — chaos runs stay byte-deterministic, which is
what lets CI diff twin runs and assert kill-and-resume equivalence.
"""

from repro.faults.disk import (
    DiskFaultInjector,
    DiskFullError,
    DiskWriteError,
    is_disk_full,
)
from repro.faults.injector import FaultInjector
from repro.faults.profiles import PROFILES, FaultProfile, FaultRates, resolve_profile

__all__ = [
    "PROFILES",
    "DiskFaultInjector",
    "DiskFullError",
    "DiskWriteError",
    "FaultInjector",
    "FaultProfile",
    "FaultRates",
    "is_disk_full",
    "resolve_profile",
]
