"""Seeded fault injection for the storage plane.

The network path has had chaos since PR 3; every byte the pipeline
*persists* — store segments, checkpoints, manifests — was still written
on the assumption that disks are perfect.  They are not: partitions
fill mid-run, power dies mid-write, fsync lies, and cold data rots.
:class:`DiskFaultInjector` injects exactly those four failure modes at
the write/fsync/read seams the durable writers expose:

* **ENOSPC** — a write raises :class:`DiskFullError`, either with a
  per-write probability or deterministically once a byte budget is
  spent (``disk_enospc_after_bytes``, the CI disk-full drill);
* **torn writes** — only a prefix of the payload lands, then the write
  errors, like power loss mid-transfer;
* **fsync failure** — the flush to stable storage raises EIO;
* **bit flips on read** — one bit of a read payload comes back flipped,
  silently, the way cold media corrupts; only checksums catch it.

Every decision comes from an :class:`~repro.util.rng.RngTree` stream
derived from ``(seed, op, path)`` — the path keyed by *basename* so two
same-seed runs in different scratch directories inject byte-identical
fault sequences.  Every injected fault is observable: a
``fault.disk_<kind>`` event plus ``disk_faults_injected_total{op,kind}``.
"""

from __future__ import annotations

import errno
import os
from typing import Dict, Optional

from repro.faults.profiles import FaultProfile
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.util.rng import RngTree


class DiskFullError(OSError):
    """The disk has no room for this write (injected or real ENOSPC).

    An :class:`OSError` with ``errno == ENOSPC`` so callers that already
    catch real disk-full conditions handle the injected kind for free.
    """

    def __init__(self, detail: str = "no space left on device"):
        super().__init__(errno.ENOSPC, detail)


class DiskWriteError(OSError):
    """A write or fsync failed in a way retrying did not fix (torn
    write, fsync EIO).  Unlike :class:`DiskFullError` this is not
    gracefully degradable: the store cannot promise durability past it."""

    def __init__(self, detail: str = "I/O error"):
        super().__init__(errno.EIO, detail)


def is_disk_full(exc: BaseException) -> bool:
    """True for any disk-full condition, injected or from the OS."""
    return isinstance(exc, OSError) and exc.errno == errno.ENOSPC


def _path_key(path: str) -> str:
    """The RNG-stream key of a path: its basename, so runs in different
    scratch directories draw identical fault sequences."""
    return os.path.basename(path.rstrip(os.sep)) or path


class DiskFaultInjector:
    """Injects seeded storage faults at explicit write/fsync/read seams.

    Durable writers (:mod:`repro.store`, :func:`repro.util.fileio
    .atomic_write`) route their file operations through an optional
    injector; ``None`` (the default everywhere) means the plain
    filesystem.  The injector is deliberately *not* a global — callers
    own their wiring, the same way telemetry is threaded.
    """

    def __init__(self, profile: FaultProfile, seed: int,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.profile = profile
        self._seed = seed
        self._streams: Dict[str, RngTree] = {}
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_faults = self.telemetry.metrics.counter(
            "disk_faults_injected_total",
            "injected storage faults, by operation and kind",
            labels=("op", "kind"),
        )
        #: Injected-fault tally by kind (tests and reporting).
        self.counts: Dict[str, int] = {}
        #: Record-payload bytes successfully written (the ENOSPC budget).
        self.data_bytes_written = 0

    @property
    def active(self) -> bool:
        return self.profile.disk_active

    # -- seams -------------------------------------------------------------

    def write(self, handle, path: str, text: str,
              data: bool = False) -> None:
        """Write ``text`` to ``handle``, possibly failing like a disk.

        ``data=True`` marks record-payload writes, the only ones charged
        against ``disk_enospc_after_bytes`` — metadata (footers,
        manifests) models the reserved blocks real filesystems keep.
        May write a prefix and raise (torn write): the caller owns
        truncate-and-retry recovery.
        """
        if not self.active:
            handle.write(text)
            return
        rates = self.profile.rates
        nbytes = len(text.encode("utf-8"))
        budget = rates.disk_enospc_after_bytes
        if data and budget is not None and \
                self.data_bytes_written + nbytes > budget:
            self._note("write", "enospc", path)
            raise DiskFullError(
                f"injected disk full: {self.data_bytes_written + nbytes} "
                f"> {budget} byte budget"
            )
        stream = self._stream("write", path)
        roll = stream.random()
        if roll < rates.disk_enospc:
            self._note("write", "enospc", path)
            raise DiskFullError("injected disk full")
        if roll < rates.disk_enospc + rates.disk_torn_write:
            cut = max(1, int(len(text) * stream.uniform(0.1, 0.9)))
            handle.write(text[:cut])
            self._note("write", "torn_write", path)
            raise DiskWriteError(
                f"injected torn write: {cut}/{len(text)} chars landed"
            )
        handle.write(text)
        if data:
            self.data_bytes_written += nbytes

    def fsync(self, path: str, fileno: int) -> None:
        """``os.fsync``, possibly raising EIO like a lying disk."""
        if self.active:
            stream = self._stream("fsync", path)
            if stream.random() < self.profile.rates.disk_fsync_fail:
                self._note("fsync", "fsync_fail", path)
                raise DiskWriteError("injected fsync failure")
        os.fsync(fileno)

    def filter_read(self, path: str, payload: bytes) -> bytes:
        """Pass a read payload through, possibly flipping one bit."""
        if not self.active or not payload:
            return payload
        stream = self._stream("read", path)
        if stream.random() < self.profile.rates.disk_bit_flip:
            position = stream.randint(0, len(payload) - 1)
            bit = 1 << stream.randint(0, 7)
            self._note("read", "bit_flip", path)
            return (payload[:position]
                    + bytes([payload[position] ^ bit])
                    + payload[position + 1:])
        return payload

    # -- internals ---------------------------------------------------------

    def _stream(self, op: str, path: str) -> RngTree:
        key = f"{op}:{_path_key(path)}"
        stream = self._streams.get(key)
        if stream is None:
            stream = RngTree(self._seed, name="disk").child(op).child(
                _path_key(path)
            )
            self._streams[key] = stream
        return stream

    def _note(self, op: str, kind: str, path: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._m_faults.inc(op=op, kind=kind)
        self.telemetry.events.emit(
            f"fault.disk_{kind}", level="info", op=op,
            path=_path_key(path),
        )


__all__ = [
    "DiskFaultInjector",
    "DiskFullError",
    "DiskWriteError",
    "is_disk_full",
]
