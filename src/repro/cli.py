"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Execute the full study (crawl, profile collection, underground) and
    persist the dataset plus run metadata to a directory.
``report``
    Load a saved run and render every paper table/figure.
``tables``
    One-shot: run a study and print the report without saving.
``channels``
    Print the Table-9 trading-channel inventory and triage.
``trace``
    Summarize a telemetry directory (``--telemetry-out``): per-stage
    sim/wall durations, events by kind, per-marketplace crawl errors.
    ``--json`` emits the same summary as a stable, schema-versioned
    JSON document (the path scripts and the run registry share).
``diff``
    Compare two telemetry directories and exit nonzero on regressions
    (scorecard drops, new error kinds, coverage losses, sim slowdowns).
``health``
    Render a telemetry directory as a single-file HTML dashboard;
    ``--strict`` fails the command when the run looks unhealthy
    (including a ``profile.json`` that misses analysis stages).
``bench``
    Run the scale-0.02 throughput study N times and write the
    ``BENCH_pipeline.json`` perf baseline; ``--compare BASELINE``
    classifies drift per metric and exits 1 on regression, 2 on a
    corrupt or schema-mismatched baseline.
``replay``
    Re-run extraction + analysis offline from a sealed crawl archive
    (``run --archive-dir``); the outputs are byte-identical to the live
    run's.
``archive verify``
    Re-hash every index and blob in an archive; exit 2 on corruption.
``data verify|stats``
    Inspect the crash-safe segmented dataset store (``run --store-dir``):
    ``verify`` re-hashes every sealed segment against its footer and the
    manifest and exits 2 on any mismatch; ``stats`` prints record
    counts, segment totals, and degradation markers.
``archive diff``
    Per-marketplace offer-page churn between two archived iterations.
``runs ingest|list|show|trends|alerts``
    The cross-run registry: fold completed telemetry directories into an
    append-only SQLite store (idempotent per run), list them, render
    per-metric trend series with median/MAD baselines (``--html`` writes
    the fleet dashboard), and evaluate the deterministic anomaly rules —
    ``alerts`` exits 1 when any rule fires, writing ``alerts.json`` with
    ``--out``.
``serve build|query|bench``
    The serving layer: ``build`` ingests one or more run directories
    (flat or segmented-store layout) into a read-optimized SQLite
    catalog with a deterministic ``catalog.json`` manifest (idempotent:
    unchanged sources are a no-op); ``query`` issues one HTTP request
    against the catalog API and prints the JSON body (exit 1 on an HTTP
    error status, 2 on a missing/corrupt catalog); ``bench`` drives
    thousands of seeded simulated clients through the API and reports
    p50/p95 latency plus the content-hash cache hit rate, writing
    ``BENCH_serve.json`` with ``--out``.
``monitor run|status``
    The supervised continuous-measurement daemon: run the full pipeline
    every ``--interval`` simulated seconds for ``--cycles`` cycles (or
    ``--forever``), recording every cycle in a crash-safe schedule
    ledger, ingesting each success into the state dir's run registry,
    evaluating alerts, and bounding disk with ``--keep-runs`` /
    ``--max-bytes``.  Exit codes: 0 done, 2 unusable state dir, 4 too
    many consecutive cycle failures, 130 stopped by signal.  ``status``
    renders the state dir's ledger/lock/registry/alerts view.

Telemetry-reading commands (``trace``/``diff``/``health``) exit with
code 2 when a directory is missing, empty, or corrupt; so do ``replay``
and ``archive`` when the archive is missing, unsealed, or corrupt.
``run`` itself traps SIGTERM/SIGINT: the partial dataset state is left
on disk with a ``"partial": "interrupted"`` marker in its meta file and
the exit code is 130.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import List, Optional

from repro.analysis import MarketplaceAnatomy
from repro.archive import (
    ArchiveError,
    ArchiveReader,
    ReplayError,
    diff_iterations,
    run_replay,
)
from repro.analysis.figures import fig3_outlier, fig5_descriptions, listing_dynamics
from repro.analysis.suite import STAGE_NAMES, AnalysisResults, run_analysis_suite
from repro.contracts import (
    ContractViolationError,
    QuarantineStore,
    StageSupervisor,
)
from repro.core import MeasurementDataset, Study, StudyConfig
from repro.core import reports
from repro.faults import PROFILES
from repro.faults.disk import DiskWriteError
from repro.marketplaces.channels import CHANNELS
from repro.obs import (
    BENCH_FILENAME,
    NULL_TELEMETRY,
    AlertConfig,
    BenchError,
    DiffConfig,
    RegistryError,
    RunDir,
    RunRegistry,
    Telemetry,
    TelemetryDirError,
    build_manifest,
    compare_bench,
    compute_trends,
    configure_logging,
    diff_runs,
    evaluate_alerts,
    health_problems,
    load_baseline,
    render_fleet_html,
    render_health_html,
    render_trace_summary,
    render_trends_text,
    run_bench,
    trace_document,
    trends_document,
    write_alerts,
    write_bench,
    write_manifest,
    write_scorecard,
)
from repro.monitor import (
    MonitorConfig,
    MonitorDaemon,
    MonitorError,
    render_status,
)
from repro.obs.report_html import REPORT_FILENAME
from repro.serve import (
    CATALOG_HOST,
    Catalog,
    CatalogError,
    build_catalog,
    build_catalog_site,
    render_serve_bench,
    run_serve_bench,
    write_serve_bench,
)
from repro.store import (
    StoreError,
    StoreReader,
    is_store_dir,
    load_dataset,
    save_dataset,
)
from repro.util.fileio import atomic_write_json
from repro.util.simtime import SimClock
from repro.web.http import Request
from repro.web.server import Internet

META_FILENAME = "study_meta.json"


class _RunInterrupted(Exception):
    """SIGTERM/SIGINT arrived mid-study (``repro run``)."""

    def __init__(self, signum: int):
        super().__init__(f"signal {signum}")
        self.signum = signum


def _study_config(args: argparse.Namespace) -> StudyConfig:
    return StudyConfig(
        seed=args.seed,
        scale=args.scale,
        iterations=args.iterations,
        include_underground=not args.no_underground,
        telemetry_enabled=bool(getattr(args, "telemetry_out", None)),
        profile_enabled=bool(getattr(args, "profile", False)),
        chaos_profile=getattr(args, "chaos", "off") or "off",
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        resume=bool(getattr(args, "resume", False)),
        strict_contracts=bool(getattr(args, "strict_contracts", False)),
        fail_stages=tuple(getattr(args, "fail_stage", None) or ()),
        archive_dir=getattr(args, "archive_dir", None),
    )


def _telemetry_for(args: argparse.Namespace) -> Telemetry:
    """An enabled Telemetry when ``--telemetry-out`` was given, else no-op."""
    configure_logging(getattr(args, "log_level", "warning"))
    if getattr(args, "telemetry_out", None):
        return Telemetry()
    return NULL_TELEMETRY


def _export_telemetry(args: argparse.Namespace, config: StudyConfig,
                      result, telemetry: Telemetry) -> None:
    """Write metrics/trace/events plus the run manifest to the out dir."""
    out_dir = getattr(args, "telemetry_out", None)
    if not out_dir or not telemetry.enabled:
        return
    telemetry.export(out_dir)
    if getattr(result, "scorecard", None) is not None:
        write_scorecard(out_dir, result.scorecard)
    if getattr(result, "quarantine", None) is not None:
        result.quarantine.write_jsonl(out_dir)
    manifest = build_manifest(config, result, telemetry, command=sys.argv[1:])
    write_manifest(out_dir, manifest)
    print(f"telemetry written to {out_dir}", file=sys.stderr)


def _degraded_line(analyses: AnalysisResults, stage: str, section: str) -> str:
    failure = next((f for f in analyses.failures if f.stage == stage), None)
    detail = f" ({failure.kind}: {failure.detail})" if failure else ""
    return f"[degraded] {section}: stage '{stage}' failed{detail}"


def _render_all(dataset: MeasurementDataset, scale: float,
                meta: Optional[dict] = None, out=None,
                telemetry: Optional[Telemetry] = None,
                analyses: Optional[AnalysisResults] = None,
                strict: bool = False,
                fail_stages=()) -> None:
    """Render every table and figure the analyses support.

    Stages run under a :class:`StageSupervisor` (unless precomputed
    ``analyses`` are passed in, e.g. from a telemetry-enabled study run):
    a failed stage renders a one-line ``[degraded]`` marker in place of
    its tables instead of killing the report.
    """
    stream = out if out is not None else sys.stdout

    def write(text: str) -> None:
        print(text + "\n", file=stream)

    if analyses is None:
        supervisor = StageSupervisor(
            telemetry if telemetry is not None and telemetry.enabled else None,
            strict=strict,
            fail_stages=tuple(fail_stages),
        )
        analyses = run_analysis_suite(dataset, supervisor, telemetry=telemetry)

    write(reports.render_table9(CHANNELS))
    anatomy = analyses.report("anatomy")
    if anatomy is not None:
        write(reports.render_table1(anatomy, scale))
        write(reports.render_table2(anatomy, scale))
    else:
        write(_degraded_line(analyses, "anatomy",
                             "section 4.1 (tables 1-2, anatomy extras)"))
    if meta and meta.get("payment_methods"):
        matrix = MarketplaceAnatomy.payment_matrix(
            {m: [tuple(p) for p in pairs] for m, pairs in meta["payment_methods"].items()}
        )
        write(reports.render_table3(matrix))
    if anatomy is not None:
        write(reports.render_anatomy_extras(anatomy, scale))
    setup = analyses.report("account_setup")
    if setup is not None:
        write(reports.render_table4(setup))
        write(reports.render_fig4(setup))
    else:
        write(_degraded_line(analyses, "account_setup",
                             "section 5 (table 4, figure 4)"))
    scam = analyses.report("scam_posts")
    if scam is not None:
        write(reports.render_table5(scam, scale))
        write(reports.render_table6(scam, scale))
    else:
        write(_degraded_line(analyses, "scam_posts",
                             "section 6 (tables 5-6)"))
    network = analyses.report("network")
    if network is not None:
        write(reports.render_table7(network, scale))
        write(reports.render_fig5(fig5_descriptions(network)))
    else:
        write(_degraded_line(analyses, "network",
                             "section 7 (table 7, figure 5)"))
    efficacy = analyses.report("efficacy")
    if efficacy is not None:
        write(reports.render_table8(efficacy))
    else:
        write(_degraded_line(analyses, "efficacy", "section 8 (table 8)"))
    underground = analyses.report("underground")
    if underground is not None:
        write(reports.render_underground(underground))
    else:
        write(_degraded_line(analyses, "underground",
                             "section 4.2 (underground forums)"))
    if meta and meta.get("active_per_iteration"):
        dynamics = listing_dynamics(
            meta["active_per_iteration"], meta["cumulative_per_iteration"]
        )
        write(reports.render_fig2(dynamics))
    write(reports.render_fig3(fig3_outlier(dataset)))


def _check_profile_args(args: argparse.Namespace) -> Optional[str]:
    """``--profile`` writes profile.json into the telemetry dir, so it
    needs one; returns the error line (exit 2) when it is missing."""
    if getattr(args, "profile", False) and \
            not getattr(args, "telemetry_out", None):
        return "--profile requires --telemetry-out (profile.json is " \
               "written into the telemetry directory)"
    return None


def cmd_run(args: argparse.Namespace) -> int:
    problem = _check_profile_args(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    config = _study_config(args)
    telemetry = _telemetry_for(args)

    # A graceful SIGTERM/SIGINT mid-study must not leave a half-written
    # output dir that looks complete: the handler raises, we mark the
    # meta file ``"partial": "interrupted"`` and exit 130.  The crawl
    # checkpoint (--checkpoint-dir) is already flushed after every
    # iteration, so --resume continues from the last durable boundary.
    def _raise_interrupt(signum, _frame):
        raise _RunInterrupted(signum)

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(
                signum, _raise_interrupt
            )
        except ValueError:
            # Not the main thread (embedded use); run unprotected.
            break
    try:
        result = Study(config, telemetry=telemetry).run()
    except ContractViolationError as exc:
        print(f"strict contracts: {exc}", file=sys.stderr)
        return 3
    except _RunInterrupted as exc:
        os.makedirs(args.out, exist_ok=True)
        atomic_write_json(os.path.join(args.out, META_FILENAME), {
            "seed": args.seed,
            "scale": args.scale,
            "iterations": args.iterations,
            "partial": "interrupted",
            "signal": exc.signum,
        })
        print(
            f"interrupted by signal {exc.signum}: partial run marked in "
            f"{args.out}/{META_FILENAME}"
            + (
                "; resume with --resume"
                if getattr(args, "checkpoint_dir", None) else ""
            ),
            file=sys.stderr,
        )
        return 130
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    os.makedirs(args.out, exist_ok=True)
    result.dataset.save(args.out)
    if result.quarantine is not None:
        result.quarantine.write_jsonl(args.out)
    meta = {
        "seed": args.seed,
        "scale": args.scale,
        "iterations": args.iterations,
        "active_per_iteration": result.active_per_iteration,
        "cumulative_per_iteration": result.cumulative_per_iteration,
        "payment_methods": {
            market: [list(pair) for pair in pairs]
            for market, pairs in result.payment_methods.items()
        },
        "simulated_seconds": result.simulated_seconds,
    }
    store_report = None
    if getattr(args, "store_dir", None):
        # The segmented durable store.  The study's disk-fault injector
        # (if chaos is on) carries over, so an ENOSPC byte budget spans
        # checkpoints and this save — one disk, one budget.  A full disk
        # is graceful degradation: the flushed prefix is sealed, the
        # run is marked partial, and the exit stays 0 — losing tail
        # records beats losing the run.
        try:
            store_report = save_dataset(
                result.dataset, args.store_dir,
                faults=result.disk_faults, telemetry=telemetry,
            )
        except StoreError as exc:
            # e.g. the directory already holds a previous run's store;
            # appending to it would cross-contaminate the two runs.
            print(f"store save refused: {exc}", file=sys.stderr)
            atomic_write_json(os.path.join(args.out, META_FILENAME),
                              dict(meta, partial="store_refused"))
            return 1
        except DiskWriteError as exc:
            print(f"store save failed: {exc}", file=sys.stderr)
            atomic_write_json(os.path.join(args.out, META_FILENAME),
                              dict(meta, partial="disk_error"))
            return 1
        if store_report.partial:
            meta["partial"] = store_report.partial
            dropped = sum(store_report.dropped.values())
            print(
                f"disk full while saving the store: flushed "
                f"{store_report.counts}, dropped {dropped} record(s); "
                f"run marked partial:{store_report.partial}",
                file=sys.stderr,
            )
    atomic_write_json(os.path.join(args.out, META_FILENAME), meta)
    if store_report is not None:
        # Mirror the meta beside the manifest so the store dir is a
        # self-describing run artifact: report/figures take the
        # payment-methods and per-iteration series from meta, not from
        # the record streams.
        atomic_write_json(
            os.path.join(args.store_dir, META_FILENAME), meta
        )
    _export_telemetry(args, config, result, telemetry)
    print(f"saved run to {args.out}: {result.dataset.summary()}")
    if store_report is not None:
        print(f"store written to {args.store_dir}: {store_report.counts}")
    return 0


def _load_run_dataset(run_dir: str,
                      quarantine: Optional[QuarantineStore] = None
                      ) -> MeasurementDataset:
    """Load a saved run from either layout: a segmented store
    (``run --store-dir``) or flat per-type JSONL files."""
    if is_store_dir(run_dir):
        return load_dataset(run_dir, quarantine=quarantine)
    return MeasurementDataset.load(run_dir, quarantine=quarantine)


def cmd_report(args: argparse.Namespace) -> int:
    # Tolerant load: corrupt JSONL lines (e.g. a truncated final line
    # after a SIGKILL) are quarantined and reported, not fatal.
    store = QuarantineStore()
    dataset = _load_run_dataset(args.run_dir, quarantine=store)
    if store.total:
        print(
            f"warning: skipped {store.total} corrupt dataset line(s): "
            + ", ".join(f"{k}={v}" for k, v in store.counts_by_rule().items()),
            file=sys.stderr,
        )
    meta_path = os.path.join(args.run_dir, META_FILENAME)
    meta = None
    if os.path.exists(meta_path):
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    scale = args.scale if args.scale is not None else (meta or {}).get("scale", 1.0)
    if not dataset.listings:
        print(f"no dataset found in {args.run_dir}", file=sys.stderr)
        return 1
    _render_all(dataset, scale, meta)
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    problem = _check_profile_args(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    config = _study_config(args)
    telemetry = _telemetry_for(args)
    try:
        result = Study(config, telemetry=telemetry).run()
    except ContractViolationError as exc:
        print(f"strict contracts: {exc}", file=sys.stderr)
        return 3
    meta = {
        "active_per_iteration": result.active_per_iteration,
        "cumulative_per_iteration": result.cumulative_per_iteration,
        "payment_methods": {
            market: [list(pair) for pair in pairs]
            for market, pairs in result.payment_methods.items()
        },
    }
    try:
        # Reuse the supervised suite the study already ran (telemetry
        # path); otherwise run it here under a fresh supervisor.
        _render_all(
            result.dataset, args.scale, meta, telemetry=telemetry,
            analyses=result.analyses,
            strict=config.strict_contracts,
            fail_stages=config.fail_stages,
        )
    except ContractViolationError as exc:
        print(f"strict contracts: {exc}", file=sys.stderr)
        return 3
    _export_telemetry(args, config, result, telemetry)
    return 0


def cmd_channels(_args: argparse.Namespace) -> int:
    print(reports.render_table9(CHANNELS))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    try:
        run = RunDir.load(args.run_dir)
    except TelemetryDirError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if getattr(args, "json", False):
        print(json.dumps(trace_document(run), indent=2, sort_keys=True))
    else:
        print(render_trace_summary(run))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    try:
        run_a = RunDir.load(args.run_a)
        run_b = RunDir.load(args.run_b)
    except TelemetryDirError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    config = DiffConfig(
        scorecard_tolerance=args.scorecard_tolerance,
        sim_duration_tolerance=args.sim_tolerance,
        include_wall=args.wall,
    )
    diff = diff_runs(run_a, run_b, config)
    print(diff.render_text())
    return 1 if diff.has_regressions else 0


def cmd_health(args: argparse.Namespace) -> int:
    try:
        run = RunDir.load(args.run_dir)
    except TelemetryDirError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    out_path = args.out or os.path.join(args.run_dir, REPORT_FILENAME)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(render_health_html(run))
    problems = health_problems(run)
    print(f"wrote {out_path} ({'healthy' if not problems else 'UNHEALTHY'})")
    for problem in problems:
        print(f"  - {problem}", file=sys.stderr)
    if args.strict and problems:
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    configure_logging(getattr(args, "log_level", "warning"))
    bench = run_bench(
        rounds=args.rounds,
        scale=args.scale,
        iterations=args.iterations,
        seed=args.seed,
        profile_out=args.profile_out,
        progress=lambda line: print(line, file=sys.stderr),
    )
    if args.compare:
        try:
            baseline = load_baseline(args.compare)
            comparison = compare_bench(
                baseline, bench,
                tolerance=args.tolerance, baseline_path=args.compare,
            )
        except BenchError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(comparison.render_text())
        if args.out:
            print(f"wrote {write_bench(args.out, bench)}")
        return 1 if comparison.regressed else 0
    out = args.out or BENCH_FILENAME
    print(f"wrote {write_bench(out, bench)}")
    totals = bench["totals"]
    print(
        f"  wall median {totals['wall_seconds']['median']:.2f}s, "
        f"{totals['pages_per_second_median']:,.0f} pages/s, "
        f"{totals['records_per_second_median']:,.0f} records/s"
    )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.core.export import export_figures

    dataset = _load_run_dataset(args.run_dir)
    if not dataset.listings:
        print(f"no dataset found in {args.run_dir}", file=sys.stderr)
        return 1
    meta_path = os.path.join(args.run_dir, META_FILENAME)
    meta = {}
    if os.path.exists(meta_path):
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    written = export_figures(
        dataset,
        args.out,
        active_per_iteration=meta.get("active_per_iteration"),
        cumulative_per_iteration=meta.get("cumulative_per_iteration"),
    )
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    telemetry = _telemetry_for(args)
    try:
        result = run_replay(args.archive_dir, telemetry=telemetry)
    except (ArchiveError, ReplayError) as exc:
        print(f"replay failed: {exc}", file=sys.stderr)
        return 2
    os.makedirs(args.out, exist_ok=True)
    result.dataset.save(args.out)
    if result.quarantine is not None:
        result.quarantine.write_jsonl(args.out)
    # The meta file mirrors cmd_run's byte for byte: same keys, same
    # values, sourced from the archive manifest instead of the CLI args.
    archive_config = ArchiveReader.open(args.archive_dir).config
    meta = {
        "seed": archive_config["seed"],
        "scale": archive_config["scale"],
        "iterations": archive_config["iterations"],
        "active_per_iteration": result.active_per_iteration,
        "cumulative_per_iteration": result.cumulative_per_iteration,
        "payment_methods": {
            market: [list(pair) for pair in pairs]
            for market, pairs in result.payment_methods.items()
        },
        "simulated_seconds": result.simulated_seconds,
    }
    atomic_write_json(os.path.join(args.out, META_FILENAME), meta)
    if result.scorecard is not None:
        write_scorecard(args.out, result.scorecard)
    config = StudyConfig(
        seed=archive_config["seed"],
        scale=archive_config["scale"],
        iterations=archive_config["iterations"],
        include_underground=archive_config["include_underground"],
        telemetry_enabled=telemetry.enabled,
        archive_dir=args.archive_dir,
    )
    _export_telemetry(args, config, result, telemetry)
    print(f"replayed {args.archive_dir} into {args.out}: "
          f"{result.dataset.summary()}")
    return 0


def cmd_archive_verify(args: argparse.Namespace) -> int:
    try:
        reader = ArchiveReader.open(args.archive_dir)
        problems = reader.verify()
    except ArchiveError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(
            f"archive {args.archive_dir} is CORRUPT: "
            f"{len(problems)} problem(s)",
            file=sys.stderr,
        )
        return 2
    manifest = reader.manifest
    print(
        f"archive {args.archive_dir} verified: "
        f"{manifest['exchanges_total']} exchanges, "
        f"{manifest['blobs_total']} blobs, "
        f"{manifest['bytes_total']:,} bytes intact"
    )
    return 0


def cmd_archive_diff(args: argparse.Namespace) -> int:
    try:
        reader = ArchiveReader.open(args.archive_dir)
        diff = diff_iterations(reader, args.left, args.right)
    except ArchiveError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(diff.render_text())
    return 0


def cmd_runs_ingest(args: argparse.Namespace) -> int:
    if args.run_id and len(args.run_dirs) > 1:
        print("--run-id only applies to a single run directory",
              file=sys.stderr)
        return 2
    try:
        with RunRegistry.open(args.registry) as registry:
            for run_dir in args.run_dirs:
                result = registry.ingest(run_dir, run_id=args.run_id)
                if result.inserted:
                    print(
                        f"ingested {run_dir} as {result.run_id} "
                        f"(seq {result.seq}, config {result.config_hash}, "
                        f"{result.n_metrics} metrics)"
                    )
                else:
                    print(
                        f"skipped {run_dir}: already ingested as "
                        f"{result.run_id} (seq {result.seq})"
                    )
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def cmd_runs_list(args: argparse.Namespace) -> int:
    try:
        with RunRegistry.open_existing(args.registry) as registry:
            rows = registry.runs(last_n=args.last)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not rows:
        print("no runs registered")
        return 0
    # Sorted by run id (content-derived), not ingestion seq, and without
    # the wall-clock ingestion stamp: two state dirs holding the same
    # runs list byte-identically no matter when they were ingested.
    for run in sorted(rows, key=lambda run: run.run_id):
        scorecard = (
            "-" if run.scorecard_passed is None
            else "PASS" if run.scorecard_passed else "FAIL"
        )
        print(
            f"{run.seq:>4}  {run.run_id}  seed={run.seed}  "
            f"config={run.config_hash}  chaos={run.chaos or 'off'}  "
            f"scorecard={scorecard}"
        )
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    try:
        with RunRegistry.open_existing(args.registry) as registry:
            run = registry.run(args.run_id)
            document = registry.document(args.run_id)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if run is None or document is None:
        print(f"no run {args.run_id} in {args.registry}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    for key, value in run.to_dict().items():
        print(f"{key}: {value}")
    return 0


def cmd_runs_trends(args: argparse.Namespace) -> int:
    try:
        with RunRegistry.open_existing(args.registry) as registry:
            series_list = compute_trends(
                registry, names=args.metric or None, last_n=args.last,
            )
            runs = registry.runs(last_n=args.last)
            report = evaluate_alerts(registry, AlertConfig(last_n=args.last))
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_fleet_html(
                runs, series_list, report, registry_path=args.registry,
            ))
        print(f"wrote {args.html}")
        return 0
    if args.json:
        print(json.dumps(trends_document(series_list, runs),
                         indent=2, sort_keys=True))
        return 0
    print(render_trends_text(series_list))
    return 0


def cmd_runs_alerts(args: argparse.Namespace) -> int:
    config = AlertConfig(
        k_mad=args.k_mad,
        fidelity_tolerance=args.fidelity_tolerance,
        include_wall=args.wall,
        last_n=args.last,
    )
    try:
        with RunRegistry.open_existing(args.registry) as registry:
            report = evaluate_alerts(registry, config)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.render_text())
    if args.out:
        print(f"wrote {write_alerts(args.out, report)}", file=sys.stderr)
    return 1 if report.fired else 0


def cmd_data_verify(args: argparse.Namespace) -> int:
    if not is_store_dir(args.store_dir):
        print(f"{args.store_dir} is not a segmented dataset store",
              file=sys.stderr)
        return 2
    try:
        reader = StoreReader.open(args.store_dir)
        problems = reader.verify()
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(
            f"store {args.store_dir} is CORRUPT: "
            f"{len(problems)} problem(s)",
            file=sys.stderr,
        )
        return 2
    counts = reader.counts()
    total = sum(counts.values())
    segments = len(reader.manifest.get("segments", [])) \
        if reader.manifest else 0
    line = (
        f"store {args.store_dir} verified: {total} record(s) across "
        f"{segments} sealed segment(s)"
    )
    if reader.recovered_tails:
        line += f", {reader.recovered_tails} torn tail(s) recovered"
    if reader.partial:
        line += f" [partial:{reader.partial}]"
    print(line)
    return 0


def cmd_data_stats(args: argparse.Namespace) -> int:
    if not is_store_dir(args.store_dir):
        print(f"{args.store_dir} is not a segmented dataset store",
              file=sys.stderr)
        return 2
    try:
        reader = StoreReader.open(args.store_dir)
        counts = reader.counts()
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    manifest = reader.manifest or {}
    sealed = manifest.get("segments", [])
    print(f"store: {args.store_dir}")
    print(f"sealed: {manifest.get('sealed', False)}"
          + (f"  partial: {manifest['partial']}"
             if manifest.get("partial") else ""))
    print(f"segments: {len(sealed)} sealed, "
          f"{sum(e['bytes'] for e in sealed):,} record bytes")
    # Explicitly sorted by record type: the stats for twin store dirs
    # must be byte-identical regardless of dict/manifest ordering.
    for record_type, count in sorted(counts.items()):
        print(f"  {record_type}: {count} record(s)")
    if reader.recovered_tails:
        print(f"recovered tails: {reader.recovered_tails}")
    if reader.quarantined_segments:
        print(f"quarantined segments: {reader.quarantined_segments}")
    return 0


def cmd_serve_build(args: argparse.Namespace) -> int:
    try:
        result = build_catalog(args.run_dirs, args.out)
    except (CatalogError, StoreError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    tables = ", ".join(
        f"{name}={count}" for name, count in sorted(result.tables.items())
    )
    verb = "built" if result.rebuilt else "up to date"
    print(f"catalog {result.directory} {verb}: "
          f"digest {result.content_digest[:16]} ({tables})")
    return 0


def cmd_serve_query(args: argparse.Namespace) -> int:
    try:
        catalog = Catalog.open(args.catalog_dir)
    except CatalogError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        clock = SimClock()
        internet = Internet(clock=clock)
        site, _api = build_catalog_site(catalog, clock=clock)
        internet.register(site)
        path = args.path if args.path.startswith("/") else "/" + args.path
        response = internet.fetch(
            Request(method="GET", url=f"http://{CATALOG_HOST}{path}"),
            client_id="cli",
        )
    finally:
        catalog.close()
    try:
        body = json.dumps(json.loads(response.body), indent=2,
                          sort_keys=True)
    except ValueError:
        body = response.body
    if response.status != 200:
        print(f"HTTP {response.status}", file=sys.stderr)
        print(body, file=sys.stderr)
        return 1
    print(body)
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    try:
        document = run_serve_bench(
            args.catalog_dir,
            clients=args.clients,
            requests_per_client=args.requests,
            distinct_queries=args.queries,
            seed=args.seed,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except CatalogError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_serve_bench(document))
    if args.out:
        print(f"wrote {write_serve_bench(args.out, document)}")
    return 0


def cmd_monitor_run(args: argparse.Namespace) -> int:
    configure_logging(getattr(args, "log_level", "warning"))
    if not args.forever and args.cycles is None:
        print("monitor run needs --cycles N or --forever", file=sys.stderr)
        return 2
    config = MonitorConfig(
        state_dir=args.state_dir,
        cycles=None if args.forever else args.cycles,
        interval_seconds=args.interval,
        seed=args.seed,
        scale=args.scale,
        iterations=args.iterations,
        include_underground=not args.no_underground,
        chaos_profile=args.chaos,
        catch_up=args.catch_up,
        keep_runs=args.keep_runs,
        max_bytes=args.max_bytes,
        max_attempts=args.max_attempts,
        backoff_seconds=args.backoff,
        max_consecutive_failures=args.max_failures,
        degraded_policy=args.degraded,
        fail_stages=tuple(
            args.fail_stage or (("anatomy",) if args.fail_cycle else ())
        ),
        fail_cycles=tuple(args.fail_cycle or ()),
        scheduler="wall" if args.wall_clock else "sim",
    )
    daemon = MonitorDaemon(
        config, printer=lambda line: print(line, file=sys.stderr)
    )
    return daemon.run(install_signals=True)


def cmd_monitor_status(args: argparse.Namespace) -> int:
    try:
        print(render_status(args.state_dir))
    except MonitorError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _add_study_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.05,
                        help="world scale; 1.0 = the paper's 38K listings")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--iterations", type=int, default=6,
                        help="collection iterations (Figure 2)")
    parser.add_argument("--no-underground", action="store_true",
                        help="skip the Tor-forum manual collection")
    parser.add_argument("--chaos", default="off",
                        choices=list(PROFILES),
                        help="inject seeded faults at the named intensity: "
                             "off/light/moderate/heavy hit the network "
                             "(outages, 5xx bursts, hangs, 429 storms, "
                             "corrupt pages); disk/disk_full hit storage "
                             "(ENOSPC, torn writes, fsync failure, bit "
                             "flips)")
    parser.add_argument("--log-level", default="warning",
                        choices=["debug", "info", "warning", "error"],
                        help="logging verbosity for the repro logger")
    parser.add_argument("--telemetry-out", default=None, metavar="DIR",
                        help="enable telemetry and write manifest.json, "
                             "metrics.json, trace.jsonl, events.jsonl here")
    parser.add_argument("--profile", action="store_true",
                        help="record a performance profile (per-phase "
                             "wall/sim/memory/throughput) and write "
                             "profile.json into --telemetry-out")
    parser.add_argument("--strict-contracts", action="store_true",
                        help="treat any quarantined record as a hard "
                             "error (exit 3) instead of dead-lettering "
                             "it to quarantine.jsonl")
    parser.add_argument("--fail-stage", action="append", metavar="STAGE",
                        choices=list(STAGE_NAMES),
                        help="deliberately fail the named analysis stage "
                             "(repeatable) to drill degraded reporting; "
                             f"one of: {', '.join(STAGE_NAMES)}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IMC 2025 account-marketplace study",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run a study and save the dataset")
    _add_study_args(run_parser)
    run_parser.add_argument("--out", required=True, help="output directory")
    run_parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                            help="persist crawl state here after every "
                                 "iteration (enables --resume)")
    run_parser.add_argument("--resume", action="store_true",
                            help="resume a killed run from the checkpoint "
                                 "in --checkpoint-dir instead of starting "
                                 "fresh")
    run_parser.add_argument("--archive-dir", default=None, metavar="DIR",
                            help="archive every HTTP exchange into a "
                                 "content-addressed store here; replay "
                                 "later with 'repro replay DIR'")
    run_parser.add_argument("--store-dir", default=None, metavar="DIR",
                            help="also persist the dataset as a crash-safe "
                                 "segmented store here (checksummed "
                                 "segments + sealed manifest; verify with "
                                 "'repro data verify DIR'); must not "
                                 "already hold a store — each run gets a "
                                 "fresh directory")
    run_parser.set_defaults(handler=cmd_run)

    report_parser = commands.add_parser("report", help="render tables from a saved run")
    report_parser.add_argument("run_dir")
    report_parser.add_argument("--scale", type=float, default=None,
                               help="override the scale used for paper comparison")
    report_parser.set_defaults(handler=cmd_report)

    tables_parser = commands.add_parser("tables", help="run a study and print tables")
    _add_study_args(tables_parser)
    tables_parser.set_defaults(handler=cmd_tables)

    channels_parser = commands.add_parser("channels", help="print the Table-9 inventory")
    channels_parser.set_defaults(handler=cmd_channels)

    trace_parser = commands.add_parser(
        "trace", help="summarize a run's telemetry (stages, events, errors)"
    )
    trace_parser.add_argument("run_dir", help="directory written by --telemetry-out")
    trace_parser.add_argument("--json", action="store_true",
                              help="emit the summary as a stable JSON "
                                   "document (repro.trace-summary/v1) "
                                   "instead of text")
    trace_parser.set_defaults(handler=cmd_trace)

    runs_parser = commands.add_parser(
        "runs",
        help="cross-run registry: ingest telemetry dirs, list runs, "
             "trend metrics, evaluate anomaly alerts",
    )
    runs_commands = runs_parser.add_subparsers(dest="runs_command",
                                               required=True)

    def _registry_arg(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--registry", required=True, metavar="PATH",
                         help="the SQLite run-registry file")

    ingest_parser = runs_commands.add_parser(
        "ingest", help="fold completed telemetry directories into the "
                       "registry (idempotent per run)",
    )
    ingest_parser.add_argument("run_dirs", nargs="+", metavar="RUN_DIR",
                               help="directories written by --telemetry-out")
    _registry_arg(ingest_parser)
    ingest_parser.add_argument("--run-id", default=None,
                               help="override the content-derived run id "
                                    "(single directory only)")
    ingest_parser.set_defaults(handler=cmd_runs_ingest)

    list_parser = runs_commands.add_parser(
        "list", help="registered runs in ingestion order"
    )
    _registry_arg(list_parser)
    list_parser.add_argument("--last", type=int, default=None, metavar="N",
                             help="only the last N runs")
    list_parser.set_defaults(handler=cmd_runs_list)

    show_parser = runs_commands.add_parser(
        "show", help="one registered run's row (or full stored document)"
    )
    show_parser.add_argument("run_id")
    _registry_arg(show_parser)
    show_parser.add_argument("--json", action="store_true",
                             help="print the stored trace document")
    show_parser.set_defaults(handler=cmd_runs_show)

    trends_parser = runs_commands.add_parser(
        "trends", help="per-metric trend series with median/MAD baselines"
    )
    _registry_arg(trends_parser)
    trends_parser.add_argument("--metric", action="append", metavar="NAME",
                               help="restrict to this metric (repeatable)")
    trends_parser.add_argument("--last", type=int, default=None, metavar="N",
                               help="trend over only the last N runs")
    trends_parser.add_argument("--json", action="store_true",
                               help="emit repro.trend-series/v1 JSON")
    trends_parser.add_argument("--html", default=None, metavar="PATH",
                               help="write the fleet dashboard HTML here "
                                    "instead of printing the table")
    trends_parser.set_defaults(handler=cmd_runs_trends)

    alerts_parser = runs_commands.add_parser(
        "alerts",
        help="judge the latest run against the fleet baseline; exit 1 "
             "when any deterministic anomaly rule fires",
    )
    _registry_arg(alerts_parser)
    alerts_parser.add_argument("--k-mad", type=float, default=4.0,
                               help="MAD multiplier for baseline-relative "
                                    "rules")
    alerts_parser.add_argument("--fidelity-tolerance", type=float,
                               default=0.02,
                               help="absolute fidelity drop tolerated "
                                    "before alarming")
    alerts_parser.add_argument("--wall", action="store_true",
                               help="also apply the stage-time rule to "
                                    "(machine-noisy) wall clock")
    alerts_parser.add_argument("--last", type=int, default=None, metavar="N",
                               help="baseline over only the last N runs")
    alerts_parser.add_argument("--out", default=None, metavar="PATH",
                               help="also write machine-readable "
                                    "alerts.json here (file or directory)")
    alerts_parser.set_defaults(handler=cmd_runs_alerts)

    data_parser = commands.add_parser(
        "data",
        help="inspect or verify a segmented dataset store "
             "(run --store-dir)",
    )
    data_commands = data_parser.add_subparsers(dest="data_command",
                                               required=True)
    dverify_parser = data_commands.add_parser(
        "verify",
        help="re-hash every sealed segment against its footer and the "
             "manifest; exit 2 on any corruption",
    )
    dverify_parser.add_argument("store_dir")
    dverify_parser.set_defaults(handler=cmd_data_verify)
    dstats_parser = data_commands.add_parser(
        "stats", help="record counts, segments, and degradation markers"
    )
    dstats_parser.add_argument("store_dir")
    dstats_parser.set_defaults(handler=cmd_data_stats)

    serve_parser = commands.add_parser(
        "serve",
        help="the serving layer: build a read-optimized catalog from run "
             "dirs, query its HTTP API, or load-test it",
    )
    serve_commands = serve_parser.add_subparsers(dest="serve_command",
                                                 required=True)
    sbuild_parser = serve_commands.add_parser(
        "build",
        help="ingest run directories (one cycle each, in order) into a "
             "SQLite catalog + deterministic catalog.json manifest; "
             "idempotent when the sources are unchanged",
    )
    sbuild_parser.add_argument("run_dirs", nargs="+", metavar="RUN_DIR",
                               help="saved runs ('run --out' or "
                                    "'run --store-dir' layout)")
    sbuild_parser.add_argument("--out", required=True, metavar="DIR",
                               help="the catalog directory")
    sbuild_parser.set_defaults(handler=cmd_serve_build)
    squery_parser = serve_commands.add_parser(
        "query",
        help="issue one GET against the catalog API and print the JSON "
             "body (exit 1 on HTTP error, 2 on missing/corrupt catalog)",
    )
    squery_parser.add_argument("catalog_dir")
    squery_parser.add_argument(
        "path",
        help="API path with query string, e.g. "
             "'/api/listings?marketplace=m1&limit=5'",
    )
    squery_parser.set_defaults(handler=cmd_serve_query)
    sbench_parser = serve_commands.add_parser(
        "bench",
        help="drive seeded simulated clients through the catalog API; "
             "report p50/p95 latency and cache hit rate",
    )
    sbench_parser.add_argument("catalog_dir")
    sbench_parser.add_argument("--clients", type=int, default=1000,
                               help="simulated client population")
    sbench_parser.add_argument("--requests", type=int, default=5,
                               help="requests per client")
    sbench_parser.add_argument("--queries", type=int, default=200,
                               help="distinct-query pool size (repeated-"
                                    "query workload)")
    sbench_parser.add_argument("--seed", type=int, default=7)
    sbench_parser.add_argument("--out", default=None, metavar="PATH",
                               help="write BENCH_serve.json here "
                                    "(file or directory)")
    sbench_parser.set_defaults(handler=cmd_serve_bench)

    monitor_parser = commands.add_parser(
        "monitor",
        help="supervised continuous measurement: run the pipeline on a "
             "recurring schedule with a crash-safe cycle ledger",
    )
    monitor_commands = monitor_parser.add_subparsers(
        dest="monitor_command", required=True
    )
    mrun_parser = monitor_commands.add_parser(
        "run",
        help="run measurement cycles against a state directory "
             "(exit 0 done, 2 bad state dir, 4 circuit, 130 signal)",
    )
    mrun_parser.add_argument("--state-dir", required=True, metavar="DIR",
                             help="the monitor state directory (ledger, "
                                  "registry, cycle run dirs, lock)")
    mrun_parser.add_argument("--cycles", type=int, default=None, metavar="N",
                             help="total cycles in the campaign")
    mrun_parser.add_argument("--forever", action="store_true",
                             help="run until stopped by a signal")
    mrun_parser.add_argument("--interval", type=float, default=86400.0,
                             metavar="SECONDS",
                             help="simulated seconds between cycle starts "
                                  "(default: daily)")
    mrun_parser.add_argument("--seed", type=int, default=2024,
                             help="series base seed; cycle k runs with "
                                  "seed+k")
    mrun_parser.add_argument("--scale", type=float, default=0.02)
    mrun_parser.add_argument("--iterations", type=int, default=3)
    mrun_parser.add_argument("--no-underground", action="store_true")
    mrun_parser.add_argument("--chaos", default="off",
                             choices=list(PROFILES))
    mrun_parser.add_argument("--catch-up", default="run",
                             choices=["run", "skip"],
                             help="torn/missed cycles on restart: re-run "
                                  "them or record them skipped")
    mrun_parser.add_argument("--keep-runs", type=int, default=None,
                             metavar="N",
                             help="retention: keep at most N ingested run "
                                  "dirs (the registry keeps every row)")
    mrun_parser.add_argument("--max-bytes", type=int, default=None,
                             metavar="B",
                             help="retention: keep at most B bytes of "
                                  "ingested run dirs")
    mrun_parser.add_argument("--max-attempts", type=int, default=2,
                             help="attempts per cycle before it counts "
                                  "as failed")
    mrun_parser.add_argument("--backoff", type=float, default=300.0,
                             metavar="SECONDS",
                             help="simulated backoff before a retry "
                                  "(doubles per further retry)")
    mrun_parser.add_argument("--max-failures", type=int, default=3,
                             metavar="N",
                             help="consecutive failed cycles before the "
                                  "daemon exits 4")
    mrun_parser.add_argument("--degraded", default="fail",
                             choices=["fail", "ingest"],
                             help="a cycle with degraded analysis stages: "
                                  "fail it (default) or ingest it anyway")
    mrun_parser.add_argument("--fail-cycle", action="append", type=int,
                             metavar="K",
                             help="drill: deliberately degrade cycle K "
                                  "(repeatable; see --fail-stage)")
    mrun_parser.add_argument("--fail-stage", action="append", metavar="STAGE",
                             choices=list(STAGE_NAMES),
                             help="analysis stage(s) to fail in "
                                  "--fail-cycle cycles (default: anatomy)")
    mrun_parser.add_argument("--wall-clock", action="store_true",
                             help="really sleep --interval between cycles "
                                  "instead of simulated-time scheduling")
    mrun_parser.add_argument("--log-level", default="warning",
                             choices=["debug", "info", "warning", "error"])
    mrun_parser.set_defaults(handler=cmd_monitor_run)
    mstatus_parser = monitor_commands.add_parser(
        "status", help="render a state dir's ledger/lock/registry/alerts"
    )
    mstatus_parser.add_argument("--state-dir", required=True, metavar="DIR")
    mstatus_parser.set_defaults(handler=cmd_monitor_status)

    diff_parser = commands.add_parser(
        "diff", help="compare two telemetry dirs; exit 1 on regressions"
    )
    diff_parser.add_argument("run_a", help="baseline telemetry directory")
    diff_parser.add_argument("run_b", help="new telemetry directory")
    diff_parser.add_argument("--scorecard-tolerance", type=float, default=0.02,
                             help="allowed drop in a scorecard value")
    diff_parser.add_argument("--sim-tolerance", type=float, default=0.25,
                             help="allowed relative growth in per-stage sim time")
    diff_parser.add_argument("--wall", action="store_true",
                             help="also print (machine-dependent) wall ratios")
    diff_parser.set_defaults(handler=cmd_diff)

    health_parser = commands.add_parser(
        "health", help="render a telemetry dir as an HTML health dashboard"
    )
    health_parser.add_argument("run_dir", help="directory written by --telemetry-out")
    health_parser.add_argument("--out", default=None,
                               help="output HTML path (default: RUN_DIR/health.html)")
    health_parser.add_argument("--strict", action="store_true",
                               help="exit 1 when the scorecard failed or the "
                                    "watchdog found critical issues")
    health_parser.set_defaults(handler=cmd_health)

    bench_parser = commands.add_parser(
        "bench",
        help="run the throughput study N times; write BENCH_pipeline.json "
             "or compare against a committed baseline",
    )
    bench_parser.add_argument("--rounds", type=int, default=None,
                              help="timing rounds (default: "
                                   "REPRO_BENCH_ROUNDS or 5)")
    bench_parser.add_argument("--scale", type=float, default=0.02,
                              help="world scale for the bench study")
    bench_parser.add_argument("--iterations", type=int, default=3)
    bench_parser.add_argument("--seed", type=int, default=99)
    bench_parser.add_argument("--out", default=None, metavar="PATH",
                              help="where to write the bench JSON "
                                   f"(default: {BENCH_FILENAME}; in "
                                   "--compare mode nothing is written "
                                   "unless set, so the baseline survives)")
    bench_parser.add_argument("--compare", default=None, metavar="BASELINE",
                              help="compare against a committed baseline "
                                   "instead of recording one; exits 1 on "
                                   "regression, 2 on a corrupt baseline")
    bench_parser.add_argument("--tolerance", type=float, default=0.25,
                              help="relative drift tolerated before a "
                                   "metric counts as improved/regressed")
    bench_parser.add_argument("--profile-out", default=None, metavar="PATH",
                              help="also export the memory round's full "
                                   "profile.json here")
    bench_parser.add_argument("--log-level", default="warning",
                              choices=["debug", "info", "warning", "error"])
    bench_parser.set_defaults(handler=cmd_bench)

    replay_parser = commands.add_parser(
        "replay",
        help="re-run extraction + analysis offline from a crawl archive",
    )
    replay_parser.add_argument("archive_dir",
                               help="directory written by run --archive-dir")
    replay_parser.add_argument("--out", required=True,
                               help="output directory (same layout as "
                                    "'run --out')")
    replay_parser.add_argument("--telemetry-out", default=None, metavar="DIR",
                               help="record and export replay telemetry here")
    replay_parser.add_argument("--log-level", default="warning",
                               choices=["debug", "info", "warning", "error"])
    replay_parser.set_defaults(handler=cmd_replay)

    archive_parser = commands.add_parser(
        "archive", help="inspect or verify a crawl archive"
    )
    archive_commands = archive_parser.add_subparsers(
        dest="archive_command", required=True
    )
    verify_parser = archive_commands.add_parser(
        "verify",
        help="re-hash every index and blob; exit 2 on any corruption",
    )
    verify_parser.add_argument("archive_dir")
    verify_parser.set_defaults(handler=cmd_archive_verify)
    adiff_parser = archive_commands.add_parser(
        "diff",
        help="per-marketplace offer-page churn between two iterations",
    )
    adiff_parser.add_argument("archive_dir")
    adiff_parser.add_argument("left", type=int,
                              help="baseline iteration index")
    adiff_parser.add_argument("right", type=int,
                              help="comparison iteration index")
    adiff_parser.set_defaults(handler=cmd_archive_diff)

    figures_parser = commands.add_parser(
        "figures", help="export figure series from a saved run as CSV"
    )
    figures_parser.add_argument("run_dir")
    figures_parser.add_argument("--out", required=True, help="output directory for CSVs")
    figures_parser.set_defaults(handler=cmd_figures)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro trace DIR | head`);
        # exit quietly like any Unix tool instead of tracebacking.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
