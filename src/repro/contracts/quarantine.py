"""The dead-letter store for records that fail their contract.

A production data plane never silently drops input: a record the
contract layer cannot repair or degrade is *quarantined* — appended to a
JSONL dead-letter file under the run directory with a machine-readable
``(record_type, rule, reason)`` triple, counted in
``contracts_quarantined_total{record_type,rule}``, and emitted as a
``contract.quarantine`` event.  The same store receives JSONL lines the
dataset loader could not decode (a truncated final line after a SIGKILL)
and, under ``--strict-contracts``, turns any quarantine into a
:class:`ContractViolationError` so CI can prove a clean pipeline stays
clean.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

QUARANTINE_FILENAME = "quarantine.jsonl"

#: ``source`` values: where in the pipeline the record was rejected.
SOURCE_VALIDATION = "validation"  # record-contract layer
SOURCE_JSONL_LOAD = "jsonl_load"  # dataset loader (undecodable line)


class ContractViolationError(RuntimeError):
    """A record violated its contract while ``--strict-contracts`` is on.

    The message is a single printable line naming the record type, the
    rule, and the reason.
    """


@dataclass
class QuarantinedRecord:
    """One dead-lettered record with its machine-readable reason."""

    record_type: str
    rule: str
    reason: str
    source: str = SOURCE_VALIDATION
    #: The record's field dict, when it existed as a record at all.
    record: Optional[dict] = None
    #: The raw line, when the payload never decoded into a record.
    raw: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "record_type": self.record_type,
            "rule": self.rule,
            "reason": self.reason,
            "source": self.source,
            "record": self.record,
            "raw": self.raw,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantinedRecord":
        return cls(
            record_type=data["record_type"],
            rule=data["rule"],
            reason=data.get("reason", ""),
            source=data.get("source", SOURCE_VALIDATION),
            record=data.get("record"),
            raw=data.get("raw"),
        )


class QuarantineStore:
    """Append-only collector of quarantined records.

    Holds entries in memory during the run (deterministic order) and
    writes ``quarantine.jsonl`` into the run and/or telemetry directory
    at export time.  With ``strict=True`` the first quarantine raises
    :class:`ContractViolationError` instead.
    """

    def __init__(self, telemetry=None, strict: bool = False) -> None:
        self.strict = strict
        self.entries: List[QuarantinedRecord] = []
        self._telemetry = telemetry
        self._counter = None
        if telemetry is not None:
            self._counter = telemetry.metrics.counter(
                "contracts_quarantined_total",
                "records dead-lettered by the contract layer",
                labels=("record_type", "rule"),
            )

    @property
    def total(self) -> int:
        return len(self.entries)

    def quarantine(
        self,
        record_type: str,
        rule: str,
        reason: str,
        record: Optional[dict] = None,
        raw: Optional[str] = None,
        source: str = SOURCE_VALIDATION,
    ) -> QuarantinedRecord:
        """Dead-letter one record; raises in strict mode."""
        entry = QuarantinedRecord(
            record_type=record_type, rule=rule, reason=reason,
            source=source, record=record, raw=raw,
        )
        if self._counter is not None:
            self._counter.inc(record_type=record_type, rule=rule)
        if self._telemetry is not None:
            self._telemetry.events.emit(
                "contract.quarantine",
                level="error",
                record_type=record_type,
                rule=rule,
                reason=reason,
                source=source,
            )
        if self.strict:
            raise ContractViolationError(
                f"contract violation ({record_type}/{rule}): {reason}"
            )
        self.entries.append(entry)
        return entry

    def counts_by_rule(self) -> Dict[str, int]:
        """``"record_type/rule" -> count``, sorted by key."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            key = f"{entry.record_type}/{entry.rule}"
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        """The manifest section for this store."""
        return {"total": self.total, "by_rule": self.counts_by_rule()}

    # -- persistence -------------------------------------------------------

    def write_jsonl(self, directory: str) -> str:
        """Write ``quarantine.jsonl`` (written even when empty, so
        tooling can rely on its presence in a completed run dir)."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, QUARANTINE_FILENAME)
        with open(path, "w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        return path

    @staticmethod
    def load_jsonl(path: str) -> List[QuarantinedRecord]:
        entries: List[QuarantinedRecord] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(QuarantinedRecord.from_dict(json.loads(line)))
        return entries


__all__ = [
    "ContractViolationError",
    "QUARANTINE_FILENAME",
    "QuarantineStore",
    "QuarantinedRecord",
    "SOURCE_JSONL_LOAD",
    "SOURCE_VALIDATION",
]
