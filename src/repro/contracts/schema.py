"""Record contracts: per-record-type field schemas with dispositions.

Everything downstream of extraction — the nine analysis stages, the NLP
pipeline, the scorecard — assumes records are well-shaped.  This module
is the boundary that makes the assumption true: every record type in
:mod:`repro.core.dataset` gets a contract declaring its field types,
value ranges, well-formedness rules (URL / ISO date), and cross-field
invariants (``first_seen_iteration <= last_seen_iteration``).

Each violation carries one of three dispositions:

* **repair** — deterministic normalization: coerce numeric strings,
  clamp out-of-range counts, strip control characters, truncate
  oversized text.  Counted, not flagged on the record.
* **degrade** — null the offending field and append a
  ``contract:<rule>`` flag to the record's provenance trail, so
  analyses see an honest ``None`` instead of garbage.
* **quarantine** — the record is unusable (identity field missing or
  malformed): it leaves the dataset for the dead-letter store with a
  machine-readable rule.

Validation is a single linear pass and is deterministic: same records
in, same repairs/degrades/quarantines out, byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import math
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.dataset import (
    ListingRecord,
    MeasurementDataset,
    PostRecord,
    ProfileRecord,
    SellerRecord,
    UndergroundRecord,
    add_provenance,
)
from repro.contracts.quarantine import QuarantineStore

#: The three dispositions a violated rule can carry.
REPAIR = "repair"
DEGRADE = "degrade"
QUARANTINE = "quarantine"

#: Control characters stripped from text fields (tab/newline survive:
#: post bodies legitimately contain them).
_CONTROL_RE = re.compile(r"[\x00-\x08\x0b\x0c\x0e-\x1f\x7f]")

#: Hard cap applied to any text field without an explicit ``max_len``;
#: an oversized string is an extraction bug, not data.
DEFAULT_MAX_LEN = 20_000


def strip_control_chars(text: str) -> str:
    return _CONTROL_RE.sub("", text)


def is_well_formed_url(value: str) -> bool:
    """http(s) URL with a non-empty host."""
    if not value.startswith(("http://", "https://")):
        return False
    rest = value.split("://", 1)[1]
    host = rest.split("/", 1)[0]
    return bool(host) and " " not in value


def is_well_formed_iso_date(value: str) -> bool:
    try:
        _dt.date.fromisoformat(value)
    except (TypeError, ValueError):
        return False
    return True


@dataclass(frozen=True)
class FieldSpec:
    """Schema of one record field.

    ``kind`` is one of ``str`` / ``float`` / ``int`` / ``bool``.  A
    ``required`` field that is missing, None, or uncoercible quarantines
    the whole record; an optional one degrades to None.
    """

    name: str
    kind: str
    required: bool = False
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    max_len: Optional[int] = None
    well_formed: Optional[str] = None  # "url" | "iso_date"
    #: Disposition when the value is out of range: REPAIR clamps to the
    #: bound, DEGRADE nulls the field (e.g. a negative price is a lie,
    #: not a clampable measurement).
    on_bad_range: str = REPAIR
    #: Disposition for malformed URL / ISO-date strings.
    on_malformed: str = DEGRADE
    #: For non-nullable dataclass fields (``quantity: int = 1``): the
    #: value a missing/rejected field normalizes to instead of ``None``,
    #: so downstream arithmetic never meets a null where the record type
    #: promises a number.
    default: object = None


@dataclass(frozen=True)
class Invariant:
    """A cross-field invariant with an optional deterministic repair."""

    name: str
    check: Callable[[object], bool]
    disposition: str = REPAIR
    repair: Optional[Callable[[object], None]] = None
    detail: str = ""


@dataclass
class RecordOutcome:
    """What the contract did to one record."""

    repairs: List[str] = field(default_factory=list)  # rule names
    degrades: List[str] = field(default_factory=list)
    quarantine_rule: Optional[str] = None
    quarantine_reason: str = ""

    @property
    def quarantined(self) -> bool:
        return self.quarantine_rule is not None


class RecordContract:
    """Field schema + invariants of one record type."""

    def __init__(self, record_type: str, fields: Tuple[FieldSpec, ...],
                 invariants: Tuple[Invariant, ...] = ()) -> None:
        self.record_type = record_type
        self.fields = fields
        self.invariants = invariants

    def apply(self, record: object) -> RecordOutcome:
        """Validate ``record`` in place; returns what happened.

        A quarantine outcome short-circuits: the record is already known
        unusable, so remaining fields are not inspected.
        """
        outcome = RecordOutcome()
        for spec in self.fields:
            self._apply_field(record, spec, outcome)
            if outcome.quarantined:
                return outcome
        for invariant in self.invariants:
            try:
                holds = bool(invariant.check(record))
            except Exception:
                holds = False
            if holds:
                continue
            rule = f"invariant.{invariant.name}"
            if invariant.disposition == REPAIR and invariant.repair is not None:
                invariant.repair(record)
                outcome.repairs.append(rule)
            elif invariant.disposition == QUARANTINE:
                outcome.quarantine_rule = rule
                outcome.quarantine_reason = invariant.detail or rule
                return outcome
            else:
                outcome.degrades.append(rule)
                add_provenance(record, f"contract:{rule}")
        return outcome

    # -- field dispatch ----------------------------------------------------

    def _apply_field(self, record: object, spec: FieldSpec,
                     outcome: RecordOutcome) -> None:
        value = getattr(record, spec.name, None)
        if value is None:
            if spec.required:
                self._quarantine(outcome, f"{spec.name}.missing",
                                 f"required field {spec.name!r} is missing")
            elif spec.default is not None:
                setattr(record, spec.name, spec.default)
                outcome.repairs.append(f"{spec.name}.defaulted")
            return
        handler = getattr(self, f"_check_{spec.kind}")
        handler(record, spec, value, outcome)

    def _reject(self, record: object, spec: FieldSpec,
                outcome: RecordOutcome, code: str, reason: str) -> None:
        """Null an optional field (degrade) or quarantine a required one.

        A field with a ``default`` degrades to that default instead of
        ``None`` (its dataclass type is not nullable).
        """
        rule = f"{spec.name}.{code}"
        if spec.required:
            self._quarantine(outcome, rule, reason)
            return
        setattr(record, spec.name, spec.default)
        outcome.degrades.append(rule)
        add_provenance(record, f"contract:{rule}")

    @staticmethod
    def _quarantine(outcome: RecordOutcome, rule: str, reason: str) -> None:
        outcome.quarantine_rule = rule
        outcome.quarantine_reason = reason

    # -- per-kind checks ---------------------------------------------------

    def _check_str(self, record, spec: FieldSpec, value, outcome) -> None:
        if isinstance(value, bytes):
            value = value.decode("utf-8", errors="replace")
            setattr(record, spec.name, value)
            outcome.repairs.append(f"{spec.name}.decoded_bytes")
        elif not isinstance(value, str):
            self._reject(record, spec, outcome, "bad_type",
                         f"{spec.name} is {type(value).__name__}, expected str")
            return
        cleaned = strip_control_chars(value)
        if cleaned != value:
            setattr(record, spec.name, cleaned)
            outcome.repairs.append(f"{spec.name}.control_chars")
            value = cleaned
        limit = spec.max_len or DEFAULT_MAX_LEN
        if len(value) > limit:
            setattr(record, spec.name, value[:limit])
            outcome.repairs.append(f"{spec.name}.truncated")
            value = value[:limit]
        if spec.well_formed == "url" and not is_well_formed_url(value):
            self._reject(record, spec, outcome, "malformed_url",
                         f"{spec.name} is not a well-formed URL")
        elif spec.well_formed == "iso_date" and not is_well_formed_iso_date(value):
            self._reject(record, spec, outcome, "malformed_date",
                         f"{spec.name} is not an ISO date")

    def _check_float(self, record, spec: FieldSpec, value, outcome) -> None:
        number = self._coerce_number(value)
        if number is None:
            self._reject(record, spec, outcome, "bad_type",
                         f"{spec.name} is {type(value).__name__}, expected number")
            return
        if not math.isfinite(number):
            self._reject(record, spec, outcome, "non_finite",
                         f"{spec.name} is {number!r}")
            return
        if number != value or not isinstance(value, float):
            outcome.repairs.append(f"{spec.name}.coerced")
        setattr(record, spec.name, number)
        self._check_range(record, spec, number, outcome)

    def _check_int(self, record, spec: FieldSpec, value, outcome) -> None:
        number = self._coerce_number(value)
        if number is None or not math.isfinite(number):
            self._reject(record, spec, outcome, "bad_type",
                         f"{spec.name} is {value!r}, expected integer")
            return
        as_int = int(number)
        if as_int != value:
            outcome.repairs.append(f"{spec.name}.coerced")
        setattr(record, spec.name, as_int)
        self._check_range(record, spec, as_int, outcome)

    def _check_bool(self, record, spec: FieldSpec, value, outcome) -> None:
        if isinstance(value, bool):
            return
        # Anything else normalizes through truthiness — deterministic,
        # and a bool field has no meaningful null to degrade to.
        setattr(record, spec.name, bool(value))
        outcome.repairs.append(f"{spec.name}.coerced")

    @staticmethod
    def _coerce_number(value) -> Optional[float]:
        if isinstance(value, bool):
            return None
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                return None
        return None

    def _check_range(self, record, spec: FieldSpec, number, outcome) -> None:
        low, high = spec.min_value, spec.max_value
        bound = None
        if low is not None and number < low:
            bound = low
        elif high is not None and number > high:
            bound = high
        if bound is None:
            return
        rule = f"{spec.name}.out_of_range"
        if spec.on_bad_range == REPAIR:
            clamped = int(bound) if spec.kind == "int" else float(bound)
            setattr(record, spec.name, clamped)
            outcome.repairs.append(rule)
        else:
            self._reject(record, spec, outcome, "out_of_range",
                         f"{spec.name}={number!r} outside "
                         f"[{low if low is not None else '-inf'}, "
                         f"{high if high is not None else 'inf'}]")


# ---------------------------------------------------------------------------
# the contracts themselves
# ---------------------------------------------------------------------------

def _swap_seen_order(record) -> None:
    record.first_seen_iteration, record.last_seen_iteration = (
        min(record.first_seen_iteration, record.last_seen_iteration),
        max(record.first_seen_iteration, record.last_seen_iteration),
    )


def _normalize_status(record) -> None:
    record.status = "error"


_KNOWN_STATUSES = frozenset({"active", "forbidden", "not_found", "error"})

SELLER_CONTRACT = RecordContract("sellers", (
    FieldSpec("seller_url", "str", required=True, well_formed="url"),
    FieldSpec("marketplace", "str", required=True),
    FieldSpec("name", "str", max_len=300),
    FieldSpec("country", "str", max_len=100),
    FieldSpec("rating", "float", min_value=0.0, max_value=5.0),
    FieldSpec("joined", "str", well_formed="iso_date"),
))

LISTING_CONTRACT = RecordContract("listings", (
    FieldSpec("offer_url", "str", required=True, well_formed="url"),
    FieldSpec("marketplace", "str", required=True),
    FieldSpec("title", "str", max_len=500, default=""),
    FieldSpec("platform", "str", max_len=50),
    # A negative or non-finite price is fabricated, not clampable —
    # degrade it so price aggregates can never ingest NaN (§4.1).
    FieldSpec("price_usd", "float", min_value=0.0, on_bad_range=DEGRADE),
    FieldSpec("category", "str", max_len=100),
    FieldSpec("followers_claimed", "int", min_value=0),
    FieldSpec("monthly_revenue_usd", "float", min_value=0.0,
              on_bad_range=DEGRADE),
    FieldSpec("income_source", "str", max_len=2000),
    FieldSpec("description", "str", max_len=10_000),
    FieldSpec("seller_url", "str", well_formed="url"),
    FieldSpec("seller_name", "str", max_len=300),
    FieldSpec("profile_url", "str", well_formed="url"),
    FieldSpec("verified_claim", "bool", default=False),
    FieldSpec("first_seen_iteration", "int", min_value=0, default=0),
    FieldSpec("last_seen_iteration", "int", min_value=0, default=0),
), invariants=(
    Invariant(
        "seen_order",
        check=lambda r: r.first_seen_iteration <= r.last_seen_iteration,
        disposition=REPAIR,
        repair=_swap_seen_order,
        detail="first_seen_iteration must not exceed last_seen_iteration",
    ),
))

PROFILE_CONTRACT = RecordContract("profiles", (
    FieldSpec("profile_url", "str", required=True, well_formed="url"),
    FieldSpec("platform", "str", required=True, max_len=50),
    FieldSpec("handle", "str", required=True, max_len=200),
    FieldSpec("account_id", "str", max_len=100),
    FieldSpec("name", "str", max_len=300),
    FieldSpec("description", "str", max_len=10_000),
    FieldSpec("created", "str", well_formed="iso_date"),
    FieldSpec("followers", "int", min_value=0),
    FieldSpec("account_type", "str", max_len=50),
    FieldSpec("location", "str", max_len=200),
    FieldSpec("category", "str", max_len=100),
    FieldSpec("email", "str", max_len=300),
    FieldSpec("phone", "str", max_len=50),
    FieldSpec("website", "str", max_len=500),
), invariants=(
    Invariant(
        "status_known",
        check=lambda r: r.status in _KNOWN_STATUSES,
        disposition=REPAIR,
        repair=_normalize_status,
        detail="status must be an ApiStatus value",
    ),
))

POST_CONTRACT = RecordContract("posts", (
    FieldSpec("post_id", "str", required=True, max_len=100),
    FieldSpec("platform", "str", required=True, max_len=50),
    FieldSpec("handle", "str", required=True, max_len=200),
    FieldSpec("text", "str", required=True, max_len=10_000),
    FieldSpec("date", "str", well_formed="iso_date"),
    FieldSpec("likes", "int", min_value=0, default=0),
    FieldSpec("views", "int", min_value=0, default=0),
))

UNDERGROUND_CONTRACT = RecordContract("underground", (
    FieldSpec("url", "str", required=True, well_formed="url"),
    FieldSpec("market", "str", required=True, max_len=100),
    FieldSpec("title", "str", max_len=500, default=""),
    FieldSpec("body", "str", required=True, max_len=20_000),
    FieldSpec("author", "str", required=True, max_len=200),
    FieldSpec("platform", "str", max_len=50),
    FieldSpec("date", "str", well_formed="iso_date"),
    FieldSpec("price_usd", "float", min_value=0.0, on_bad_range=DEGRADE),
    FieldSpec("quantity", "int", min_value=1, default=1),
    FieldSpec("replies", "int", min_value=0, default=0),
))

#: record-type name (= dataset attribute) -> contract.
CONTRACTS: Dict[str, RecordContract] = {
    "sellers": SELLER_CONTRACT,
    "listings": LISTING_CONTRACT,
    "profiles": PROFILE_CONTRACT,
    "posts": POST_CONTRACT,
    "underground": UNDERGROUND_CONTRACT,
}


# ---------------------------------------------------------------------------
# dataset-level validation
# ---------------------------------------------------------------------------

@dataclass
class ValidationReport:
    """Tally of one validation pass over a dataset."""

    checked: Dict[str, int] = field(default_factory=dict)
    kept: Dict[str, int] = field(default_factory=dict)
    repaired_by_rule: Dict[str, int] = field(default_factory=dict)
    degraded_by_rule: Dict[str, int] = field(default_factory=dict)
    quarantined: int = 0

    @property
    def checked_total(self) -> int:
        return sum(self.checked.values())

    @property
    def kept_total(self) -> int:
        return sum(self.kept.values())

    @property
    def repaired_total(self) -> int:
        return sum(self.repaired_by_rule.values())

    @property
    def degraded_total(self) -> int:
        return sum(self.degraded_by_rule.values())

    def coverage(self) -> float:
        """Share of checked records that survived quarantine."""
        if not self.checked_total:
            return 1.0
        return self.kept_total / self.checked_total

    def summary(self) -> dict:
        """The manifest section for this pass (deterministic ordering)."""
        return {
            "checked": dict(sorted(self.checked.items())),
            "kept": dict(sorted(self.kept.items())),
            "repaired": self.repaired_total,
            "repaired_by_rule": dict(sorted(self.repaired_by_rule.items())),
            "degraded": self.degraded_total,
            "degraded_by_rule": dict(sorted(self.degraded_by_rule.items())),
            "quarantined": self.quarantined,
            "coverage": round(self.coverage(), 6),
        }


def validate_dataset(
    dataset: MeasurementDataset,
    store: QuarantineStore,
    telemetry=None,
) -> ValidationReport:
    """Run every record through its contract, in place.

    Repaired/degraded records stay (mutated); quarantined records are
    removed from the dataset and dead-lettered into ``store``.  Metrics:
    ``contracts_checked_total{record_type}``,
    ``contracts_repaired_total{record_type,rule}``,
    ``contracts_degraded_total{record_type,rule}`` (quarantine counting
    lives in the store).
    """
    report = ValidationReport()
    checked_metric = repaired_metric = degraded_metric = None
    if telemetry is not None:
        checked_metric = telemetry.metrics.counter(
            "contracts_checked_total", "records run through their contract",
            labels=("record_type",),
        )
        repaired_metric = telemetry.metrics.counter(
            "contracts_repaired_total", "field repairs applied by contracts",
            labels=("record_type", "rule"),
        )
        degraded_metric = telemetry.metrics.counter(
            "contracts_degraded_total", "fields nulled by contracts",
            labels=("record_type", "rule"),
        )
    for record_type, contract in CONTRACTS.items():
        records = getattr(dataset, record_type)
        kept = []
        report.checked[record_type] = len(records)
        if checked_metric is not None and records:
            checked_metric.inc(len(records), record_type=record_type)
        for record in records:
            outcome = contract.apply(record)
            for rule in outcome.repairs:
                key = f"{record_type}/{rule}"
                report.repaired_by_rule[key] = (
                    report.repaired_by_rule.get(key, 0) + 1
                )
                if repaired_metric is not None:
                    repaired_metric.inc(record_type=record_type, rule=rule)
            for rule in outcome.degrades:
                key = f"{record_type}/{rule}"
                report.degraded_by_rule[key] = (
                    report.degraded_by_rule.get(key, 0) + 1
                )
                if degraded_metric is not None:
                    degraded_metric.inc(record_type=record_type, rule=rule)
                if telemetry is not None:
                    telemetry.events.emit(
                        "contract.degrade", level="info",
                        record_type=record_type, rule=rule,
                    )
            if outcome.quarantined:
                report.quarantined += 1
                store.quarantine(
                    record_type,
                    outcome.quarantine_rule,
                    outcome.quarantine_reason,
                    record=_record_dict(record),
                )
            else:
                kept.append(record)
        report.kept[record_type] = len(kept)
        setattr(dataset, record_type, kept)
    return report


def _record_dict(record) -> Optional[dict]:
    try:
        return dataclasses.asdict(record)
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return None


__all__ = [
    "CONTRACTS",
    "DEGRADE",
    "FieldSpec",
    "Invariant",
    "LISTING_CONTRACT",
    "POST_CONTRACT",
    "PROFILE_CONTRACT",
    "QUARANTINE",
    "REPAIR",
    "RecordContract",
    "RecordOutcome",
    "SELLER_CONTRACT",
    "UNDERGROUND_CONTRACT",
    "ValidationReport",
    "is_well_formed_iso_date",
    "is_well_formed_url",
    "strip_control_chars",
    "validate_dataset",
]
