"""Stage supervision: isolation boundaries around analysis stages.

A multi-iteration study must not die because one analysis stage hit a
record shape it could not digest.  :class:`StageSupervisor` wraps each
stage invocation with a per-stage :class:`StagePolicy`: transient errors
are retried up to ``retries`` times; deterministic errors (or exhausted
retries) become a typed :class:`StageFailure` recorded on the supervisor
and the stage's report degrades to ``None`` — the run continues.

Supervisor decisions are pure functions of the stage callables and the
(seeded, deterministic) dataset, so a resumed run replays the exact same
``stage.*`` events and failures as an uninterrupted one.

``fail_stages`` injects a deterministic failure into named stages — the
CLI's ``--fail-stage`` flag uses it for degraded-run drills.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class InjectedStageError(RuntimeError):
    """Deliberate failure injected via ``fail_stages`` / ``--fail-stage``."""


class TransientStageError(RuntimeError):
    """An error the policy may retry (analogue of a 5xx, not a 4xx)."""


@dataclass(frozen=True)
class StagePolicy:
    """How the supervisor treats one stage's errors."""

    #: Extra attempts after the first, for transient errors only.
    retries: int = 0
    #: Exception types considered transient (retryable).
    transient: Tuple[type, ...] = (TransientStageError, OSError)
    #: ``skip`` records a StageFailure and degrades; ``raise`` propagates
    #: (strict mode forces ``raise`` for every stage).
    on_error: str = "skip"


DEFAULT_POLICY = StagePolicy()


@dataclass
class StageFailure:
    """Typed record of one supervised stage that did not produce a report."""

    stage: str
    kind: str  # exception class name
    detail: str
    attempts: int = 1
    disposition: str = "skipped"

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "kind": self.kind,
            "detail": self.detail,
            "attempts": self.attempts,
            "disposition": self.disposition,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageFailure":
        return cls(
            stage=data["stage"],
            kind=data.get("kind", "Exception"),
            detail=data.get("detail", ""),
            attempts=data.get("attempts", 1),
            disposition=data.get("disposition", "skipped"),
        )


class StageSupervisor:
    """Runs stage callables inside an isolation boundary.

    Collected :class:`StageFailure`s land in ``failures`` in execution
    order.  With ``strict=True`` the first stage failure propagates
    instead — CI uses this to prove a healthy pipeline has none.
    """

    def __init__(self, telemetry=None, strict: bool = False,
                 fail_stages: Tuple[str, ...] = ()) -> None:
        self.strict = strict
        self.fail_stages = tuple(fail_stages)
        self.failures: List[StageFailure] = []
        self._telemetry = telemetry
        self._failures_metric = None
        if telemetry is not None:
            self._failures_metric = telemetry.metrics.counter(
                "stage_failures_total",
                "supervised stages that degraded instead of reporting",
                labels=("stage", "kind"),
            )

    def failure_for(self, stage: str) -> Optional[StageFailure]:
        for failure in self.failures:
            if failure.stage == stage:
                return failure
        return None

    def run(self, stage: str, fn: Callable, *args,
            policy: StagePolicy = DEFAULT_POLICY, **kwargs):
        """Invoke ``fn(*args, **kwargs)`` under supervision.

        Returns the stage's report, or ``None`` when the stage failed
        and the policy degraded it.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                if stage in self.fail_stages:
                    raise InjectedStageError(
                        f"stage {stage!r} failed by --fail-stage injection"
                    )
                result = fn(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - the boundary itself
                transient = isinstance(exc, policy.transient) and not isinstance(
                    exc, InjectedStageError
                )
                if transient and attempts <= policy.retries:
                    self._emit("stage.retry", "warning", stage=stage,
                               attempt=attempts,
                               error_kind=type(exc).__name__,
                               detail=str(exc))
                    continue
                failure = StageFailure(
                    stage=stage,
                    kind=type(exc).__name__,
                    detail=str(exc),
                    attempts=attempts,
                    disposition="skipped",
                )
                self.failures.append(failure)
                if self._failures_metric is not None:
                    self._failures_metric.inc(stage=stage, kind=failure.kind)
                self._emit("stage.failed", "error", stage=stage,
                           error_kind=failure.kind, detail=failure.detail,
                           attempts=attempts)
                if self.strict or policy.on_error == "raise":
                    raise
                return None
            else:
                self._emit("stage.ok", "debug", stage=stage, attempts=attempts)
                return result

    def _emit(self, kind: str, level: str, **fields) -> None:
        if self._telemetry is not None:
            self._telemetry.events.emit(kind, level=level, **fields)


__all__ = [
    "DEFAULT_POLICY",
    "InjectedStageError",
    "StageFailure",
    "StagePolicy",
    "StageSupervisor",
    "TransientStageError",
]
