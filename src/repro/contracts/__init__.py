"""Data-plane hardening: record contracts, quarantine, stage supervision.

The contract layer (:mod:`repro.contracts.schema`) validates every
record at the dataset boundary with three dispositions — repair,
degrade, quarantine.  The dead-letter store
(:mod:`repro.contracts.quarantine`) keeps what validation rejects.  The
stage supervisor (:mod:`repro.contracts.supervisor`) keeps a failing
analysis stage from killing the run.
"""

from repro.contracts.quarantine import (
    ContractViolationError,
    QUARANTINE_FILENAME,
    QuarantineStore,
    QuarantinedRecord,
    SOURCE_JSONL_LOAD,
    SOURCE_VALIDATION,
)
from repro.contracts.schema import (
    CONTRACTS,
    DEGRADE,
    FieldSpec,
    Invariant,
    QUARANTINE,
    REPAIR,
    RecordContract,
    RecordOutcome,
    ValidationReport,
    validate_dataset,
)
from repro.contracts.supervisor import (
    DEFAULT_POLICY,
    InjectedStageError,
    StageFailure,
    StagePolicy,
    StageSupervisor,
    TransientStageError,
)

__all__ = [
    "CONTRACTS",
    "ContractViolationError",
    "DEFAULT_POLICY",
    "DEGRADE",
    "FieldSpec",
    "InjectedStageError",
    "Invariant",
    "QUARANTINE",
    "QUARANTINE_FILENAME",
    "QuarantineStore",
    "QuarantinedRecord",
    "REPAIR",
    "RecordContract",
    "RecordOutcome",
    "SOURCE_JSONL_LOAD",
    "SOURCE_VALIDATION",
    "StageFailure",
    "StagePolicy",
    "StageSupervisor",
    "TransientStageError",
    "ValidationReport",
    "validate_dataset",
]
