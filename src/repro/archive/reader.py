"""Read side of the crawl archive: open, iterate, verify.

An :class:`ArchiveReader` only opens *sealed* archives — an unsealed
directory is a run that died before :meth:`ArchiveWriter.seal`, and
nothing downstream (replay, diff, verify) should trust it.

:meth:`ArchiveReader.verify` is the integrity audit behind
``repro archive verify``: it re-hashes every index file, re-derives the
manifest hash chain, re-hashes every blob, and cross-checks the record
counts and blob references the manifest claims.  Any discrepancy — a
flipped byte in a body, a truncated index, an orphaned or missing blob —
comes back as one human-readable problem string.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

from repro.archive.blobstore import BlobNotFound, BlobStore
from repro.archive.records import ROLE_OUTCOME, ArchiveError, ExchangeRecord
from repro.archive.writer import (
    ARCHIVE_MANIFEST,
    ARCHIVE_SCHEMA,
    BLOBS_DIRNAME,
    INDEX_DIRNAME,
    chain_sha256,
    file_sha256,
)
from repro.web.http import Response


class ArchiveReader:
    """A sealed crawl archive, opened for iteration and verification."""

    def __init__(self, root: str, manifest: dict) -> None:
        self.root = root
        self.manifest = manifest
        self.blobs = BlobStore(os.path.join(root, BLOBS_DIRNAME))
        self._index_dir = os.path.join(root, INDEX_DIRNAME)

    @classmethod
    def open(cls, root: str) -> "ArchiveReader":
        manifest_path = os.path.join(root, ARCHIVE_MANIFEST)
        if not os.path.isdir(root):
            raise ArchiveError(f"no archive directory at {root}")
        if not os.path.exists(manifest_path):
            raise ArchiveError(
                f"no {ARCHIVE_MANIFEST} in {root}: not an archive, or the "
                "run died before sealing it"
            )
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ArchiveError(f"corrupt {ARCHIVE_MANIFEST} in {root}: {exc}")
        if manifest.get("schema") != ARCHIVE_SCHEMA:
            raise ArchiveError(
                f"unknown archive schema {manifest.get('schema')!r} "
                f"(expected {ARCHIVE_SCHEMA})"
            )
        if not manifest.get("sealed"):
            raise ArchiveError(f"archive at {root} is not sealed")
        return cls(root, manifest)

    # -- config --------------------------------------------------------------

    @property
    def config(self) -> dict:
        """The study-config subset the manifest embeds (seed, scale, …)."""
        return self.manifest["config"]

    @property
    def sim_seconds(self) -> float:
        return float(self.manifest["sim_seconds"])

    def summary(self) -> dict:
        """The same archive section the writer puts in a run manifest."""
        return {
            "dir": self.root,
            "sealed": self.manifest["sealed"],
            "exchanges_total": self.manifest["exchanges_total"],
            "outcomes_total": self.manifest["outcomes_total"],
            "blobs_total": self.manifest["blobs_total"],
            "bytes_total": self.manifest["bytes_total"],
            "dedup_ratio": self.manifest["dedup_ratio"],
            "chain_sha256": self.manifest["chain_sha256"],
        }

    # -- iteration -----------------------------------------------------------

    def index_names(self) -> List[str]:
        return [entry["name"] for entry in self.manifest["indexes"]]

    def entries(self, index_name: Optional[str] = None) -> Iterator[ExchangeRecord]:
        """Records in manifest (phase, then line) order — global seq order."""
        names = [index_name] if index_name is not None else self.index_names()
        for name in names:
            path = os.path.join(self._index_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if line:
                            yield ExchangeRecord.from_json(line)
            except FileNotFoundError:
                raise ArchiveError(f"index file {name} listed in the "
                                   f"manifest is missing from {self.root}")
            except (json.JSONDecodeError, TypeError) as exc:
                raise ArchiveError(f"corrupt index file {name}: {exc}")

    def outcome_streams(self) -> Dict[str, List[ExchangeRecord]]:
        """Per-client outcome sequences — the replay scripts."""
        streams: Dict[str, List[ExchangeRecord]] = {}
        for record in self.entries():
            if record.role == ROLE_OUTCOME:
                streams.setdefault(record.client, []).append(record)
        return streams

    # -- bodies --------------------------------------------------------------

    def body(self, digest: str) -> bytes:
        try:
            return self.blobs.get(digest)
        except BlobNotFound:
            raise ArchiveError(f"referenced blob {digest} is missing")

    def response_for(self, record: ExchangeRecord) -> Response:
        """Reconstruct the :class:`Response` a record archived."""
        if record.status is None:
            raise ArchiveError(
                f"record seq={record.seq} archived an error, not a response"
            )
        return Response(
            status=record.status,
            body=self.body(record.sha256).decode("utf-8"),
            headers=dict(record.headers),
            url=record.response_url,
            set_cookies=dict(record.set_cookies),
            elapsed=record.elapsed,
        )

    # -- integrity -----------------------------------------------------------

    def verify(self) -> List[str]:
        """Re-hash everything; returns one problem string per finding."""
        problems: List[str] = []
        referenced: Dict[str, int] = {}
        entries_total = 0
        hashes: List[str] = []
        for entry in self.manifest["indexes"]:
            name = entry["name"]
            path = os.path.join(self._index_dir, name)
            if not os.path.exists(path):
                problems.append(f"index {name}: file missing")
                continue
            actual = file_sha256(path)
            hashes.append(actual)
            if actual != entry["sha256"]:
                problems.append(
                    f"index {name}: hash mismatch (manifest {entry['sha256']}, "
                    f"file {actual})"
                )
            count = 0
            try:
                for record in self.entries(name):
                    count += 1
                    if record.sha256 is not None:
                        referenced[record.sha256] = record.size
            except ArchiveError as exc:
                problems.append(str(exc))
                continue
            if count != entry["entries"]:
                problems.append(
                    f"index {name}: {count} records on disk, manifest "
                    f"claims {entry['entries']}"
                )
            entries_total += count
        # Pack files and their sidecars: hash each against the manifest
        # and extend the chain the same way seal() built it.
        claimed_packs = set()
        for entry in self.manifest.get("packs", []):
            stem = entry["name"]
            claimed_packs.add(stem)
            for key, path, label in (
                ("sha256", self.blobs.pack_path(stem), f"pack {stem}"),
                (
                    "idx_sha256",
                    self.blobs.sidecar_path(stem),
                    f"pack {stem} sidecar",
                ),
            ):
                if not os.path.exists(path):
                    problems.append(f"{label}: file missing")
                    continue
                actual = file_sha256(path)
                hashes.append(actual)
                if actual != entry[key]:
                    problems.append(
                        f"{label}: hash mismatch (manifest {entry[key]}, "
                        f"file {actual})"
                    )
        for stem in self.blobs.phases():
            if stem not in claimed_packs:
                problems.append(f"pack {stem}: not listed in the manifest")
        chain = chain_sha256(hashes)
        if chain != self.manifest["chain_sha256"]:
            problems.append(
                f"manifest chain broken: recomputed {chain}, manifest "
                f"claims {self.manifest['chain_sha256']}"
            )
        if entries_total != self.manifest["exchanges_total"]:
            problems.append(
                f"{entries_total} records across indexes, manifest claims "
                f"{self.manifest['exchanges_total']}"
            )
        # Blob level: every pack slice re-hashes to its address, every
        # referenced body is present at its recorded size, no orphans.
        problems.extend(self.blobs.verify())
        on_disk = set(self.blobs.digests())
        for digest, size in sorted(referenced.items()):
            if digest not in on_disk:
                problems.append(f"blob {digest}: referenced but missing")
                continue
            if self.blobs.size_of(digest) != size:
                problems.append(
                    f"blob {digest}: {self.blobs.size_of(digest)} bytes "
                    f"in its pack, index records {size}"
                )
        for digest in sorted(on_disk - set(referenced)):
            problems.append(f"blob {digest}: orphaned (no index references it)")
        if len(on_disk) != self.manifest["blobs_total"]:
            problems.append(
                f"{len(on_disk)} blobs in the store, manifest claims "
                f"{self.manifest['blobs_total']}"
            )
        return problems


__all__ = ["ArchiveReader"]
