"""Per-marketplace page churn between two archived iterations.

``repro archive diff DIR I J`` answers the longitudinal question the
iteration indexes make cheap: between collection iterations *I* and *J*,
which offer pages appeared, disappeared, or changed content — per
marketplace — and how much body-level dedup the pair of crawls achieved.

Churn is computed over *outcome* records (the final page content each
crawl delivered), keyed by offer URL; "changed" means the same URL
served a body with a different SHA-256.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.archive.reader import ArchiveReader
from repro.archive.records import ROLE_OUTCOME, ArchiveError
from repro.archive.writer import index_filename, iteration_phase


def _host_to_marketplace() -> Dict[str, str]:
    from repro.marketplaces.registry import MARKETPLACES

    return {spec.host: name for name, spec in MARKETPLACES.items()}


@dataclass
class MarketplaceChurn:
    """Offer-page churn for one marketplace between two iterations."""

    marketplace: str
    added: int = 0
    removed: int = 0
    changed: int = 0
    unchanged: int = 0

    @property
    def total(self) -> int:
        return self.added + self.removed + self.changed + self.unchanged


@dataclass
class ArchiveDiff:
    """The full churn report between iterations ``left`` and ``right``."""

    left: int
    right: int
    churn: List[MarketplaceChurn] = field(default_factory=list)
    #: Unique bodies across both iterations / bodies observed — how much
    #: of the pair the blob store stored only once.
    dedup_ratio: float = 0.0

    def to_dict(self) -> dict:
        return {
            "left": self.left,
            "right": self.right,
            "dedup_ratio": round(self.dedup_ratio, 6),
            "marketplaces": [
                {
                    "marketplace": entry.marketplace,
                    "added": entry.added,
                    "removed": entry.removed,
                    "changed": entry.changed,
                    "unchanged": entry.unchanged,
                }
                for entry in self.churn
            ],
        }

    def render_text(self) -> str:
        lines = [
            f"archive diff: iteration {self.left} -> {self.right}",
            f"  body dedup ratio across the pair: {self.dedup_ratio:.3f}",
            "",
            f"  {'marketplace':<22} {'added':>6} {'removed':>8} "
            f"{'changed':>8} {'unchanged':>10}",
        ]
        for entry in self.churn:
            lines.append(
                f"  {entry.marketplace:<22} {entry.added:>6} "
                f"{entry.removed:>8} {entry.changed:>8} {entry.unchanged:>10}"
            )
        totals = MarketplaceChurn(
            "TOTAL",
            added=sum(e.added for e in self.churn),
            removed=sum(e.removed for e in self.churn),
            changed=sum(e.changed for e in self.churn),
            unchanged=sum(e.unchanged for e in self.churn),
        )
        lines.append(
            f"  {'TOTAL':<22} {totals.added:>6} {totals.removed:>8} "
            f"{totals.changed:>8} {totals.unchanged:>10}"
        )
        return "\n".join(lines)


def _offer_pages(
    reader: ArchiveReader, iteration: int, hosts: Dict[str, str]
) -> Dict[str, Dict[str, str]]:
    """marketplace -> {offer URL -> body sha} for one iteration.

    A URL fetched more than once in an iteration (the crawler's
    truncation re-fetch issues a second top-level GET) keeps its last
    delivered body — what the crawl actually extracted from.
    """
    from repro.web.url import url_host

    name = index_filename(iteration_phase(iteration))
    if name not in reader.index_names():
        raise ArchiveError(
            f"archive has no index for iteration {iteration} "
            f"(indexes: {', '.join(reader.index_names())})"
        )
    pages: Dict[str, Dict[str, str]] = {}
    for record in reader.entries(name):
        if record.role != ROLE_OUTCOME or record.sha256 is None:
            continue
        if "/offer/" not in record.url:
            continue
        marketplace = hosts.get(url_host(record.url))
        if marketplace is None:
            continue
        pages.setdefault(marketplace, {})[record.url] = record.sha256
    return pages


def diff_iterations(
    reader: ArchiveReader, left: int, right: int
) -> ArchiveDiff:
    """Compute offer-page churn between two archived iterations."""
    hosts = _host_to_marketplace()
    pages_left = _offer_pages(reader, left, hosts)
    pages_right = _offer_pages(reader, right, hosts)
    diff = ArchiveDiff(left=left, right=right)
    bodies_seen = 0
    unique_bodies = set()
    for marketplace in sorted(set(pages_left) | set(pages_right)):
        before = pages_left.get(marketplace, {})
        after = pages_right.get(marketplace, {})
        entry = MarketplaceChurn(marketplace=marketplace)
        for url in set(before) | set(after):
            if url not in before:
                entry.added += 1
            elif url not in after:
                entry.removed += 1
            elif before[url] != after[url]:
                entry.changed += 1
            else:
                entry.unchanged += 1
        diff.churn.append(entry)
        for shas in (before, after):
            bodies_seen += len(shas)
            unique_bodies.update(shas.values())
    if bodies_seen:
        diff.dedup_ratio = 1.0 - len(unique_bodies) / bodies_seen
    return diff


__all__ = ["ArchiveDiff", "MarketplaceChurn", "diff_iterations"]
