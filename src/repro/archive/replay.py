"""Offline replay: re-run extraction + analysis from a sealed archive.

The archive's ``outcome`` records are, per client, exactly the sequence
of results the live run's :class:`~repro.web.client.HttpClient` handed
to the crawlers — final responses after redirects and retries, or the
errors it raised.  :class:`ReplayClient` exposes the same ``get``/
``post``/``request`` surface and feeds that sequence back, validating on
every call that the replayed code asked for the same request the live
run made.  The crawlers, profile collector, and underground collector
then re-run *for real* — Module-2 extraction genuinely re-executes over
the archived bytes — followed by contracts, the supervised nine-stage
analysis suite, and the fidelity scorecard.

Nothing else from the live run happens: no synthetic Internet is built,
no sites deploy, no faults inject, no politeness waits or retries burn
simulated time.  The :class:`ReplayClock` instead jumps straight to each
outcome's archived ``sim_at``, so every timestamp-derived artifact
(including ``simulated_seconds``) is byte-identical to the live run's.

The ground-truth world the scorecard needs is rebuilt purely from the
archived seed/scale config — world construction never touches the
network in the live pipeline either.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.archive.reader import ArchiveReader
from repro.archive.records import ExchangeRecord
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.util.simtime import SimClock
from repro.web.http import (
    CircuitOpen,
    ConnectionFailed,
    HttpError,
    RequestRejected,
    RequestTimeout,
    Response,
    TooManyRedirects,
)


class ReplayError(Exception):
    """The replay could not run to completion against the archive."""


class ReplayMismatch(ReplayError):
    """The replayed code diverged from the archived request sequence."""


#: Error type names archived in outcome records, mapped back to the
#: exception classes the live client raised.
_ERROR_TYPES: Dict[str, Type[HttpError]] = {
    "ConnectionFailed": ConnectionFailed,
    "RequestTimeout": RequestTimeout,
    "CircuitOpen": CircuitOpen,
    "TooManyRedirects": TooManyRedirects,
    "RequestRejected": RequestRejected,
    "HttpError": HttpError,
}


class ReplayClock(SimClock):
    """A simulated clock that can jump forward to archived instants.

    Replayed code still *advances* it (the underground solver charges
    its human solving pace), but each delivered outcome then pins the
    clock to the exact ``sim_at`` the live run recorded — absorbing all
    the politeness, backoff, and latency time replay skips.
    """

    def set_at_least(self, value: float) -> None:
        if value > self._now:
            self._now = float(value)


class ReplayClient:
    """Serves one client's archived outcome stream through the
    :class:`~repro.web.client.HttpClient` interface the collectors use."""

    def __init__(
        self,
        reader: ArchiveReader,
        outcomes: List[ExchangeRecord],
        client_id: str,
        clock: ReplayClock,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._reader = reader
        self._outcomes = list(outcomes)
        self._cursor = 0
        self.client_id = client_id
        self._clock = clock
        self.telemetry = telemetry or NULL_TELEMETRY

    # -- HttpClient surface --------------------------------------------------

    @property
    def clock(self) -> ReplayClock:
        return self._clock

    def begin_epoch(self, epoch: int) -> None:
        """No transport state to reset offline."""

    def get(self, url: str, **params: str) -> Response:
        return self.request(
            "GET", url, params={k: str(v) for k, v in params.items()}
        )

    def post(self, url: str, form: Optional[Dict[str, str]] = None) -> Response:
        return self.request("POST", url, form=form or {})

    def request(
        self,
        method: str,
        url: str,
        params: Optional[Dict[str, str]] = None,
        form: Optional[Dict[str, str]] = None,
    ) -> Response:
        record = self._next(method, url, params or {}, form or {})
        self._clock.set_at_least(record.sim_at)
        if record.error is not None:
            error_type = _ERROR_TYPES.get(record.error["type"], HttpError)
            raise error_type(record.error["message"])
        return self._reader.response_for(record)

    # -- stream bookkeeping --------------------------------------------------

    @property
    def remaining(self) -> int:
        return len(self._outcomes) - self._cursor

    def _next(
        self,
        method: str,
        url: str,
        params: Dict[str, str],
        form: Dict[str, str],
    ) -> ExchangeRecord:
        if self._cursor >= len(self._outcomes):
            raise ReplayMismatch(
                f"client {self.client_id!r} requested {method} {url} but "
                "the archived outcome stream is exhausted — the replayed "
                "code diverged from the recorded run"
            )
        record = self._outcomes[self._cursor]
        requested = (method.upper(), url, params, form)
        archived = (record.method, record.url, record.params, record.form)
        if requested != archived:
            raise ReplayMismatch(
                f"client {self.client_id!r} diverged at seq={record.seq}: "
                f"requested {method.upper()} {url} "
                f"params={params} form={form}, archive recorded "
                f"{record.method} {record.url} "
                f"params={record.params} form={record.form}"
            )
        self._cursor += 1
        return record


def _study_config_from(manifest_config: dict):
    # Imported here, not at module top: repro.core.pipeline imports the
    # archive writer, so a top-level import would be circular.
    from repro.core.pipeline import StudyConfig

    return StudyConfig(
        seed=int(manifest_config["seed"]),
        scale=float(manifest_config["scale"]),
        iterations=int(manifest_config["iterations"]),
        include_underground=bool(manifest_config["include_underground"]),
    )


def run_replay(
    archive_dir: str, telemetry: Optional[Telemetry] = None
):
    """Re-run Module-2 extraction + the full analysis suite offline.

    Returns a :class:`StudyResult` whose dataset, meta series, and
    scorecard are byte-identical to the live run that wrote the archive.
    Raises :class:`~repro.archive.records.ArchiveError` for a missing or
    unsealed archive, :class:`ReplayMismatch` when the replayed code
    requests anything other than the recorded sequence.
    """
    from repro.analysis.suite import run_analysis_suite
    from repro.core.pipeline import StudyResult
    from repro.contracts.quarantine import QuarantineStore
    from repro.contracts.schema import validate_dataset
    from repro.contracts.supervisor import StageSupervisor
    from repro.crawler.crawler import IterationCrawl, MarketplaceCrawler
    from repro.crawler.profile_collector import ProfileCollector
    from repro.crawler.underground_collector import UndergroundCollector
    from repro.marketplaces.registry import MARKETPLACES
    from repro.marketplaces.underground import onion_host
    from repro.obs.quality import compute_scorecard
    from repro.synthetic.world import WorldBuilder
    from repro.util.rng import RngTree
    from repro.web.captcha import HumanSolver

    telemetry = telemetry or NULL_TELEMETRY
    reader = ArchiveReader.open(archive_dir)
    config = _study_config_from(reader.config)
    clock = ReplayClock()
    telemetry.set_clock(clock)

    # Ground truth for the scorecard: the world is a pure function of the
    # archived seed/scale config — no network involved, live or offline.
    world = WorldBuilder(config.world_config()).build()

    streams = reader.outcome_streams()
    clients: List[ReplayClient] = []

    def replay_client(client_id: str) -> ReplayClient:
        client = ReplayClient(
            reader, streams.get(client_id, []), client_id, clock, telemetry
        )
        clients.append(client)
        return client

    client = replay_client("crawler")
    crawl = IterationCrawl(
        client=client,
        seed_urls={
            name: f"http://{spec.host}/listings"
            for name, spec in MARKETPLACES.items()
        },
        set_iteration=lambda iteration: None,  # no sites to advance
        iterations=config.iterations,
        telemetry=telemetry,
    )
    with telemetry.tracer.span("replay.iteration_crawl"):
        dataset = crawl.run()

    payments: Dict[str, List[Tuple[str, str]]] = {}
    with telemetry.tracer.span("replay.payment_pages"):
        for name, spec in MARKETPLACES.items():
            crawler = MarketplaceCrawler(
                client, name, f"http://{spec.host}/listings",
                telemetry=telemetry,
            )
            payments[name] = crawler.collect_payment_methods()

    collector = ProfileCollector(client, telemetry=telemetry)
    with telemetry.tracer.span("replay.profile_collection"):
        profiles, posts = collector.collect(dataset.listings)
    dataset.profiles = profiles
    dataset.posts = posts
    with telemetry.tracer.span("replay.status_sweep"):
        collector.sweep_status(dataset.profiles)

    if config.include_underground and "manual-analyst" in streams:
        tor_client = replay_client("manual-analyst")
        # Same solver RNG the live pipeline derives: children of an
        # RngTree come from (seed, name), so skipping the deploy stage
        # does not perturb the stream.
        solver_rng = RngTree(config.seed, name="study").child("solver")
        manual = UndergroundCollector(
            client=tor_client,
            solver=HumanSolver(solver_rng),
            telemetry=telemetry,
        )
        markets = sorted({
            posting.market for posting in world.underground_postings
        })
        with telemetry.tracer.span("replay.underground_collection"):
            for market in markets:
                dataset.underground.extend(
                    manual.collect_market(market, onion_host(market))
                )

    # Contract boundary re-validates the replayed records, exactly as the
    # live run validated the originals.
    quarantine = QuarantineStore(telemetry if telemetry.enabled else None)
    with telemetry.tracer.span("replay.contracts"):
        contracts = validate_dataset(
            dataset, quarantine, telemetry if telemetry.enabled else None
        )

    for replayed in clients:
        if replayed.remaining:
            raise ReplayMismatch(
                f"client {replayed.client_id!r} left {replayed.remaining} "
                "archived outcomes unconsumed — the replayed code diverged "
                "from the recorded run"
            )

    # Pin the clock to the archived end-of-run instant so
    # ``simulated_seconds`` matches even if the final archived exchanges
    # carried no outcome for this stream.
    clock.set_at_least(reader.sim_seconds)

    result = StudyResult(
        dataset=dataset,
        world=world,
        active_per_iteration=crawl.active_per_iteration,
        cumulative_per_iteration=crawl.cumulative_per_iteration,
        payment_methods=payments,
        crawl_reports=crawl.reports,
        simulated_seconds=clock.now(),
        telemetry=telemetry,
        contracts=contracts,
        quarantine=quarantine,
        archive=reader.summary(),
    )
    # Replay exists to analyze many times: always run the supervised
    # suite and score the result, telemetry or not.
    supervisor = StageSupervisor(telemetry if telemetry.enabled else None)
    with telemetry.tracer.span("replay.analysis_suite"):
        result.analyses = run_analysis_suite(
            dataset, supervisor, telemetry=telemetry
        )
    result.stage_failures = list(supervisor.failures)
    with telemetry.tracer.span("replay.scorecard"):
        result.scorecard = compute_scorecard(result, analyses=result.analyses)
    if telemetry.enabled:
        result.scorecard.register_gauges(telemetry.metrics)
    return result


__all__ = [
    "ReplayClient",
    "ReplayClock",
    "ReplayError",
    "ReplayMismatch",
    "run_replay",
]
