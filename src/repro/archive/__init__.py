"""Crawl archive: WARC-style capture of every HTTP exchange, plus replay.

The paper's pipeline is collect-once, analyze-many — the authors
archived their Feb–Jun 2024 crawls and re-ran extraction and analysis as
their methods evolved.  This package gives the reproduction the same
decoupling:

- :mod:`repro.archive.blobstore` — content-addressed body storage
  (SHA-256 keyed, deduplicating, atomic writes).
- :mod:`repro.archive.records` — the two-role index schema: ``exchange``
  (as observed on the wire, pre-retry) and ``outcome`` (what each
  top-level request delivered — the replay script).
- :mod:`repro.archive.writer` — the capture sink the live
  :class:`~repro.web.client.HttpClient` writes into; seals the archive
  with a hash-chained manifest.
- :mod:`repro.archive.reader` — opens sealed archives; ``verify()``
  re-hashes everything (``repro archive verify``).
- :mod:`repro.archive.replay` — re-runs Module-2 extraction plus the
  full analysis suite offline, byte-identical to the live run
  (``repro replay``).
- :mod:`repro.archive.diff` — per-marketplace page churn between
  iterations (``repro archive diff``).
"""

from repro.archive.blobstore import BlobNotFound, BlobStore, body_sha256
from repro.archive.diff import ArchiveDiff, MarketplaceChurn, diff_iterations
from repro.archive.reader import ArchiveReader
from repro.archive.records import (
    ROLE_EXCHANGE,
    ROLE_OUTCOME,
    ArchiveError,
    ExchangeRecord,
)
from repro.archive.replay import (
    ReplayClient,
    ReplayClock,
    ReplayError,
    ReplayMismatch,
    run_replay,
)
from repro.archive.writer import (
    ARCHIVE_MANIFEST,
    ARCHIVE_SCHEMA,
    ArchiveWriter,
    POST_COLLECTION_PHASE,
)

__all__ = [
    "ARCHIVE_MANIFEST",
    "ARCHIVE_SCHEMA",
    "ArchiveDiff",
    "ArchiveError",
    "ArchiveReader",
    "ArchiveWriter",
    "BlobNotFound",
    "BlobStore",
    "ExchangeRecord",
    "MarketplaceChurn",
    "POST_COLLECTION_PHASE",
    "ROLE_EXCHANGE",
    "ROLE_OUTCOME",
    "ReplayClient",
    "ReplayClock",
    "ReplayError",
    "ReplayMismatch",
    "body_sha256",
    "diff_iterations",
    "run_replay",
]
