"""The archive's index-record schema: one line per archived HTTP exchange.

Two roles share the schema:

``exchange``
    A response (or transport failure) exactly as observed on the wire —
    recorded by the client *before* retry, timeout, or redirect handling
    touches it.  Intermediate 503s, truncated bodies, robots.txt
    fetches: all of them land here as observed, never as repaired.

``outcome``
    What one top-level :meth:`HttpClient.request` call delivered to its
    caller — the final response after redirects and retries, or the
    error it raised.  The per-client outcome sequence is the replay
    script: :mod:`repro.archive.replay` feeds it back to the crawlers
    verbatim.

Serialization is sorted-key JSON with a fixed field set, so two
same-seed runs write byte-identical index lines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

ROLE_EXCHANGE = "exchange"
ROLE_OUTCOME = "outcome"


class ArchiveError(Exception):
    """An archive directory is missing, unsealed, corrupt, or misused."""


@dataclass
class ExchangeRecord:
    """One archived HTTP exchange (see module docstring for roles)."""

    seq: int
    role: str  # ROLE_EXCHANGE | ROLE_OUTCOME
    phase: str  # "iteration_0000", ..., "post_collection"
    client: str  # HttpClient.client_id
    method: str
    url: str
    params: Dict[str, str] = field(default_factory=dict)
    form: Dict[str, str] = field(default_factory=dict)
    #: Response fields (None/empty when the exchange was an error).
    status: Optional[int] = None
    sha256: Optional[str] = None
    size: int = 0
    headers: Dict[str, str] = field(default_factory=dict)
    set_cookies: Dict[str, str] = field(default_factory=dict)
    response_url: str = ""
    elapsed: float = 0.0
    #: Simulated clock when the exchange completed.
    sim_at: float = 0.0
    #: Error the exchange/outcome surfaced instead of a response:
    #: ``{"type": "RequestTimeout", "message": "..."}``.
    error: Optional[Dict[str, str]] = None
    #: Free-form observation flag: "", "robots", "timeout_discarded".
    note: str = ""

    @property
    def is_response(self) -> bool:
        return self.status is not None

    def to_json(self) -> str:
        return json.dumps(
            {
                "client": self.client,
                "elapsed": self.elapsed,
                "error": self.error,
                "form": self.form,
                "headers": self.headers,
                "method": self.method,
                "note": self.note,
                "params": self.params,
                "phase": self.phase,
                "response_url": self.response_url,
                "role": self.role,
                "seq": self.seq,
                "set_cookies": self.set_cookies,
                "sha256": self.sha256,
                "sim_at": self.sim_at,
                "size": self.size,
                "status": self.status,
                "url": self.url,
            },
            sort_keys=True,
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "ExchangeRecord":
        if not isinstance(payload, dict):
            raise TypeError(
                f"expected a JSON object, got {type(payload).__name__}"
            )
        known = {
            "seq", "role", "phase", "client", "method", "url", "params",
            "form", "status", "sha256", "size", "headers", "set_cookies",
            "response_url", "elapsed", "sim_at", "error", "note",
        }
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def from_json(cls, line: str) -> "ExchangeRecord":
        return cls.from_dict(json.loads(line))


__all__ = ["ArchiveError", "ExchangeRecord", "ROLE_EXCHANGE", "ROLE_OUTCOME"]
