"""Content-addressed pack storage for response bodies.

Every HTTP body the crawl observes is stored exactly once, keyed by the
SHA-256 of its bytes — the same idea as a WARC deduplicating revisit
record or a git object store.  Marketplace pages barely change between
iterations, so the dedup ratio is the archive's main compression lever.

Physically, bodies live in per-phase *pack files* rather than one file
per blob: creating a file costs two metadata syscalls (~hundreds of µs
on overlay filesystems) while appending to an already-open pack costs a
buffered write (~µs), and a crawl stores hundreds of new bodies per
iteration.  Packing is what keeps archiving's crawl overhead under the
benchmark's 10% budget — and it is exactly how WARC itself lays records
out on disk.

Layout under ``<root>``::

    iteration_0000.pack      bodies first observed in this phase,
                             concatenated in first-put order
    iteration_0000.pack.idx  sidecar index: one JSONL line per body
                             ({"offset", "sha256", "size"}, append order)

A pack is written once, by the phase that owns it, and never touched
again; the sidecar is written (atomically, write-then-rename) when the
phase closes, so a sidecar on disk always describes a complete pack.  A
phase that stored no new bodies leaves no pack at all.  Crash mid-phase
leaves a torn pack *without* a sidecar — invisible to readers, and the
archive's resume path drops it (:meth:`drop_phase`) before re-crawling
the phase, so a killed+resumed archive is byte-identical to an
uninterrupted twin's.

Reads load the sidecars lazily and serve :meth:`get` with a seek+read
into the owning pack.  Because bodies append in deterministic
first-seen order, two same-seed runs write byte-identical packs.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import BinaryIO, Dict, Iterator, List, Optional, Tuple

PACK_SUFFIX = ".pack"
SIDECAR_SUFFIX = ".pack.idx"


def body_sha256(data: bytes) -> str:
    """The content address of a body: lowercase SHA-256 hex."""
    return hashlib.sha256(data).hexdigest()


class BlobNotFound(KeyError):
    """A referenced content address has no blob in the store."""


class BlobStore:
    """A deduplicating, content-addressed pack store."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: digest -> (phase stem, offset, size) for every sealed body.
        #: Loaded lazily from the sidecars so read-only opens are free.
        self._entries: Optional[Dict[str, Tuple[str, int, int]]] = None
        # Open-phase state: the pack being appended to right now.
        self._phase: Optional[str] = None
        self._handle: Optional[BinaryIO] = None
        self._offset = 0
        #: digest -> (offset, size) within the open pack, in put order
        #: (dicts preserve insertion order — this IS the sidecar).
        self._phase_index: Dict[str, Tuple[int, int]] = {}
        self._read_handles: Dict[str, BinaryIO] = {}

    # -- paths ---------------------------------------------------------------

    def pack_path(self, phase: str) -> str:
        return os.path.join(self.root, phase + PACK_SUFFIX)

    def sidecar_path(self, phase: str) -> str:
        return os.path.join(self.root, phase + SIDECAR_SUFFIX)

    def phases(self) -> List[str]:
        """Stems of every pack on disk (sidecar-less torn packs included)."""
        stems = set()
        if os.path.isdir(self.root):
            for name in os.listdir(self.root):
                if name.endswith(SIDECAR_SUFFIX):
                    stems.add(name[: -len(SIDECAR_SUFFIX)])
                elif name.endswith(PACK_SUFFIX):
                    stems.add(name[: -len(PACK_SUFFIX)])
        return sorted(stems)

    # -- loading -------------------------------------------------------------

    def _load(self) -> Dict[str, Tuple[str, int, int]]:
        """Read every sidecar once; packs without one are torn → ignored."""
        if self._entries is None:
            entries: Dict[str, Tuple[str, int, int]] = {}
            for phase in self.phases():
                for digest, offset, size in self.sidecar_entries(phase):
                    entries.setdefault(digest, (phase, offset, size))
            self._entries = entries
        return self._entries

    def sidecar_entries(self, phase: str) -> Iterator[Tuple[str, int, int]]:
        try:
            with open(self.sidecar_path(phase), "r", encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if line:
                        row = json.loads(line)
                        yield row["sha256"], row["offset"], row["size"]
        except FileNotFoundError:
            return

    # -- phase lifecycle -----------------------------------------------------

    def begin_phase(self, phase: str) -> None:
        """Start a new pack; bodies put() from here land in it.  The pack
        file itself is created lazily on the first new body."""
        self.flush()
        self._phase = phase

    def flush(self) -> None:
        """Close the open pack and write its sidecar, making every body
        put() since :meth:`begin_phase` durable and readable by other
        stores.  Raises on write failure (e.g. a full disk) instead of
        sealing a hollow archive later."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            phase = self._phase
            assert phase is not None  # set before the handle ever opens
            sidecar = self.sidecar_path(phase)
            with open(sidecar + ".tmp", "w", encoding="utf-8") as f:
                for digest, (offset, size) in self._phase_index.items():
                    f.write(json.dumps(
                        {"offset": offset, "sha256": digest, "size": size},
                        sort_keys=True,
                    ) + "\n")
            os.replace(sidecar + ".tmp", sidecar)
            entries = self._load()
            for digest, (offset, size) in self._phase_index.items():
                entries.setdefault(digest, (phase, offset, size))
        self._phase = None
        self._offset = 0
        self._phase_index = {}

    def drop_phase(self, phase: str) -> None:
        """Remove a phase's pack and sidecar (resume pruning: the phase
        will be re-crawled and its pack rewritten identically)."""
        handle = self._read_handles.pop(phase, None)
        if handle is not None:
            handle.close()
        for path in (self.pack_path(phase), self.sidecar_path(phase)):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        self._entries = None  # force a reload past the dropped phase

    # -- write ---------------------------------------------------------------

    def put(self, data: bytes) -> Tuple[str, bool]:
        """Store ``data``; returns ``(digest, created)``.

        ``created`` is False when an identical body was already stored —
        the dedup hit the archive metrics report on.
        """
        digest = body_sha256(data)
        if digest in self._phase_index or digest in self._load():
            return digest, False
        if self._handle is None:
            if self._phase is None:
                # Standalone use without begin_phase(): pick the first
                # free auto stem so an earlier flushed pack survives.
                n = 0
                while os.path.exists(self.pack_path(f"pack_{n:04d}")):
                    n += 1
                self._phase = f"pack_{n:04d}"
            self._handle = open(self.pack_path(self._phase), "wb")
            self._offset = 0
        self._phase_index[digest] = (self._offset, len(data))
        self._handle.write(data)
        self._offset += len(data)
        return digest, True

    # -- read ----------------------------------------------------------------

    def _locate(self, digest: str) -> Tuple[str, int, int, bool]:
        """(phase, offset, size, open) for a digest; raises BlobNotFound."""
        in_phase = self._phase_index.get(digest)
        if in_phase is not None and self._phase is not None:
            offset, size = in_phase
            return self._phase, offset, size, True
        entry = self._load().get(digest)
        if entry is None:
            raise BlobNotFound(digest)
        phase, offset, size = entry
        return phase, offset, size, False

    def get(self, digest: str) -> bytes:
        phase, offset, size, is_open = self._locate(digest)
        if is_open and self._handle is not None:
            # Reading back from the pack we're appending to: push the
            # buffered tail to the OS first so the slice is visible.
            self._handle.flush()
        handle = self._read_handles.get(phase)
        if handle is None:
            try:
                handle = open(self.pack_path(phase), "rb")
            except FileNotFoundError:
                raise BlobNotFound(digest) from None
            self._read_handles[phase] = handle
        handle.seek(offset)
        data = handle.read(size)
        if len(data) != size:
            raise BlobNotFound(digest)
        return data

    def has(self, digest: str) -> bool:
        return digest in self._phase_index or digest in self._load()

    def size_of(self, digest: str) -> int:
        _phase, _offset, size, _open = self._locate(digest)
        return size

    # -- enumeration ---------------------------------------------------------

    def digests(self) -> Iterator[str]:
        """All stored content addresses (open phase included), sorted."""
        yield from sorted(set(self._load()) | set(self._phase_index))

    def total_bytes(self) -> int:
        entries = self._load()
        return (
            sum(size for _p, _o, size in entries.values())
            + sum(
                size for digest, (_o, size) in self._phase_index.items()
                if digest not in entries
            )
        )

    def count(self) -> int:
        return len(set(self._load()) | set(self._phase_index))

    # -- integrity -----------------------------------------------------------

    def verify(self) -> Iterator[str]:
        """Audit every pack against its sidecar: each body slice must
        re-hash to its address, offsets must tile the pack exactly, and
        every pack must have a sidecar.  Yields one problem per finding."""
        self.flush()  # an open phase would otherwise look torn
        seen: Dict[str, str] = {}
        for phase in self.phases():
            pack = self.pack_path(phase)
            if not os.path.exists(self.sidecar_path(phase)):
                yield f"pack {phase}: no sidecar index (torn phase?)"
                continue
            rows = list(self.sidecar_entries(phase))
            if not os.path.exists(pack):
                yield f"pack {phase}: pack file missing"
                continue
            expected = 0
            with open(pack, "rb") as handle:
                for digest, offset, size in rows:
                    if offset != expected:
                        yield (
                            f"pack {phase}: blob {digest} at offset "
                            f"{offset}, expected {expected}"
                        )
                    expected = offset + size
                    handle.seek(offset)
                    data = handle.read(size)
                    if len(data) != size:
                        yield (
                            f"pack {phase}: blob {digest} truncated "
                            f"({len(data)} of {size} bytes)"
                        )
                        continue
                    actual = body_sha256(data)
                    if actual != digest:
                        yield (
                            f"blob {digest} is corrupt: content hashes "
                            f"to {actual}"
                        )
                    if digest in seen:
                        yield (
                            f"blob {digest}: stored twice "
                            f"(packs {seen[digest]} and {phase})"
                        )
                    seen.setdefault(digest, phase)
            actual_size = os.path.getsize(pack)
            if actual_size != expected:
                yield (
                    f"pack {phase}: {actual_size} bytes on disk, sidecar "
                    f"records {expected}"
                )


__all__ = ["BlobNotFound", "BlobStore", "body_sha256"]
