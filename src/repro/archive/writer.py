"""The archive writer: capture sink, per-phase indexes, sealed manifest.

An :class:`ArchiveWriter` is handed to :class:`~repro.web.client.HttpClient`
as its ``capture`` hook and to :class:`~repro.crawler.crawler.IterationCrawl`
as its ``archive``.  The client calls :meth:`record_exchange` for every
response *as observed on the wire* (before retries or refetches repair
anything) and :meth:`record_outcome` for what each top-level request
delivered; the crawl drives the phase lifecycle
(:meth:`begin_iteration` / :meth:`end_iteration`), the pipeline opens the
post-collection phase and :meth:`seal`\\ s the archive at the end of the
run.

Layout under ``archive_dir``::

    blobs/iteration_0000.pack     bodies first observed in this phase,
                                  deduplicated, in first-put order
    blobs/iteration_0000.pack.idx sidecar: offset/sha256/size per body
    index/iteration_0000.jsonl    one ExchangeRecord line per exchange
    index/post_collection.jsonl
    archive.json                  sealed manifest: config, counts,
                                  per-file SHA-256s, and a hash chain

The manifest's ``chain_sha256`` folds every index file's hash in phase
order, then every pack's and sidecar's, so a single flipped byte
anywhere invalidates the seal — ``repro archive verify`` re-derives the
whole chain.

Resume: a killed archived run leaves closed index files (and packs) for
every iteration its checkpoint covers plus (possibly) torn ones for the
iteration it died in.  :meth:`begin_resume` prunes everything at or past
the resume point — indexes and packs together, since a pack holds
exactly the bodies its phase first observed — so a killed+resumed run
seals an archive byte-identical to an uninterrupted twin's.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from typing import Dict, List, Optional, Set, TextIO, Tuple

from repro.archive.blobstore import BlobStore
from repro.archive.records import ROLE_EXCHANGE, ROLE_OUTCOME, ArchiveError
from repro.obs.schemas import ARCHIVE_SCHEMA
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

ARCHIVE_MANIFEST = "archive.json"
INDEX_DIRNAME = "index"
BLOBS_DIRNAME = "blobs"
POST_COLLECTION_PHASE = "post_collection"
#: Seed value of the manifest hash chain.
CHAIN_SEED = "0" * 64


def iteration_phase(iteration: int) -> str:
    return f"iteration_{iteration:04d}"


def index_filename(phase: str) -> str:
    return f"{phase}.jsonl"


def phase_sort_key(filename: str) -> Tuple[int, int, str]:
    """Deterministic phase order: iterations numerically, then post."""
    stem = filename[:-len(".jsonl")] if filename.endswith(".jsonl") else filename
    if stem.startswith("iteration_"):
        try:
            return (0, int(stem.split("_", 1)[1]), stem)
        except ValueError:
            pass
    return (1, 0, stem)


def file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def chain_sha256(index_hashes: List[str]) -> str:
    """Fold per-index hashes into one chain hash (order-sensitive)."""
    chain = CHAIN_SEED
    for file_hash in index_hashes:
        chain = hashlib.sha256((chain + file_hash).encode("ascii")).hexdigest()
    return chain


class ArchiveWriter:
    """Writes one study run's HTTP traffic into a sealed archive."""

    def __init__(
        self,
        root: str,
        clock,
        telemetry: Optional[Telemetry] = None,
        resume: bool = False,
    ) -> None:
        self.root = root
        self._clock = clock
        self.telemetry = telemetry or NULL_TELEMETRY
        self._index_dir = os.path.join(root, INDEX_DIRNAME)
        if not resume:
            # A fresh (non-resume) run must not append to a stale archive,
            # exactly like the crawl checkpoint's fresh-run semantics.
            for stale in (
                self._index_dir,
                os.path.join(root, BLOBS_DIRNAME),
            ):
                shutil.rmtree(stale, ignore_errors=True)
            try:
                os.remove(os.path.join(root, ARCHIVE_MANIFEST))
            except FileNotFoundError:
                pass
        os.makedirs(self._index_dir, exist_ok=True)
        self.blobs = BlobStore(os.path.join(root, BLOBS_DIRNAME))
        self._seq = 0
        self._bodies_stored = 0
        # Unique blobs, tracked incrementally: the live dedup gauge is
        # updated on every exchange, and a BlobStore.count() there would
        # rescan the whole store per request (quadratic in crawl size).
        self._blob_count = self.blobs.count() if resume else 0
        self._phase: Optional[str] = None
        self._handle: Optional[TextIO] = None
        # Per-index [entries, outcomes, exchange bodies] and the set of
        # every referenced digest, tallied as records are written (and
        # recounted from the kept files once on resume) so seal() never
        # has to re-parse the indexes it just wrote.
        self._index_stats: Dict[str, List[int]] = {}
        self._current_stats: List[int] = [0, 0, 0]
        self._referenced: Set[str] = set()
        self.sealed = False
        metrics = self.telemetry.metrics
        self._m_exchanges = metrics.counter(
            "archive_exchanges_total",
            "archived HTTP exchanges, by index role",
            labels=("role",),
        )
        self._m_blobs = metrics.counter(
            "archive_blobs_total", "unique response bodies stored"
        )
        self._m_bytes = metrics.counter(
            "archive_bytes_total", "bytes of unique response bodies stored"
        )
        self._m_dedup = metrics.gauge(
            "archive_dedup_ratio",
            "share of archived bodies served from the dedup store",
        )

    # -- phase lifecycle -----------------------------------------------------

    def begin_resume(self, completed_iterations: int) -> None:
        """Prune index files the resumed crawl will re-produce.

        Everything from the resume point on — the (possibly torn) index
        and pack of the iteration the run died in, later iterations, and
        the post-collection phase — is deleted; the resumed run rewrites
        it identically.  The sequence counter continues from the last
        kept entry so twin archives number their exchanges identically.
        """
        self._close_phase()

        def keep(stem: str) -> bool:
            return (
                stem.startswith("iteration_")
                and stem.split("_", 1)[1].isdigit()
                and int(stem.split("_", 1)[1]) < completed_iterations
            )

        for name in sorted(os.listdir(self._index_dir)):
            if name.endswith(".jsonl") and not keep(name[:-len(".jsonl")]):
                os.remove(os.path.join(self._index_dir, name))
        for stem in self.blobs.phases():
            if not keep(stem):
                self.blobs.drop_phase(stem)
        self._blob_count = self.blobs.count()
        self._seq = 0
        self._bodies_stored = 0
        self._index_stats = {}
        self._referenced = set()
        for name in self._index_files():
            stats = self._index_stats[name] = [0, 0, 0]
            path = os.path.join(self._index_dir, name)
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    payload = json.loads(line)
                    self._seq = max(self._seq, payload["seq"] + 1)
                    stats[0] += 1
                    role = payload.get("role")
                    if role == ROLE_OUTCOME:
                        stats[1] += 1
                    digest = payload.get("sha256")
                    if digest is not None:
                        self._referenced.add(digest)
                        if role == ROLE_EXCHANGE:
                            stats[2] += 1
                            self._bodies_stored += 1

    def begin_iteration(self, iteration: int) -> None:
        self._open_phase(iteration_phase(iteration))

    def end_iteration(self, iteration: int) -> None:
        """Flush + close the iteration's index before the checkpoint
        claims the iteration complete."""
        del iteration
        self._close_phase()

    def begin_phase(self, phase: str) -> None:
        self._open_phase(phase)

    def _open_phase(self, phase: str) -> None:
        self._close_phase()
        self._phase = phase
        self.blobs.begin_phase(phase)
        path = os.path.join(self._index_dir, index_filename(phase))
        self._handle = open(path, "w", encoding="utf-8")
        # "w" truncated the file, so its tallies restart too.
        self._current_stats = self._index_stats[index_filename(phase)] = [0, 0, 0]

    def _close_phase(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._phase = None
        # Every blob the just-closed index references must be durable
        # (pack closed, sidecar written) before the checkpoint may claim
        # the phase complete.
        self.blobs.flush()

    # -- capture hook (called by HttpClient) ---------------------------------

    def record_exchange(
        self,
        *,
        client: str,
        method: str,
        url: str,
        params: Optional[Dict[str, str]] = None,
        form: Optional[Dict[str, str]] = None,
        response=None,
        error: Optional[BaseException] = None,
        note: str = "",
    ) -> None:
        """Archive a response exactly as observed on the wire."""
        self._record(
            ROLE_EXCHANGE, client, method, url, params, form,
            response=response, error=error, note=note,
        )

    def record_outcome(
        self,
        *,
        client: str,
        method: str,
        url: str,
        params: Optional[Dict[str, str]] = None,
        form: Optional[Dict[str, str]] = None,
        response=None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Archive what one top-level request delivered to its caller."""
        self._record(
            ROLE_OUTCOME, client, method, url, params, form,
            response=response, error=error,
        )

    def _record(
        self,
        role: str,
        client: str,
        method: str,
        url: str,
        params: Optional[Dict[str, str]],
        form: Optional[Dict[str, str]],
        response=None,
        error: Optional[BaseException] = None,
        note: str = "",
    ) -> None:
        if self.sealed:
            raise ArchiveError("archive is sealed; no further captures")
        if self._handle is None:
            raise ArchiveError(
                f"capture before any archive phase began ({method} {url})"
            )
        # The payload is serialized directly rather than through an
        # ExchangeRecord: this runs once per HTTP exchange, and building
        # the dataclass only to re-read its 18 fields in to_json() is a
        # measurable share of the crawl's archive overhead.  The key set
        # MUST stay in lockstep with ExchangeRecord — the read side
        # (replay, verify, diff) parses these lines via from_json, so any
        # drift fails the archive test suite.
        payload = {
            "client": client,
            "elapsed": 0.0,
            "error": None,
            "form": dict(form or {}),
            "headers": {},
            "method": method.upper(),
            "note": note,
            "params": dict(params or {}),
            "phase": self._phase or "",
            "response_url": "",
            "role": role,
            "seq": self._seq,
            "set_cookies": {},
            "sha256": None,
            "sim_at": self._clock.now(),
            "size": 0,
            "status": None,
            "url": url,
        }
        self._seq += 1
        if error is not None:
            payload["error"] = {
                "type": type(error).__name__,
                "message": str(error),
            }
        if response is not None:
            # The outcome record re-archives the very Response object its
            # final exchange already recorded; caching the digest on the
            # object halves the hot path's hashing work.  The has() guard
            # covers a response cached by some *other* writer's capture.
            blob = getattr(response, "_archive_blob", None)
            if blob is not None and self.blobs.has(blob[0]):
                digest, size = blob
            else:
                body = response.body.encode("utf-8")
                digest, created = self.blobs.put(body)
                size = len(body)
                response._archive_blob = (digest, size)
                if created:
                    self._blob_count += 1
                    self._m_blobs.inc()
                    self._m_bytes.inc(size)
            self._bodies_stored += 1
            if role == ROLE_EXCHANGE:
                # Dedup only counts wire-observed bodies; outcomes re-point
                # at blobs their exchanges already stored.
                self._m_dedup.set(self._dedup_ratio_live())
            payload["status"] = response.status
            payload["sha256"] = digest
            payload["size"] = size
            payload["headers"] = dict(response.headers)
            payload["set_cookies"] = dict(response.set_cookies)
            payload["response_url"] = response.url
            payload["elapsed"] = response.elapsed
            self._referenced.add(digest)
            if role == ROLE_EXCHANGE:
                self._current_stats[2] += 1
        self._m_exchanges.inc(role=role)
        self._current_stats[0] += 1
        if role == ROLE_OUTCOME:
            self._current_stats[1] += 1
        # Same bytes ExchangeRecord.to_json produces: sorted keys, default
        # separators — index files stay canonical either way.
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def _dedup_ratio_live(self) -> float:
        stored = self._bodies_stored
        if stored <= 0:
            return 0.0
        return 1.0 - (self._blob_count / stored)

    # -- sealing -------------------------------------------------------------

    def _index_files(self) -> List[str]:
        return sorted(
            (
                name for name in os.listdir(self._index_dir)
                if name.endswith(".jsonl")
            ),
            key=phase_sort_key,
        )

    def seal(self, config) -> dict:
        """Close the archive: GC unreferenced blobs, hash-chain the
        indexes, write ``archive.json``.  Returns the manifest dict.

        ``config`` is the run's StudyConfig (duck-typed); the subset a
        replay needs to rebuild the world is embedded in the manifest.
        """
        self._close_phase()
        # Counts come from the incremental tallies (kept identical to the
        # files by _record, and recounted from disk once on resume); the
        # only per-byte work left at seal time is hashing.
        referenced: Set[str] = set(self._referenced)
        indexes: List[dict] = []
        exchanges_total = 0
        outcomes_total = 0
        bodies_total = 0
        for name in self._index_files():
            path = os.path.join(self._index_dir, name)
            entries, outcomes, bodies = self._index_stats.get(name, (0, 0, 0))
            exchanges_total += entries
            outcomes_total += outcomes
            bodies_total += bodies
            indexes.append({
                "name": name,
                "sha256": file_sha256(path),
                "entries": entries,
                "outcomes": outcomes,
            })
        # Packs hold exactly the bodies their phase first observed, and
        # begin_resume prunes pack and index together — so stored and
        # referenced digests must agree exactly.  A mismatch means the
        # archive is lying about its own contents: refuse to seal it.
        stored = set(self.blobs.digests())
        if stored != referenced:
            raise ArchiveError(
                f"refusing to seal: {len(stored - referenced)} stored "
                f"bodies unreferenced, {len(referenced - stored)} "
                "referenced bodies missing"
            )
        packs: List[dict] = []
        for stem in sorted(self.blobs.phases(), key=phase_sort_key):
            rows = list(self.blobs.sidecar_entries(stem))
            packs.append({
                "name": stem,
                "sha256": file_sha256(self.blobs.pack_path(stem)),
                "idx_sha256": file_sha256(self.blobs.sidecar_path(stem)),
                "blobs": len(rows),
                "bytes": sum(size for _d, _o, size in rows),
            })
        blobs_total = self.blobs.count()
        bytes_total = self.blobs.total_bytes()
        dedup_ratio = (
            1.0 - (blobs_total / bodies_total) if bodies_total else 0.0
        )
        chain_hashes = [i["sha256"] for i in indexes]
        for pack in packs:
            chain_hashes += [pack["sha256"], pack["idx_sha256"]]
        manifest = {
            "schema": ARCHIVE_SCHEMA,
            "config": {
                "seed": config.seed,
                "scale": config.scale,
                "iterations": config.iterations,
                "include_underground": config.include_underground,
                "chaos_profile": getattr(config, "chaos_profile", "off"),
            },
            "sim_seconds": self._clock.now(),
            "indexes": indexes,
            "packs": packs,
            "chain_sha256": chain_sha256(chain_hashes),
            "exchanges_total": exchanges_total,
            "outcomes_total": outcomes_total,
            "bodies_total": bodies_total,
            "blobs_total": blobs_total,
            "bytes_total": bytes_total,
            "dedup_ratio": round(dedup_ratio, 6),
            "sealed": True,
        }
        path = os.path.join(self.root, ARCHIVE_MANIFEST)
        temp_path = path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, path)
        self.sealed = True
        self._m_dedup.set(round(dedup_ratio, 6))
        self.telemetry.events.emit(
            "archive.sealed",
            dir=self.root,
            blobs=blobs_total,
            bytes=bytes_total,
            exchanges=exchanges_total,
        )
        return manifest

    def summary(self, manifest: dict) -> dict:
        """The run-manifest / ``repro trace`` section for this archive."""
        return {
            "dir": self.root,
            "sealed": manifest["sealed"],
            "exchanges_total": manifest["exchanges_total"],
            "outcomes_total": manifest["outcomes_total"],
            "blobs_total": manifest["blobs_total"],
            "bytes_total": manifest["bytes_total"],
            "dedup_ratio": manifest["dedup_ratio"],
            "chain_sha256": manifest["chain_sha256"],
        }


__all__ = [
    "ARCHIVE_MANIFEST",
    "ARCHIVE_SCHEMA",
    "ArchiveWriter",
    "BLOBS_DIRNAME",
    "CHAIN_SEED",
    "INDEX_DIRNAME",
    "POST_COLLECTION_PHASE",
    "chain_sha256",
    "file_sha256",
    "index_filename",
    "iteration_phase",
    "phase_sort_key",
]
