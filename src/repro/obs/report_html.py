"""``repro health DIR`` — a single-file, zero-dependency HTML dashboard.

Renders one telemetry directory (see :class:`~repro.obs.rundir.RunDir`)
into a self-contained HTML page: run header, fidelity scorecard with
in-band/out-of-band gauges, watchdog findings, per-stage durations,
per-marketplace crawl stats, per-host HTTP latency quantiles and
retry/politeness overhead, and the event breakdown.  Styling is inline
CSS; no JavaScript, no external assets, so the file can be archived as
a CI artifact and opened anywhere.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import exported_histogram_quantile
from repro.obs.prof import profile_stage_coverage
from repro.obs.rundir import RunDir

REPORT_FILENAME = "health.html"

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a202c; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { border: 1px solid #cbd5e0; padding: .25rem .6rem;
         font-size: .85rem; text-align: left; }
th { background: #edf2f7; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #276749; } .fail { color: #9b2c2c; font-weight: 600; }
.warning { color: #975a16; } .critical { color: #9b2c2c; font-weight: 600; }
.meter { background: #e2e8f0; width: 140px; height: .75rem;
         display: inline-block; position: relative; }
.meter > span { background: #48bb78; height: 100%; display: block; }
.meter.out > span { background: #f56565; }
.muted { color: #718096; font-size: .8rem; }
"""


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]],
           numeric: Sequence[int] = ()) -> str:
    head = "".join(f"<th>{html.escape(h)}</th>" for h in headers)
    body: List[str] = []
    for row in rows:
        cells = []
        for index, cell in enumerate(row):
            css = ' class="num"' if index in numeric else ""
            cells.append(f"<td{css}>{cell}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


def _meter(value: float, low: float, high: float) -> str:
    """A filled bar showing where a value sits; red when out of band."""
    span = max(high - low, 1e-9)
    fill = min(max((value - low) / span, 0.0), 1.0) * 100.0
    out = "" if low <= value <= high else " out"
    return f'<div class="meter{out}"><span style="width:{fill:.0f}%"></span></div>'


def _section_header(run: RunDir) -> str:
    manifest = run.manifest or {}
    bits: List[str] = [f"<h1>Run health: {html.escape(run.path)}</h1>"]
    meta: List[str] = []
    config = manifest.get("config") or {}
    for key in sorted(config):
        meta.append(f"{key}={config[key]}")
    if manifest.get("git"):
        meta.append(f"git={manifest['git']}")
    if manifest.get("simulated_seconds") is not None:
        meta.append(f"simulated_seconds={manifest['simulated_seconds']:,.0f}")
    if meta:
        bits.append(f'<p class="muted">{html.escape(", ".join(meta))}</p>')
    return "\n".join(bits)


def _section_scorecard(run: RunDir) -> str:
    card = run.scorecard
    if not card:
        return "<h2>Fidelity scorecard</h2><p>no scorecard recorded</p>"
    status = (
        '<span class="ok">PASS</span>' if card.get("passed")
        else '<span class="fail">FAIL</span>'
    )
    rows = []
    for entry in card.get("entries", []):
        passed = entry.get("passed", False)
        rows.append([
            html.escape(entry.get("name", "")),
            html.escape(entry.get("kind", "")),
            f"{entry.get('value', 0.0):.4f}",
            f"[{entry.get('low')}, {entry.get('high')}]",
            _meter(entry.get("value", 0.0), entry.get("low", 0.0),
                   entry.get("high", 1.0)),
            '<span class="ok">ok</span>' if passed
            else '<span class="fail">out of band</span>',
            html.escape(entry.get("detail", "")),
        ])
    return (
        f"<h2>Fidelity scorecard {status}</h2>"
        + _table(["metric", "kind", "value", "band", "", "status", "detail"],
                 rows, numeric=(2,))
    )


def _section_watchdog(run: RunDir) -> str:
    summary = run.watchdog_summary()
    if not summary:
        return "<h2>Watchdog</h2><p>no watchdog summary recorded</p>"
    counts = summary.get("counts") or {}
    label = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items())) or "clean"
    rows = []
    for finding in summary.get("findings", []):
        severity = finding.get("severity", "warning")
        rows.append([
            f'<span class="{html.escape(severity)}">{html.escape(severity)}</span>',
            html.escape(finding.get("check", "")),
            html.escape(finding.get("subject", "")),
            html.escape(str(finding.get("iteration", ""))),
            html.escape(finding.get("message", "")),
        ])
    body = (
        _table(["severity", "check", "subject", "iteration", "message"], rows)
        if rows else '<p class="ok">no findings — crawl looked healthy</p>'
    )
    return f"<h2>Watchdog ({html.escape(label)})</h2>" + body


def _section_stages(run: RunDir) -> str:
    if not run.stages:
        return ""
    rows = [
        [
            html.escape(stage.get("name", "")),
            f"{stage.get('sim_seconds', 0.0):,.1f}",
            f"{stage.get('wall_seconds', 0.0):.3f}",
            str(stage.get("spans", 0)),
        ]
        for stage in run.stages
    ]
    return "<h2>Stage durations</h2>" + _table(
        ["stage", "sim s", "wall s", "spans"], rows, numeric=(1, 2, 3)
    )


def _section_crawl(run: RunDir) -> str:
    manifest = run.manifest or {}
    reports = (manifest.get("crawl") or {}).get("reports") or []
    if not reports:
        return ""
    totals: Dict[str, List[int]] = {}
    for report in reports:
        row = totals.setdefault(report["marketplace"], [0, 0, 0, 0])
        row[0] += report.get("pages_fetched", 0)
        row[1] += report.get("offers_found", 0)
        row[2] += report.get("offers_parsed", 0)
        row[3] += report.get("errors", 0)
    rows = [
        [html.escape(name)] + [str(v) for v in values]
        for name, values in sorted(totals.items())
    ]
    return "<h2>Crawl totals (summed over iterations)</h2>" + _table(
        ["marketplace", "pages", "offers found", "offers parsed", "errors"],
        rows, numeric=(1, 2, 3, 4),
    )


def _section_http(run: RunDir) -> str:
    latency = run.histogram_series("http_request_sim_seconds")
    scalars = run.scalar_metrics()
    if not latency and not scalars:
        return ""
    waits: Dict[str, List[float]] = {}
    for (name, labels), value in scalars.items():
        if name not in ("http_retry_wait_seconds_total",
                        "http_politeness_wait_seconds_total"):
            continue
        host = dict(labels).get("host", "")
        slot = waits.setdefault(host, [0.0, 0.0])
        slot[0 if name.startswith("http_retry") else 1] += value
    rows = []
    hosts = sorted(
        {(s.get("labels") or {}).get("host", "") for s in latency} | set(waits)
    )
    series_by_host = {
        (s.get("labels") or {}).get("host", ""): s for s in latency
    }
    for host in hosts:
        series = series_by_host.get(host)
        p50 = exported_histogram_quantile(series, 0.5) if series else 0.0
        p95 = exported_histogram_quantile(series, 0.95) if series else 0.0
        count = int(series.get("count", 0)) if series else 0
        retry, polite = waits.get(host, [0.0, 0.0])
        rows.append([
            html.escape(host), str(count), f"{p50:.3f}", f"{p95:.3f}",
            f"{retry:,.1f}", f"{polite:,.1f}",
        ])
    if not rows:
        return ""
    return "<h2>HTTP client, per host (simulated seconds)</h2>" + _table(
        ["host", "requests", "p50 latency", "p95 latency",
         "retry wait", "politeness wait"],
        rows, numeric=(1, 2, 3, 4, 5),
    )


def _section_profile(run: RunDir) -> str:
    """Hot stages (by wall time) and memory peaks from ``profile.json``."""
    profile = run.profile
    if not profile:
        return ""
    phases = profile.get("phases") or []
    hot = sorted(phases, key=lambda p: -p.get("wall_seconds", 0.0))[:10]
    rows = []
    for phase in hot:
        throughput = phase.get("throughput") or {}
        rate = ", ".join(
            f"{key.replace('_per_second', '')}: {value:,.0f}/s"
            for key, value in sorted(throughput.items())
        )
        rows.append([
            html.escape(phase.get("name", "")),
            f"{phase.get('wall_seconds', 0.0):.3f}",
            f"{phase.get('sim_seconds', 0.0):,.1f}",
            html.escape(rate),
        ])
    sections = ["<h2>Hot stages (profile.json, by wall time)</h2>"]
    missing = profile_stage_coverage(profile)
    if missing:
        sections.append(
            '<p class="fail">profile missing analysis stages: '
            f"{html.escape(', '.join(missing))}</p>"
        )
    sections.append(_table(
        ["phase", "wall s", "sim s", "throughput"], rows, numeric=(1, 2)
    ))
    mem_rows = []
    for phase in sorted(
        phases,
        key=lambda p: -((p.get("memory") or {}).get("peak_bytes", 0)),
    )[:10]:
        memory = phase.get("memory") or {}
        top = memory.get("top_allocations") or []
        top_site = top[0]["site"] if top else ""
        mem_rows.append([
            html.escape(phase.get("name", "")),
            f"{memory.get('peak_bytes', 0) / 1e6:,.1f}",
            f"{memory.get('net_bytes', 0) / 1e6:,.1f}",
            html.escape(top_site),
        ])
    if mem_rows:
        totals_mem = (profile.get("totals") or {}).get("memory") or {}
        label_bits = []
        if totals_mem.get("tracemalloc_peak_bytes"):
            label_bits.append(
                f"tracemalloc peak {totals_mem['tracemalloc_peak_bytes'] / 1e6:,.1f} MB"
            )
        if totals_mem.get("rss_max_kb"):
            label_bits.append(f"max RSS {totals_mem['rss_max_kb'] / 1024:,.1f} MB")
        label = f" ({html.escape(', '.join(label_bits))})" if label_bits else ""
        sections.append(f"<h2>Memory{label}</h2>")
        sections.append(_table(
            ["phase", "peak MB", "net MB", "top allocation site"],
            mem_rows, numeric=(1, 2),
        ))
    return "\n".join(sections)


def _section_events(run: RunDir) -> str:
    counts = run.event_kind_counts()
    if not counts:
        return "<h2>Events</h2><p>none recorded</p>"
    rows = [[html.escape(kind), str(count)] for kind, count in counts.items()]
    return "<h2>Events by kind</h2>" + _table(["kind", "count"], rows,
                                              numeric=(1,))


def render_health_html(run: RunDir) -> str:
    """The full dashboard page for one loaded telemetry directory."""
    sections = [
        _section_header(run),
        _section_scorecard(run),
        _section_watchdog(run),
        _section_stages(run),
        _section_profile(run),
        _section_crawl(run),
        _section_http(run),
        _section_events(run),
    ]
    body = "\n".join(section for section in sections if section)
    return (
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>repro health</title><style>{_CSS}</style></head>"
        f"<body>\n{body}\n</body></html>\n"
    )


# ---------------------------------------------------------------------------
# fleet view (cross-run registry)
# ---------------------------------------------------------------------------

FLEET_FILENAME = "fleet.html"


def _fleet_runs_section(runs) -> str:
    if not runs:
        return "<h2>Runs</h2><p>no runs registered</p>"
    rows = []
    for run in runs:
        passed = run.scorecard_passed
        status = (
            '<span class="muted">—</span>' if passed is None
            else '<span class="ok">PASS</span>' if passed
            else '<span class="fail">FAIL</span>'
        )
        rows.append([
            str(run.seq),
            html.escape(run.run_id),
            html.escape(str(run.seed)),
            html.escape(run.config_hash),
            html.escape(run.chaos or "off"),
            html.escape(run.git or ""),
            status,
            html.escape(run.ingested_at),
        ])
    return "<h2>Runs (ingestion order)</h2>" + _table(
        ["seq", "run id", "seed", "config", "chaos", "git",
         "scorecard", "ingested at"],
        rows, numeric=(0,),
    )


def _fleet_trend_section(title: str, series_list) -> str:
    if not series_list:
        return ""
    from repro.obs.trends import mad, median, sparkline

    rows = []
    for series in series_list:
        values = series.values
        rows.append([
            html.escape(series.name),
            str(series.n),
            f"{min(values):g}",
            f"{median(values):g}",
            f"{mad(values):g}",
            f"{series.latest:g}",
            f"{series.delta:+g}",
            f'<span class="spark">{html.escape(sparkline(values))}</span>',
        ])
    return f"<h2>{html.escape(title)}</h2>" + _table(
        ["metric", "n", "min", "median", "mad", "latest", "delta", "trend"],
        rows, numeric=(1, 2, 3, 4, 5, 6),
    )


def _fleet_alerts_section(report) -> str:
    if report is None:
        return ""
    if not report.fired:
        return (
            "<h2>Alerts</h2><p class=\"ok\">no alerts — latest run "
            f"{html.escape(report.run_id)} is within baseline "
            f"({report.runs_considered} run(s) considered)</p>"
        )
    rows = [
        [
            f'<span class="{html.escape(alert.severity)}">'
            f"{html.escape(alert.severity)}</span>",
            html.escape(alert.rule),
            html.escape(alert.metric),
            f"{alert.value:g}",
            f"{alert.threshold:g}",
            html.escape(alert.message),
        ]
        for alert in report.alerts
    ]
    return (
        f"<h2>Alerts ({len(report.alerts)} fired on "
        f"{html.escape(report.run_id)})</h2>"
        + _table(["severity", "rule", "metric", "value", "threshold",
                  "message"], rows, numeric=(3, 4))
    )


def render_fleet_html(runs, series_list, alert_report=None,
                      registry_path: str = "") -> str:
    """The cross-run dashboard: the run roster, sparkline trend tables
    over the registry's metric series (deterministic series first,
    machine-dependent wall/memory series separately), and the latest
    alert evaluation.  Self-contained like the single-run page."""
    deterministic = [s for s in series_list if not s.machine_dependent]
    machine = [s for s in series_list if s.machine_dependent]
    title = "Fleet view"
    if registry_path:
        title += f": {html.escape(registry_path)}"
    sections = [
        f"<h1>{title}</h1>",
        f'<p class="muted">{len(runs)} run(s), '
        f"{len(series_list)} metric series</p>",
        _fleet_alerts_section(alert_report),
        _fleet_runs_section(runs),
        _fleet_trend_section("Trends (deterministic metrics)", deterministic),
        _fleet_trend_section(
            "Trends (machine-dependent: wall clock, memory)", machine),
    ]
    body = "\n".join(section for section in sections if section)
    css = _CSS + ".spark { font-family: monospace; letter-spacing: 1px; }"
    return (
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>repro fleet</title><style>{css}</style></head>"
        f"<body>\n{body}\n</body></html>\n"
    )


def health_problems(run: RunDir) -> List[str]:
    """Every reason the run counts as unhealthy, one line each.

    Checks: scorecard failed, critical watchdog findings, and — when the
    run was profiled — ``profile.json`` missing any of the expected
    analysis stages (surfaced like ``analysis_stage_coverage``).
    """
    problems: List[str] = []
    if run.scorecard and not run.scorecard.get("passed", False):
        failed = [
            entry.get("name", "")
            for entry in run.scorecard.get("entries", [])
            if not entry.get("passed", False)
        ]
        problems.append(
            "scorecard failed"
            + (f" ({', '.join(failed)})" if failed else "")
        )
    summary = run.watchdog_summary() or {}
    critical = (summary.get("counts") or {}).get("critical")
    if critical:
        problems.append(f"watchdog reported {critical} critical finding(s)")
    if run.profile is not None:
        missing = profile_stage_coverage(run.profile)
        if missing:
            problems.append(
                "profile.json missing analysis stage(s): "
                + ", ".join(missing)
            )
    return problems


def health_status(run: RunDir) -> bool:
    """True when :func:`health_problems` finds nothing wrong."""
    return not health_problems(run)


__all__ = [
    "FLEET_FILENAME",
    "REPORT_FILENAME",
    "health_problems",
    "health_status",
    "render_fleet_html",
    "render_health_html",
]
