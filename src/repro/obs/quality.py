"""The study-fidelity scorecard.

The paper audits its own measurement quality throughout (manual vetting
of 25 posts/cluster in §6, the visible-vs-total accounting of Table 2,
the §8 status sweep).  This module automates that audit for the
reproduction: at the end of every telemetry-enabled :class:`Study` run it
scores the pipeline's *outputs* against the synthetic world's
ground-truth labels (scam subtypes, network clusters, moderation fates,
underground reuse groups) and against the paper-shape calibration
targets (listing shares, price medians, Table 2/5/7/8 ratios).

The result is a :class:`Scorecard` — a flat list of named
:class:`ScoreEntry` rows, each with a value and an acceptance band —
written as ``scorecard.json`` into the telemetry directory and exposed
as ``fidelity_score{metric=...}`` gauges in the metrics registry, so
``repro diff`` and CI can gate on it.

Determinism: every score derives from the dataset and world (both
seed-deterministic) and floats are rounded before serialization, so two
same-seed runs produce byte-identical ``scorecard.json`` files.

Analysis imports are deferred into function bodies: ``repro.analysis``
imports ``repro.core.dataset``, and ``repro.core.pipeline`` imports this
module, so a top-level import would be circular.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.obs.schemas import SCORECARD_SCHEMA
from repro.util.fileio import atomic_write_json

SCORECARD_FILENAME = "scorecard.json"

#: Acceptance bands per score (low, high), inclusive.  Ground-truth
#: precision/recall scores cap at 1.0; calibration scores are measured
#: ratios with a band wide enough for small-scale sampling noise but
#: tight enough to catch a broken pipeline stage (see tests).
DEFAULT_THRESHOLDS: Dict[str, Tuple[float, float]] = {
    # -- ground truth -----------------------------------------------------
    "scam_account_precision": (0.60, 1.0),
    "scam_account_recall": (0.50, 1.0),
    "scam_post_precision": (0.60, 1.0),
    "scam_post_recall": (0.40, 1.0),
    "network_pair_precision": (0.80, 1.0),
    "network_pair_recall": (0.60, 1.0),
    "efficacy_precision": (0.95, 1.0),
    "efficacy_recall": (0.95, 1.0),
    "underground_reuse_precision": (0.60, 1.0),
    "underground_reuse_recall": (0.40, 1.0),
    # -- paper-shape calibration -----------------------------------------
    "calib_visible_listing_share": (0.18, 0.45),  # Table 2: ~0.30
    "calib_listing_share_l1": (0.0, 0.20),  # Table 1 marketplace shares
    "calib_scam_posts_per_account": (1.2, 12.0),  # Table 5: ~4.99
    "calib_clustered_account_fraction": (0.005, 0.30),  # Table 7: ~0.047
    "calib_efficacy_rate": (0.08, 0.40),  # Table 8: 0.1971
    "calib_price_median_ratio_facebook": (0.25, 4.0),
    "calib_price_median_ratio_instagram": (0.25, 4.0),
    "calib_price_median_ratio_tiktok": (0.25, 4.0),
    "calib_price_median_ratio_x": (0.25, 4.0),
    "calib_price_median_ratio_youtube": (0.25, 4.0),
    # -- data-plane coverage ----------------------------------------------
    #: Share of collected records that survived contract quarantine.
    "contract_record_coverage": (0.95, 1.0),
    #: Share of the nine analysis stages that produced a report — any
    #: degraded stage takes the scorecard out of band.
    "analysis_stage_coverage": (1.0, 1.0),
}


@dataclass(frozen=True)
class ScoreEntry:
    """One scorecard row: a named value inside an acceptance band."""

    name: str
    kind: str  # "ground_truth" | "calibration"
    value: float
    low: float
    high: float
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.low <= self.value <= self.high

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "value": round(self.value, 6),
            "low": self.low,
            "high": self.high,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class Scorecard:
    """The full fidelity scorecard of one study run."""

    seed: int
    scale: float
    entries: List[ScoreEntry] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(entry.passed for entry in self.entries)

    def failures(self) -> List[ScoreEntry]:
        return [entry for entry in self.entries if not entry.passed]

    def entry(self, name: str) -> Optional[ScoreEntry]:
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        return None

    def to_dict(self) -> dict:
        return {
            "schema": SCORECARD_SCHEMA,
            "seed": self.seed,
            "scale": self.scale,
            "passed": self.passed,
            "n_entries": len(self.entries),
            "n_failed": len(self.failures()),
            "entries": [
                entry.to_dict()
                for entry in sorted(self.entries, key=lambda e: e.name)
            ],
        }

    def register_gauges(self, metrics) -> None:
        """Expose every entry as ``fidelity_score`` / ``fidelity_passed``
        gauges in a metrics registry (live or null)."""
        score = metrics.gauge(
            "fidelity_score", "scorecard value, by metric", labels=("metric",)
        )
        ok = metrics.gauge(
            "fidelity_passed", "1 when the scorecard metric is in band",
            labels=("metric",),
        )
        for entry in self.entries:
            score.set(round(entry.value, 6), metric=entry.name)
            ok.set(1.0 if entry.passed else 0.0, metric=entry.name)


# ---------------------------------------------------------------------------
# scoring primitives
# ---------------------------------------------------------------------------

def precision_recall(predicted: Set, truth: Set) -> Tuple[float, float]:
    """Set precision/recall with the usual empty-set conventions: an
    empty prediction set has perfect precision; an empty truth set has
    perfect recall."""
    hits = len(predicted & truth)
    precision = hits / len(predicted) if predicted else 1.0
    recall = hits / len(truth) if truth else 1.0
    return precision, recall


def _pair_set(membership: Dict[object, object]) -> Set[FrozenSet]:
    """All unordered pairs of keys that share a membership value."""
    groups: Dict[object, List[object]] = {}
    for key, group in membership.items():
        if group is not None:
            groups.setdefault(group, []).append(key)
    pairs: Set[FrozenSet] = set()
    for members in groups.values():
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                pairs.add(frozenset((a, b)))
    return pairs


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ---------------------------------------------------------------------------
# scorecard computation
# ---------------------------------------------------------------------------

def compute_scorecard(
    result,
    thresholds: Optional[Dict[str, Tuple[float, float]]] = None,
    scam=None,
    network=None,
    efficacy=None,
    underground=None,
    analyses=None,
) -> Scorecard:
    """Score a :class:`~repro.core.pipeline.StudyResult` against its own
    world's ground truth and the calibration targets.

    Analysis reports already computed elsewhere (e.g. by ``repro
    tables``) can be passed in to avoid recomputation; any left ``None``
    is run here on ``result.dataset``.  When a supervised
    :class:`~repro.analysis.suite.AnalysisResults` is passed as
    ``analyses``, its reports are used instead — and a stage it recorded
    as *failed* is honoured: its sections are skipped (degraded), never
    silently recomputed.
    """
    from repro.analysis.efficacy import EfficacyAnalysis
    from repro.analysis.network import NetworkAnalysis
    from repro.analysis.scam_posts import ScamPipelineConfig, ScamPostAnalysis
    from repro.analysis.underground_analysis import UndergroundAnalysis

    dataset = result.dataset
    world = result.world
    bands = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        bands.update(thresholds)

    failed_stages: Set[str] = set()
    if analyses is not None:
        failed_stages = {f.stage for f in analyses.failures}
        scam = scam if scam is not None else analyses.report("scam_posts")
        network = network if network is not None else analyses.report("network")
        efficacy = (
            efficacy if efficacy is not None else analyses.report("efficacy")
        )
        underground = (
            underground if underground is not None
            else analyses.report("underground")
        )

    if scam is None and "scam_posts" not in failed_stages:
        scam = ScamPostAnalysis(
            ScamPipelineConfig(dbscan_eps=0.9),
            telemetry=getattr(result, "telemetry", None),
        ).run(dataset)
    if network is None and "network" not in failed_stages:
        network = NetworkAnalysis().run(dataset)
    if efficacy is None and "efficacy" not in failed_stages:
        efficacy = EfficacyAnalysis().run(dataset)
    if (underground is None and dataset.underground
            and "underground" not in failed_stages):
        underground = UndergroundAnalysis().run(dataset.underground)

    card = Scorecard(seed=world.seed, scale=world.scale)

    def add(name: str, kind: str, value: float, detail: str = "") -> None:
        low, high = bands.get(name, (0.0, float("inf")))
        card.entries.append(
            ScoreEntry(name=name, kind=kind, value=float(value),
                       low=low, high=high, detail=detail)
        )

    accounts_by_key = {
        (a.platform.value, a.handle): a for a in world.accounts.values()
    }

    # -- scam vetting vs ground truth (§6) --------------------------------
    if scam is not None:
        collected_accounts = {(p.platform, p.handle) for p in dataset.posts}
        truth_scam_accounts = {
            key for key in collected_accounts
            if key in accounts_by_key and accounts_by_key[key].is_scammer
        }
        p, r = precision_recall(scam.predicted_accounts(), truth_scam_accounts)
        add("scam_account_precision", "ground_truth", p,
            f"{len(scam.predicted_accounts())} predicted vs "
            f"{len(truth_scam_accounts)} true scam accounts")
        add("scam_account_recall", "ground_truth", r)

        truth_subtype_by_id = {
            post.post_id: post.scam_subtype for post in world.all_posts()
        }
        collected_post_ids = {post.post_id for post in dataset.posts}
        truth_scam_posts = {
            pid for pid in collected_post_ids if truth_subtype_by_id.get(pid)
        }
        p, r = precision_recall(set(scam.scam_post_ids), truth_scam_posts)
        add("scam_post_precision", "ground_truth", p,
            f"{len(scam.scam_post_ids)} predicted vs "
            f"{len(truth_scam_posts)} true scam posts")
        add("scam_post_recall", "ground_truth", r)

    # -- network clustering vs ground truth (§7) --------------------------
    if network is not None:
        active_profiles = {
            (p.platform, p.handle) for p in dataset.profiles if p.is_active
        }
        truth_membership = {
            key: (key[0], accounts_by_key[key].cluster_id)
            for key in active_profiles
            if key in accounts_by_key and accounts_by_key[key].cluster_id
        }
        predicted_pairs = _pair_set(network.membership())
        truth_pairs = _pair_set(truth_membership)
        p, r = precision_recall(predicted_pairs, truth_pairs)
        add("network_pair_precision", "ground_truth", p,
            f"{len(predicted_pairs)} predicted vs {len(truth_pairs)} true "
            "same-cluster pairs")
        add("network_pair_recall", "ground_truth", r)

    # -- moderation sweep vs ground truth (§8) ----------------------------
    if efficacy is not None:
        swept = {(p.platform, p.handle) for p in dataset.profiles}
        truth_inactive = {
            key for key in swept
            if key in accounts_by_key and not accounts_by_key[key].is_active
        }
        p, r = precision_recall(efficacy.predicted_inactive, truth_inactive)
        add("efficacy_precision", "ground_truth", p,
            f"{len(efficacy.predicted_inactive)} predicted vs "
            f"{len(truth_inactive)} truly actioned accounts")
        add("efficacy_recall", "ground_truth", r)

    # -- underground text reuse vs ground truth (§4.2) --------------------
    if underground is not None and dataset.underground:
        truth_reuse = {
            posting.posting_id: posting.reuse_group
            for posting in world.underground_postings
        }
        record_ids = [
            record.url.rstrip("/").rsplit("/", 1)[-1]
            for record in dataset.underground
        ]
        predicted_membership = {}
        for group_index, group in enumerate(underground.groups):
            for index in group.indices:
                if index < len(record_ids):
                    predicted_membership[record_ids[index]] = group_index
        truth_membership_ug = {
            pid: truth_reuse.get(pid) for pid in record_ids
        }
        p, r = precision_recall(
            _pair_set(predicted_membership), _pair_set(truth_membership_ug)
        )
        add("underground_reuse_precision", "ground_truth", p,
            f"{len(underground.groups)} predicted reuse groups")
        add("underground_reuse_recall", "ground_truth", r)

    # -- calibration shape checks -----------------------------------------
    _add_calibration_entries(add, dataset, scam, network, efficacy)

    # -- data-plane coverage ----------------------------------------------
    contracts = getattr(result, "contracts", None)
    if contracts is not None:
        add("contract_record_coverage", "coverage", contracts.coverage(),
            f"{contracts.quarantined} of {contracts.checked_total} "
            "collected records quarantined")
    if analyses is not None:
        add("analysis_stage_coverage", "coverage", analyses.coverage(),
            f"{analyses.succeeded}/{len(analyses.reports)} stages reported"
            + ("" if not failed_stages
               else "; degraded: " + ", ".join(sorted(failed_stages))))
    return card


def _add_calibration_entries(add, dataset, scam, network, efficacy) -> None:
    from repro.synthetic.calibration import (
        MARKETPLACE_TABLE1,
        PRICE_MEDIANS,
        TOTAL_LISTINGS,
        TOTAL_VISIBLE,
    )

    # Table 2: share of listings exposing a profile link (~30%).
    if dataset.listings:
        add("calib_visible_listing_share", "calibration",
            len(dataset.visible_listings()) / len(dataset.listings),
            f"paper: {TOTAL_VISIBLE}/{TOTAL_LISTINGS} = "
            f"{TOTAL_VISIBLE / TOTAL_LISTINGS:.3f}")

    # Table 1: per-marketplace listing shares (L1 / total-variation gap).
    by_market = dataset.listings_by_marketplace()
    total = sum(len(records) for records in by_market.values())
    paper_total = sum(n for _s, n in MARKETPLACE_TABLE1.values())
    if total:
        gap = sum(
            abs(len(by_market.get(market, [])) / total - listings / paper_total)
            for market, (_sellers, listings) in MARKETPLACE_TABLE1.items()
        ) / 2.0
        add("calib_listing_share_l1", "calibration", gap,
            "total-variation distance to Table 1 shares")

    # Table 5: posts per scam account (~4.99 at paper scale).
    if scam is not None and scam.total_scam_accounts:
        add("calib_scam_posts_per_account", "calibration",
            scam.total_scam_posts / scam.total_scam_accounts,
            "paper: 18792/3769 = 4.99")

    # Table 7: fraction of active profiles inside a network cluster.
    if network is not None:
        clustered_total = (
            network.total_cluster_accounts + network.total_singletons
        )
        if clustered_total:
            add("calib_clustered_account_fraction", "calibration",
                network.total_cluster_accounts / clustered_total,
                "paper: 543/11457 = 0.047")

    # Table 8: overall share of visible accounts actioned (~19.7%).
    if efficacy is not None and efficacy.total_visible:
        add("calib_efficacy_rate", "calibration",
            efficacy.total_inactive / efficacy.total_visible,
            "paper: 0.1971")

    # §4.1: advertised price medians per platform.
    prices_by_platform: Dict[str, List[float]] = {}
    for listing in dataset.listings:
        if listing.platform and listing.price_usd is not None:
            prices_by_platform.setdefault(listing.platform, []).append(
                listing.price_usd
            )
    for platform, paper_median in PRICE_MEDIANS.items():
        prices = prices_by_platform.get(platform)
        if not prices:
            continue
        measured = _median(prices)
        add(f"calib_price_median_ratio_{platform.lower()}", "calibration",
            measured / paper_median,
            f"measured ${measured:,.0f} vs paper ${paper_median:,.0f}")


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------

def write_scorecard(directory: str, scorecard: Scorecard) -> str:
    """Write ``scorecard.json`` (byte-identical across same-seed runs)."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, SCORECARD_FILENAME)
    return atomic_write_json(path, scorecard.to_dict(), trailing_newline=True)


def load_scorecard(directory: str) -> Optional[dict]:
    """The scorecard dict from a telemetry directory, or None."""
    path = os.path.join(directory, SCORECARD_FILENAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


__all__ = [
    "DEFAULT_THRESHOLDS",
    "SCORECARD_FILENAME",
    "SCORECARD_SCHEMA",
    "ScoreEntry",
    "Scorecard",
    "compute_scorecard",
    "load_scorecard",
    "precision_recall",
    "write_scorecard",
]
