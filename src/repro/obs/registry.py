"""The cross-run registry: an append-only SQLite store of run telemetry.

Every run's artifacts (manifest, scorecard, profile, watchdog summary,
archive stats) die with their telemetry directory; the registry is the
system's memory across runs.  ``RunRegistry.ingest`` folds one completed
telemetry directory — via the same machine-readable
:func:`~repro.obs.summary.trace_document` that backs ``repro trace
--json`` — into one row per run plus a flat per-metric table, keyed by
``(run_id, seed, config_hash, ingested_at)``.

Design points:

* **Append-only.** Rows are only ever inserted; nothing updates or
  deletes.  Re-ingesting an unchanged directory is a no-op keyed by
  ``(run_id, config_hash)`` — ``run_id`` digests the artifact bytes, so
  the same directory always maps to the same id while two same-seed twin
  runs (whose manifests record different wall-clock timings) still land
  as two rows.
* **Schema-checked.** Every artifact present in the directory must carry
  its registered schema id (:mod:`repro.obs.schemas`); an unknown or
  missing id refuses ingestion with :class:`RegistryError` rather than
  silently storing unversioned data.
* **Deterministic values.** Everything stored in the ``metrics`` table
  derives from the run's own artifacts, so trend baselines and anomaly
  rules downstream (:mod:`repro.obs.trends`, :mod:`repro.obs.alerts`)
  are reproducible given the same registry contents; the wall-clock
  ``ingested_at`` stamp is recorded for humans but never used in any
  rule.
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.rundir import RunDir, TelemetryDirError
from repro.obs.schemas import (
    ARTIFACT_SCHEMAS,
    REGISTRY_SCHEMA,
    SchemaError,
    check_artifact,
    config_hash as compute_config_hash,
)
from repro.obs.summary import trace_document

REGISTRY_FILENAME = "runs.sqlite"

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT NOT NULL,
    seed INTEGER,
    config_hash TEXT NOT NULL,
    ingested_at TEXT NOT NULL,
    path TEXT,
    scale REAL,
    iterations INTEGER,
    chaos TEXT,
    git TEXT,
    simulated_seconds REAL,
    scorecard_passed INTEGER,
    document TEXT NOT NULL,
    UNIQUE (run_id, config_hash)
);
CREATE TABLE IF NOT EXISTS metrics (
    seq INTEGER NOT NULL REFERENCES runs (seq),
    run_id TEXT NOT NULL,
    name TEXT NOT NULL,
    value REAL NOT NULL,
    source TEXT NOT NULL,
    UNIQUE (seq, name)
);
CREATE INDEX IF NOT EXISTS metrics_by_name ON metrics (name, seq);
"""


class RegistryError(RuntimeError):
    """The registry file or an ingested artifact is unusable.

    The message is always a single printable line (CLI exit code 2).
    """


@dataclass(frozen=True)
class RunRow:
    """One registered run (the scalar columns of the ``runs`` table)."""

    seq: int
    run_id: str
    seed: Optional[int]
    config_hash: str
    ingested_at: str
    path: str
    scale: Optional[float]
    iterations: Optional[int]
    chaos: Optional[str]
    git: Optional[str]
    simulated_seconds: Optional[float]
    scorecard_passed: Optional[bool]

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "run_id": self.run_id,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "ingested_at": self.ingested_at,
            "path": self.path,
            "scale": self.scale,
            "iterations": self.iterations,
            "chaos": self.chaos,
            "git": self.git,
            "simulated_seconds": self.simulated_seconds,
            "scorecard_passed": self.scorecard_passed,
        }


@dataclass(frozen=True)
class IngestResult:
    """What one :meth:`RunRegistry.ingest` call did."""

    run_id: str
    config_hash: str
    inserted: bool
    seq: Optional[int]
    n_metrics: int = 0


def _iso_utc(timestamp: Optional[float] = None) -> str:
    moment = _datetime.datetime.fromtimestamp(
        time.time() if timestamp is None else timestamp,
        _datetime.timezone.utc,
    )
    return moment.isoformat(timespec="seconds")


# ---------------------------------------------------------------------------
# metric extraction (shared by ingest and tests)
# ---------------------------------------------------------------------------

def metrics_from_document(document: dict) -> Dict[str, Tuple[float, str]]:
    """Flatten a trace document into ``name -> (value, source)`` rows.

    Only deterministic-per-run values (plus per-stage wall clock, which
    trend/alert consumers treat as machine-noise-prone and gate behind
    explicit opt-in) make it into the table.
    """
    rows: Dict[str, Tuple[float, str]] = {}

    def put(name: str, value, source: str) -> None:
        if isinstance(value, bool):
            value = 1.0 if value else 0.0
        if isinstance(value, (int, float)) and value == value:
            rows[name] = (float(value), source)

    run = document.get("run") or {}
    put("run.simulated_seconds", run.get("simulated_seconds"), "manifest")
    for record_type, count in (run.get("dataset") or {}).items():
        put(f"dataset.{record_type}", count, "manifest")

    for stage in document.get("stages") or []:
        name = stage.get("name")
        if not name:
            continue
        put(f"stage_sim_seconds.{name}", stage.get("sim_seconds"), "trace")
        put(f"stage_wall_seconds.{name}", stage.get("wall_seconds"), "trace")
    put("trace.stages_total", len(document.get("stages") or []), "trace")

    scorecard = document.get("scorecard")
    if scorecard is not None:
        put("fidelity.passed", scorecard.get("passed"), "scorecard")
        put("fidelity.n_failed", scorecard.get("n_failed"), "scorecard")
        for entry in scorecard.get("entries") or []:
            if entry.get("name"):
                put(f"fidelity.{entry['name']}", entry.get("value"),
                    "scorecard")

    watchdog = document.get("watchdog")
    if watchdog is not None:
        put("watchdog.findings_total", watchdog.get("findings_total"),
            "watchdog")
        for severity, count in (watchdog.get("counts") or {}).items():
            put(f"watchdog.{severity}", count, "watchdog")

    contracts = document.get("contracts")
    if contracts:
        validation = contracts.get("validation") or {}
        put("contracts.coverage", validation.get("coverage"), "contracts")
        put("contracts.repaired", validation.get("repaired"), "contracts")
        put("contracts.degraded", validation.get("degraded"), "contracts")
        put("contracts.quarantined", validation.get("quarantined"),
            "contracts")
        quarantine = contracts.get("quarantine") or {}
        put("contracts.quarantine_total", quarantine.get("total"),
            "contracts")

    crawl = document.get("crawl") or {}
    put("crawl.pages_total", crawl.get("pages_total"), "crawl")
    put("crawl.errors_total", crawl.get("errors_total"), "crawl")
    put("crawl.error_rate", crawl.get("error_rate"), "crawl")

    archive = document.get("archive")
    if archive:
        put("archive.exchanges_total", archive.get("exchanges_total"),
            "archive")
        put("archive.blobs_total", archive.get("blobs_total"), "archive")
        put("archive.bytes_total", archive.get("bytes_total"), "archive")
        put("archive.dedup_ratio", archive.get("dedup_ratio"), "archive")

    profile = document.get("profile")
    if profile:
        totals = profile.get("totals") or {}
        put("profile.wall_seconds", totals.get("wall_seconds"), "profile")
        put("profile.tracemalloc_peak_bytes",
            totals.get("tracemalloc_peak_bytes"), "profile")
        put("profile.rss_max_kb", totals.get("rss_max_kb"), "profile")

    put("stage_failures.total", len(document.get("stage_failures") or []),
        "manifest")
    events = document.get("events") or {}
    put("events.total", sum(events.values()), "events")
    return rows


class RunRegistry:
    """Append-only SQLite registry of ingested runs at a user-chosen
    path.  Use as a context manager or call :meth:`close`."""

    def __init__(self, path: str, _create: bool = True):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        if _create:
            os.makedirs(directory, exist_ok=True)
        elif not os.path.exists(path):
            raise RegistryError(f"no run registry at {path}")
        try:
            self._conn = sqlite3.connect(path)
            self._conn.executescript(_TABLES)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema", REGISTRY_SCHEMA),
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise RegistryError(
                f"cannot open run registry {path}: {exc}"
            ) from None
        recorded = self._meta("schema")
        if recorded != REGISTRY_SCHEMA:
            raise RegistryError(
                f"{path}: registry schema {recorded!r} does not match "
                f"expected {REGISTRY_SCHEMA!r}"
            )

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(cls, path: str) -> "RunRegistry":
        """Open (creating if absent) the registry at ``path``."""
        return cls(path)

    @classmethod
    def open_existing(cls, path: str) -> "RunRegistry":
        """Open the registry at ``path``; error when it does not exist
        (read-side CLI commands should not conjure empty registries)."""
        return cls(path, _create=False)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    # -- ingestion ---------------------------------------------------------

    def ingest(self, source: Union[str, RunDir],
               run_id: Optional[str] = None,
               ingested_at: Optional[float] = None) -> IngestResult:
        """Fold one telemetry directory into the registry.

        Validates the schema id of every artifact present, derives
        ``run_id`` from the artifact bytes (unless given) and
        ``config_hash`` from the manifest, and inserts the run row plus
        its flattened metrics.  A ``(run_id, config_hash)`` pair already
        present makes the call a no-op (``inserted=False``).
        """
        try:
            run = source if isinstance(source, RunDir) else RunDir.load(source)
        except TelemetryDirError as exc:
            raise RegistryError(str(exc)) from None
        self._check_artifacts(run)
        document = trace_document(run)
        resolved_run_id = run_id or f"run-{run.content_digest()}"
        resolved_config_hash = run.config_hash()
        return self.ingest_document(
            document,
            run_id=resolved_run_id,
            config_hash=resolved_config_hash,
            path=run.path,
            ingested_at=ingested_at,
        )

    def ingest_document(self, document: dict, *, run_id: str,
                        config_hash: Optional[str] = None,
                        path: str = "",
                        ingested_at: Optional[float] = None) -> IngestResult:
        """Insert one pre-built trace document (the non-filesystem half
        of :meth:`ingest`; also the hook tests and tools use to register
        synthetic runs)."""
        run_info = document.get("run") or {}
        config = run_info.get("config") or {}
        resolved_hash = (
            config_hash
            or run_info.get("config_hash")
            or compute_config_hash(config)
        )
        metrics = metrics_from_document(document)
        scorecard = document.get("scorecard")
        row = (
            run_id,
            run_info.get("seed"),
            resolved_hash,
            _iso_utc(ingested_at),
            path or document.get("path") or "",
            config.get("scale"),
            config.get("iterations"),
            config.get("chaos_profile"),
            run_info.get("git"),
            run_info.get("simulated_seconds"),
            None if scorecard is None else int(bool(scorecard.get("passed"))),
            json.dumps(document, sort_keys=True, separators=(",", ":")),
        )
        try:
            with self._conn:
                cursor = self._conn.execute(
                    "INSERT INTO runs (run_id, seed, config_hash,"
                    " ingested_at, path, scale, iterations, chaos, git,"
                    " simulated_seconds, scorecard_passed, document)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    row,
                )
                seq = cursor.lastrowid
                self._conn.executemany(
                    "INSERT INTO metrics (seq, run_id, name, value, source)"
                    " VALUES (?, ?, ?, ?, ?)",
                    [
                        (seq, run_id, name, value, source)
                        for name, (value, source) in sorted(metrics.items())
                    ],
                )
        except sqlite3.IntegrityError:
            return IngestResult(
                run_id=run_id, config_hash=resolved_hash,
                inserted=False, seq=self._seq_of(run_id, resolved_hash),
            )
        except sqlite3.Error as exc:
            raise RegistryError(
                f"cannot ingest into {self.path}: {exc}"
            ) from None
        return IngestResult(
            run_id=run_id, config_hash=resolved_hash,
            inserted=True, seq=seq, n_metrics=len(metrics),
        )

    def _check_artifacts(self, run: RunDir) -> None:
        """Schema-check every JSON artifact present in the run dir."""
        for name in ARTIFACT_SCHEMAS:
            file_path = os.path.join(run.path, name)
            if not os.path.exists(file_path):
                continue
            document = {
                "manifest.json": run.manifest,
                "metrics.json": run.metrics,
                "scorecard.json": run.scorecard,
                "profile.json": run.profile,
            }.get(name)
            if document is None:
                continue
            try:
                check_artifact(name, document,
                               source=os.path.join(run.path, name))
            except SchemaError as exc:
                raise RegistryError(str(exc)) from None

    def _seq_of(self, run_id: str, config_hash_value: str) -> Optional[int]:
        row = self._conn.execute(
            "SELECT seq FROM runs WHERE run_id = ? AND config_hash = ?",
            (run_id, config_hash_value),
        ).fetchone()
        return row[0] if row else None

    # -- queries -----------------------------------------------------------

    def runs(self, last_n: Optional[int] = None) -> List[RunRow]:
        """Registered runs in ingestion order (optionally the last N)."""
        rows = [
            RunRow(
                seq=seq, run_id=run_id, seed=seed,
                config_hash=config_hash_value, ingested_at=ingested_at,
                path=path, scale=scale, iterations=iterations, chaos=chaos,
                git=git, simulated_seconds=simulated_seconds,
                scorecard_passed=(
                    None if scorecard_passed is None else bool(scorecard_passed)
                ),
            )
            for (seq, run_id, seed, config_hash_value, ingested_at, path,
                 scale, iterations, chaos, git, simulated_seconds,
                 scorecard_passed) in self._conn.execute(
                "SELECT seq, run_id, seed, config_hash, ingested_at, path,"
                " scale, iterations, chaos, git, simulated_seconds,"
                " scorecard_passed FROM runs ORDER BY seq"
            )
        ]
        if last_n is not None and last_n > 0:
            rows = rows[-last_n:]
        return rows

    def run(self, run_id: str) -> Optional[RunRow]:
        """The most recently ingested row with this run id."""
        matches = [row for row in self.runs() if row.run_id == run_id]
        return matches[-1] if matches else None

    def document(self, run_id: str) -> Optional[dict]:
        """The stored trace document of one run."""
        row = self._conn.execute(
            "SELECT document FROM runs WHERE run_id = ?"
            " ORDER BY seq DESC LIMIT 1",
            (run_id,),
        ).fetchone()
        return json.loads(row[0]) if row else None

    def metric_names(self) -> List[str]:
        return [
            name for (name,) in self._conn.execute(
                "SELECT DISTINCT name FROM metrics ORDER BY name"
            )
        ]

    def series(self, name: str,
               last_n: Optional[int] = None) -> List[Tuple[int, str, float]]:
        """One metric across runs as ``(seq, run_id, value)`` rows in
        ingestion order."""
        rows = [
            (seq, run_id, value)
            for (seq, run_id, value) in self._conn.execute(
                "SELECT seq, run_id, value FROM metrics WHERE name = ?"
                " ORDER BY seq",
                (name,),
            )
        ]
        if last_n is not None and last_n > 0:
            rows = rows[-last_n:]
        return rows

    def metrics_of(self, seq: int) -> Dict[str, Tuple[float, str]]:
        """Every metric row of one registered run."""
        return {
            name: (value, source)
            for (name, value, source) in self._conn.execute(
                "SELECT name, value, source FROM metrics WHERE seq = ?"
                " ORDER BY name",
                (seq,),
            )
        }


__all__ = [
    "IngestResult",
    "REGISTRY_FILENAME",
    "RegistryError",
    "RunRegistry",
    "RunRow",
    "metrics_from_document",
]
