"""The run manifest: one JSON file that makes two runs diffable.

Written alongside a study's telemetry export, the manifest records
everything needed to compare or reproduce a run: the full
:class:`~repro.core.pipeline.StudyConfig`, the git revision of the code,
per-stage sim/wall durations, per-marketplace crawl counters (including
the structured error list), event counts by kind, and the complete
metric snapshot.

This module is deliberately duck-typed over the config/result objects so
it has no import edge back into :mod:`repro.core` (which itself imports
the telemetry facade).
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from typing import List, Optional

from repro.obs.schemas import MANIFEST_SCHEMA, config_hash
from repro.util.fileio import atomic_write_json

MANIFEST_FILENAME = "manifest.json"


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, or None."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def _crawl_section(result) -> dict:
    reports = []
    errors_total = 0
    for report in getattr(result, "crawl_reports", []):
        errors_total += report.errors
        reports.append({
            "marketplace": report.marketplace,
            "pages_fetched": report.pages_fetched,
            "offers_found": report.offers_found,
            "offers_parsed": report.offers_parsed,
            "sellers_fetched": report.sellers_fetched,
            "errors": report.errors,
            "error_details": [
                {"url": e.url, "kind": e.kind, "detail": e.detail}
                for e in getattr(report, "error_details", [])
            ],
        })
    return {"reports": reports, "errors_total": errors_total}


def build_manifest(config, result, telemetry, command: Optional[List[str]] = None) -> dict:
    """Assemble the manifest dict for one completed study run.

    ``config``/``result`` are a StudyConfig/StudyResult (duck-typed);
    ``telemetry`` is the :class:`~repro.obs.telemetry.Telemetry` the run
    recorded into.
    """
    config_dict = (
        dataclasses.asdict(config)
        if dataclasses.is_dataclass(config) else dict(config)
    )
    watchdog = getattr(result, "watchdog", None)
    scorecard = getattr(result, "scorecard", None)
    contracts = getattr(result, "contracts", None)
    quarantine = getattr(result, "quarantine", None)
    contracts_section = None
    if contracts is not None or quarantine is not None:
        contracts_section = {
            "validation": contracts.summary() if contracts is not None else None,
            "quarantine": quarantine.summary() if quarantine is not None else None,
        }
    return {
        "schema": MANIFEST_SCHEMA,
        "command": list(command) if command is not None else None,
        "python": sys.version.split()[0],
        "git": git_describe(),
        "config": config_dict,
        "config_hash": config_hash(config_dict),
        "seed": config_dict.get("seed"),
        "simulated_seconds": getattr(result, "simulated_seconds", 0.0),
        "dataset": result.dataset.summary() if getattr(result, "dataset", None) else {},
        "stages": telemetry.tracer.stage_summary(),
        "crawl": _crawl_section(result),
        "watchdog": watchdog.summary() if watchdog is not None else None,
        "scorecard": (
            {
                "passed": scorecard.passed,
                "n_entries": len(scorecard.entries),
                "n_failed": len(scorecard.failures()),
            }
            if scorecard is not None else None
        ),
        "contracts": contracts_section,
        "archive": getattr(result, "archive", None),
        "stage_failures": [
            failure.to_dict()
            for failure in getattr(result, "stage_failures", [])
        ],
        "events": telemetry.events.counts_by_kind(),
        "metrics": telemetry.metrics.snapshot(),
        "profile": (
            telemetry.profiler.summary()
            if getattr(telemetry, "profiler", None) is not None
            and telemetry.profiler.enabled else None
        ),
    }


def write_manifest(directory: str, manifest: dict) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, MANIFEST_FILENAME)
    # Atomic so a run killed mid-export leaves either no manifest or a
    # complete one — never a torn file `repro runs ingest` rejects.
    return atomic_write_json(path, manifest)


def load_manifest(directory: str) -> Optional[dict]:
    path = os.path.join(directory, MANIFEST_FILENAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "git_describe",
    "load_manifest",
    "write_manifest",
]
