"""Continuous performance profiling: ``--profile`` / ``profile.json``.

A :class:`StageProfiler` wraps every pipeline phase and every supervised
analysis stage and records, per phase:

* **wall time** (``time.perf_counter``) — where the run actually spends
  its machine time;
* **sim time** (the :class:`~repro.util.simtime.SimClock`) — the
  deterministic twin of wall time, identical across same-seed runs;
* **item counts** (pages fetched, records processed) and the derived
  throughput (pages/s, records/s against wall time);
* **memory** via :mod:`tracemalloc`: peak traced bytes inside the phase
  (child peaks propagate to parents), net allocated bytes, and the
  top-N allocation sites attributed to ``repro`` modules.

The profile exports as a byte-stable ``profile.json``
(:data:`PROFILE_FILENAME`, schema :data:`PROFILE_SCHEMA`) next to the
other telemetry files.  Exactly as :mod:`repro.obs.trace` separates sim
from wall durations, the profile separates *deterministic* fields
(names, sim durations, counts, per-host request/byte tallies) from
*machine* fields (wall seconds, throughput rates, memory):
:func:`deterministic_view` strips the machine fields, and twin same-seed
runs must agree byte-for-byte on what remains — that is the determinism
gate for profiled runs.

Profiling is opt-in (the CLI's ``--profile``); when off, call sites hold
the shared :data:`NULL_PROFILER` and pay one attribute lookup plus an
empty context manager, the same bargain the tracer makes, so the <5%
telemetry-overhead budget is unaffected.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

try:  # POSIX only; absent on some platforms.
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None

from repro.obs.schemas import PROFILE_SCHEMA
from repro.util.fileio import atomic_write_json
from repro.util.simtime import SimClock

PROFILE_FILENAME = "profile.json"

#: Top-level and per-phase keys that vary run-to-run on the same seed
#: (wall clock, allocator state, host environment).  Everything else in
#: a profile must be byte-identical between same-seed twin runs.
MACHINE_KEYS = frozenset({"wall_seconds", "throughput", "memory", "env"})

#: Prefix marking a profiled analysis stage (``stage.<name>``).
STAGE_PREFIX = "stage."


def _round6(value: float) -> float:
    return round(float(value), 6)


@dataclass
class PhaseProfile:
    """One completed profiled phase (pipeline phase or analysis stage)."""

    name: str
    kind: str = "phase"  # "phase" | "stage"
    sim_start: float = 0.0
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)
    mem_peak_bytes: int = 0
    mem_net_bytes: int = 0
    top_allocations: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        throughput = {}
        if self.wall_seconds > 0:
            for key, count in sorted(self.counts.items()):
                throughput[f"{key}_per_second"] = round(
                    count / self.wall_seconds, 3
                )
        return {
            "name": self.name,
            "kind": self.kind,
            "sim_start": _round6(self.sim_start),
            "sim_seconds": _round6(self.sim_seconds),
            "counts": dict(sorted(self.counts.items())),
            # -- machine fields (masked by deterministic_view) --
            "wall_seconds": _round6(self.wall_seconds),
            "throughput": throughput,
            "memory": {
                "peak_bytes": int(self.mem_peak_bytes),
                "net_bytes": int(self.mem_net_bytes),
                "top_allocations": list(self.top_allocations),
            },
        }


class _NullPhase:
    """Shared, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class _OpenPhase:
    """Context-manager handle for one in-flight profiled phase."""

    __slots__ = ("_profiler", "record", "_wall_start", "_start_current",
                 "_snapshot", "_child_peak")

    def __init__(self, profiler: "StageProfiler", record: PhaseProfile) -> None:
        self._profiler = profiler
        self.record = record
        self._wall_start = 0.0
        self._start_current = 0
        self._snapshot = None
        self._child_peak = 0

    def __enter__(self) -> PhaseProfile:
        return self.record

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler._finish(self)


def _repro_site(filename: str, lineno: int) -> Optional[str]:
    """Normalize a traceback filename to a stable ``repro/...:line`` site.

    Returns None for frames outside the repro package so allocation
    tables only attribute to our own modules, and stay comparable
    across checkouts/machines.
    """
    normalized = filename.replace(os.sep, "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index < 0:
        return None
    return f"repro/{normalized[index + len(marker):]}:{lineno}"


class StageProfiler:
    """Collects per-phase wall/sim/memory/throughput profiles.

    ``memory=False`` skips all :mod:`tracemalloc` work — used by the
    bench harness, whose timing rounds must not pay the (roughly 2x on
    allocation-heavy code) tracing overhead; a dedicated memory round
    records peaks separately.
    """

    def __init__(self, memory: bool = True, top_allocations: int = 5,
                 stages_expected: Sequence[str] = (),
                 clock: Optional[SimClock] = None) -> None:
        self.enabled = True
        self.memory = memory
        self.top_allocations = top_allocations
        self.stages_expected: Tuple[str, ...] = tuple(stages_expected)
        self.phases: List[PhaseProfile] = []
        self.clients: List[dict] = []
        self._clock = clock
        self._stack: List[_OpenPhase] = []
        self._started_tracing = False
        self._wall_started = 0.0
        self._wall_total = 0.0
        self._sim_total = 0.0
        self._running = False

    # -- lifecycle -------------------------------------------------------

    def set_clock(self, clock: SimClock) -> None:
        self._clock = clock

    def _sim_now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def start(self) -> None:
        """Begin a profiled run (starts tracemalloc when memory is on)."""
        self._running = True
        self._wall_started = time.perf_counter()
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True

    def finish(self) -> None:
        """End the run: record totals, stop tracing if we started it."""
        if not self._running:
            return
        self._running = False
        self._wall_total = time.perf_counter() - self._wall_started
        self._sim_total = self._sim_now()
        if self._started_tracing:
            tracemalloc.stop()
            self._started_tracing = False

    # -- phases ----------------------------------------------------------

    def phase(self, name: str, kind: str = "phase") -> _OpenPhase:
        record = PhaseProfile(name=name, kind=kind, sim_start=self._sim_now())
        handle = _OpenPhase(self, record)
        if self.memory and tracemalloc.is_tracing():
            handle._start_current = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            if self.top_allocations:
                handle._snapshot = tracemalloc.take_snapshot()
        handle._wall_start = time.perf_counter()
        self._stack.append(handle)
        return handle

    @staticmethod
    def stage_key(name: str) -> str:
        """The phase name a stage records under (``stage.<name>``)."""
        return f"{STAGE_PREFIX}{name}"

    def stage(self, name: str) -> _OpenPhase:
        """A profiled analysis stage (``stage.<name>``)."""
        return self.phase(self.stage_key(name), kind="stage")

    def _finish(self, handle: _OpenPhase) -> None:
        record = handle.record
        record.wall_seconds = time.perf_counter() - handle._wall_start
        record.sim_seconds = self._sim_now() - record.sim_start
        if self.memory and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            record.mem_net_bytes = current - handle._start_current
            record.mem_peak_bytes = max(peak, handle._child_peak)
            if handle._snapshot is not None:
                record.top_allocations = self._top_diff(handle._snapshot)
                handle._snapshot = None
            # Fresh peak window for whatever the parent does next; the
            # child's peak has already been folded into the parent below.
            tracemalloc.reset_peak()
        # Pop through abandoned children too (same defense as the tracer).
        while self._stack:
            top = self._stack.pop()
            if top is handle:
                break
        if self._stack:
            parent = self._stack[-1]
            parent._child_peak = max(parent._child_peak, record.mem_peak_bytes)
        self.phases.append(record)

    def _top_diff(self, before) -> List[dict]:
        after = tracemalloc.take_snapshot()
        stats = after.compare_to(before, "lineno")
        sites: List[dict] = []
        for stat in stats:
            frame = stat.traceback[0]
            site = _repro_site(frame.filename, frame.lineno)
            if site is None or stat.size_diff <= 0:
                continue
            sites.append({
                "site": site,
                "size_bytes": int(stat.size_diff),
                "count": int(stat.count_diff),
            })
        sites.sort(key=lambda s: (-s["size_bytes"], s["site"]))
        return sites[: self.top_allocations]

    # -- attribution -----------------------------------------------------

    def add_counts(self, name: str, **counts: int) -> None:
        """Attach item counts (pages, records, ...) to a recorded phase.

        Looks at completed phases (latest first), then the open stack,
        so call sites may add counts right after the ``with`` block.
        """
        target: Optional[PhaseProfile] = None
        for record in reversed(self.phases):
            if record.name == name:
                target = record
                break
        if target is None:
            for handle in reversed(self._stack):
                if handle.record.name == name:
                    target = handle.record
                    break
        if target is None:
            return
        for key, value in counts.items():
            target.counts[key] = target.counts.get(key, 0) + int(value)

    def add_client(self, client_id: str, stats) -> None:
        """Record one HTTP client's per-host tallies (duck-typed
        :class:`~repro.web.client.ClientStats`).  Request and byte counts
        are deterministic; rates over them are derived at export."""
        by_host = dict(getattr(stats, "by_host", {}) or {})
        bytes_by_host = dict(getattr(stats, "bytes_by_host", {}) or {})
        hosts = [
            {
                "host": host,
                "requests": int(by_host.get(host, 0)),
                "bytes": int(bytes_by_host.get(host, 0)),
            }
            for host in sorted(set(by_host) | set(bytes_by_host))
        ]
        self.clients.append({
            "client": client_id,
            "requests_total": int(getattr(stats, "requests_sent", 0)),
            "bytes_total": int(getattr(stats, "bytes_received", 0)),
            "hosts": hosts,
        })

    # -- export ----------------------------------------------------------

    def stage_names(self) -> List[str]:
        """Analysis stages this profile covered (without the prefix)."""
        return [
            record.name[len(STAGE_PREFIX):]
            for record in self.phases if record.kind == "stage"
        ]

    def summary(self) -> dict:
        """The small manifest-embeddable summary."""
        covered = set(self.stage_names())
        return {
            "phases": len(self.phases),
            "stages_expected": len(self.stages_expected),
            "stages_covered": len(covered & set(self.stages_expected))
            if self.stages_expected else len(covered),
            "wall_seconds_total": _round6(self._wall_total),
        }

    def snapshot(self) -> dict:
        """The full profile as a JSON-serializable dict."""
        phase_counts: Dict[str, int] = {}
        mem_peak = 0
        for record in self.phases:
            mem_peak = max(mem_peak, record.mem_peak_bytes)
            if record.kind != "phase":
                # Stage counts restate their phase's inputs; summing
                # them into totals would double-count.
                continue
            for key, value in record.counts.items():
                phase_counts[key] = phase_counts.get(key, 0) + value
        throughput = {}
        if self._wall_total > 0:
            for key, count in sorted(phase_counts.items()):
                throughput[f"{key}_per_second"] = round(
                    count / self._wall_total, 3
                )
        rss_max_kb = 0
        if resource is not None:
            rss_max_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        return {
            "schema": PROFILE_SCHEMA,
            "stages_expected": list(self.stages_expected),
            "phases": [record.to_dict() for record in self.phases],
            "clients": list(self.clients),
            "totals": {
                "sim_seconds": _round6(self._sim_total),
                "counts": dict(sorted(phase_counts.items())),
                # -- machine fields --
                "wall_seconds": _round6(self._wall_total),
                "throughput": throughput,
                "memory": {
                    "tracemalloc_peak_bytes": int(mem_peak),
                    "rss_max_kb": rss_max_kb,
                },
            },
        }

    def export_json(self, path: str) -> None:
        atomic_write_json(path, self.snapshot())


class NullProfiler:
    """Profiler stand-in for unprofiled runs; everything is a no-op."""

    enabled = False
    memory = False
    phases: List[PhaseProfile] = []
    clients: List[dict] = []
    stages_expected: Tuple[str, ...] = ()
    _phase = _NullPhase()

    def set_clock(self, clock) -> None:
        pass

    def start(self) -> None:
        pass

    def finish(self) -> None:
        pass

    def phase(self, name: str, kind: str = "phase") -> _NullPhase:
        return self._phase

    @staticmethod
    def stage_key(name: str) -> str:
        return f"{STAGE_PREFIX}{name}"

    def stage(self, name: str) -> _NullPhase:
        return self._phase

    def add_counts(self, name: str, **counts: int) -> None:
        pass

    def add_client(self, client_id: str, stats) -> None:
        pass

    def stage_names(self) -> List[str]:
        return []

    def summary(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}

    def export_json(self, path: str) -> None:
        pass


#: Shared no-op used as the default everywhere profiling is optional.
NULL_PROFILER = NullProfiler()


# ---------------------------------------------------------------------------
# reading profiles back
# ---------------------------------------------------------------------------

def deterministic_view(profile: dict) -> dict:
    """The profile with every machine-dependent field stripped.

    Same-seed twin runs must produce byte-identical
    ``json.dumps(deterministic_view(p), sort_keys=True)`` output; wall
    times, throughput rates, memory numbers, and env fingerprints are
    legitimate run-to-run variation and are excluded, mirroring how the
    tracer keeps ``wall_duration`` out of determinism comparisons.
    """

    def strip(node):
        if isinstance(node, dict):
            return {
                key: strip(value) for key, value in node.items()
                if key not in MACHINE_KEYS
            }
        if isinstance(node, list):
            return [strip(item) for item in node]
        return node

    return strip(profile)


def profile_stage_coverage(profile: dict) -> List[str]:
    """Expected analysis stages *missing* from a loaded profile dict.

    The expectation travels inside the file (``stages_expected``, set by
    the pipeline from the canonical stage roster), so readers need no
    import edge into :mod:`repro.analysis`.
    """
    expected = profile.get("stages_expected") or []
    covered = {
        phase.get("name", "")[len(STAGE_PREFIX):]
        for phase in profile.get("phases", [])
        if phase.get("kind") == "stage"
    }
    return [name for name in expected if name not in covered]


def load_profile(directory: str) -> Optional[dict]:
    """Read ``profile.json`` from a telemetry directory (None if absent)."""
    path = os.path.join(directory, PROFILE_FILENAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


__all__ = [
    "MACHINE_KEYS",
    "NULL_PROFILER",
    "NullProfiler",
    "PROFILE_FILENAME",
    "PROFILE_SCHEMA",
    "PhaseProfile",
    "STAGE_PREFIX",
    "StageProfiler",
    "deterministic_view",
    "load_profile",
    "profile_stage_coverage",
]
