"""Loading a telemetry directory back into memory, defensively.

``repro trace``, ``repro diff`` and ``repro health`` all start from a
directory written by ``--telemetry-out``.  Any of its files can be
missing (older runs predate the scorecard), empty, or truncated (a run
killed mid-export).  :class:`RunDir` loads whatever is present and
raises :class:`TelemetryDirError` — whose message is a single printable
line — when the directory is unusable, so every CLI entry point can
``except TelemetryDirError`` and exit with code 2.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import repro.obs.schemas as schemas
from repro.obs.events import Event, EventLog
from repro.obs.manifest import MANIFEST_FILENAME
from repro.obs.prof import PROFILE_FILENAME
from repro.obs.quality import SCORECARD_FILENAME
from repro.obs.telemetry import (
    EVENTS_FILENAME,
    METRICS_FILENAME,
    TRACE_FILENAME,
)
from repro.obs.trace import SpanTracer, stage_summary

#: Any one of these makes a directory a telemetry directory.
TELEMETRY_FILES = (
    MANIFEST_FILENAME,
    METRICS_FILENAME,
    TRACE_FILENAME,
    EVENTS_FILENAME,
    SCORECARD_FILENAME,
    PROFILE_FILENAME,
)


class TelemetryDirError(RuntimeError):
    """A telemetry directory is missing, empty, or unreadable.

    The message is always a single line suitable for direct printing.
    """


@dataclass
class RunDir:
    """One telemetry directory, parsed."""

    path: str
    manifest: Optional[dict] = None
    metrics: Optional[dict] = None
    scorecard: Optional[dict] = None
    #: Parsed ``profile.json`` when the run was profiled (``--profile``).
    profile: Optional[dict] = None
    events: List[Event] = field(default_factory=list)
    stages: List[dict] = field(default_factory=list)

    # -- loading ----------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "RunDir":
        """Parse a telemetry directory; raise :class:`TelemetryDirError`
        (one-line message) when it cannot serve as one."""
        if not os.path.isdir(path):
            raise TelemetryDirError(f"no telemetry directory at {path}")
        present = [
            name for name in TELEMETRY_FILES
            if os.path.exists(os.path.join(path, name))
        ]
        if not present:
            raise TelemetryDirError(
                f"{path} contains no telemetry files "
                f"(expected one of: {', '.join(TELEMETRY_FILES)})"
            )
        run = cls(path=path)
        run.manifest = cls._load_json(path, MANIFEST_FILENAME)
        run.metrics = cls._load_json(path, METRICS_FILENAME)
        run.scorecard = cls._load_json(path, SCORECARD_FILENAME)
        run.profile = cls._load_json(path, PROFILE_FILENAME)
        if run.metrics is None and run.manifest:
            run.metrics = run.manifest.get("metrics")
        events_path = os.path.join(path, EVENTS_FILENAME)
        if os.path.exists(events_path):
            try:
                run.events = EventLog.load_jsonl(events_path)
            except (ValueError, KeyError) as exc:
                raise TelemetryDirError(
                    f"truncated or corrupt {EVENTS_FILENAME} in {path}: {exc}"
                ) from None
        if run.manifest and run.manifest.get("stages"):
            run.stages = run.manifest["stages"]
        else:
            trace_path = os.path.join(path, TRACE_FILENAME)
            if os.path.exists(trace_path):
                try:
                    run.stages = stage_summary(SpanTracer.load_jsonl(trace_path))
                except (ValueError, KeyError) as exc:
                    raise TelemetryDirError(
                        f"truncated or corrupt {TRACE_FILENAME} in {path}: {exc}"
                    ) from None
        return run

    @staticmethod
    def _load_json(path: str, name: str) -> Optional[dict]:
        file_path = os.path.join(path, name)
        if not os.path.exists(file_path):
            return None
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (ValueError, OSError) as exc:
            raise TelemetryDirError(
                f"truncated or corrupt {name} in {path}: {exc}"
            ) from None

    # -- views ------------------------------------------------------------

    def scalar_metrics(self) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
        """Every counter/gauge series as ``(name, labels) -> value``,
        with labels as a sorted tuple of (key, value) pairs."""
        values: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
        for metric in (self.metrics or {}).get("metrics", []):
            if metric.get("kind") not in ("counter", "gauge"):
                continue
            for series in metric.get("series", []):
                labels = tuple(sorted(
                    (str(k), str(v))
                    for k, v in (series.get("labels") or {}).items()
                ))
                values[(metric["name"], labels)] = float(series.get("value", 0.0))
        return values

    def histogram_series(self, name: str) -> List[dict]:
        """The exported series dicts of one histogram metric."""
        for metric in (self.metrics or {}).get("metrics", []):
            if metric.get("name") == name and metric.get("kind") == "histogram":
                return list(metric.get("series", []))
        return []

    def event_kind_counts(self, min_level: str = "debug") -> Dict[str, int]:
        """Event counts by kind, filtered to ``min_level`` and above."""
        order = ("debug", "info", "warning", "error")
        floor = order.index(min_level) if min_level in order else 0
        counts: Dict[str, int] = {}
        for event in self.events:
            level = event.level if event.level in order else "warning"
            if order.index(level) >= floor:
                counts[event.kind] = counts.get(event.kind, 0) + 1
        if not counts and not self.events and self.manifest:
            counts = dict(self.manifest.get("events") or {})
        return dict(sorted(counts.items()))

    def watchdog_summary(self) -> Optional[dict]:
        if self.manifest:
            return self.manifest.get("watchdog")
        return None

    def config(self) -> dict:
        """The run's StudyConfig dict (empty when no manifest)."""
        return dict((self.manifest or {}).get("config") or {})

    def config_hash(self) -> str:
        """The manifest's recorded config hash; recomputed from the
        config dict for manifests that predate the field."""
        recorded = (self.manifest or {}).get("config_hash")
        if isinstance(recorded, str) and recorded:
            return recorded
        return schemas.config_hash(self.config())

    def contracts_summary(self) -> Optional[dict]:
        if self.manifest:
            return self.manifest.get("contracts")
        return None

    def archive_summary(self) -> Optional[dict]:
        if self.manifest:
            return self.manifest.get("archive")
        return None

    def content_digest(self) -> str:
        """A short digest over the raw bytes of every telemetry artifact
        present in the directory.

        Same files → same digest, so re-ingesting an unchanged directory
        is recognized; two same-seed twin runs still differ (their
        manifests record distinct wall-clock stage timings), so both
        land in the registry as separate runs.
        """
        digest = hashlib.sha256()
        for name in TELEMETRY_FILES:
            file_path = os.path.join(self.path, name)
            if not os.path.exists(file_path):
                continue
            digest.update(name.encode("utf-8") + b"\x00")
            with open(file_path, "rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 16), b""):
                    digest.update(chunk)
            digest.update(b"\x00")
        return digest.hexdigest()[:16]

    def label(self) -> str:
        """A short human name for this run (config digest or path)."""
        config = (self.manifest or {}).get("config") or {}
        if config:
            bits = [
                f"{key}={config[key]}"
                for key in ("seed", "scale", "iterations") if key in config
            ]
            if bits:
                return f"{self.path} ({', '.join(bits)})"
        return self.path


__all__ = ["RunDir", "TELEMETRY_FILES", "TelemetryDirError"]
