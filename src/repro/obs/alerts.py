"""Deterministic anomaly alerting over the run registry.

``repro runs alerts`` judges the **latest** registered run against the
robust baseline (median/MAD, :mod:`repro.obs.trends`) of every run
before it, applying fixed rules:

``fidelity_band``
    A scorecard metric of the latest run is outside its own calibration
    band (the band ships inside ``scorecard.json``) — critical.
``fidelity_drop``
    A fidelity score fell below the baseline median by more than
    ``max(k·MAD, fidelity_tolerance)`` — warning.
``stage_time``
    A stage's **simulated** duration exceeds baseline median +
    ``max(k·MAD, rel_floor·median, abs_floor)`` — warning.  Wall-clock
    stage times are machine noise and only checked with
    ``include_wall=True``.
``error_rate_spike``
    The crawl error rate rose above baseline median +
    ``max(k·MAD, error_rate_tolerance)`` — critical.
``quarantine_spike``
    More records were quarantined than baseline median +
    ``max(k·MAD, quarantine_floor)`` — warning.
``coverage_drop``
    Crawl page coverage, contract record coverage, or the number of
    traced stages fell below its baseline — critical.

A degraded (failed-stage) latest run misses whole metric families; the
rules never crash on the absence — each baseline metric the latest run
did not report becomes a non-alarming ``missing_metric`` note in the
report (and unscorable scorecard entries become ``unscorable_entry``
notes), and every remaining metric is still judged.

Every threshold is computed from values stored in the registry — no
wall clock, no randomness — so the same registry contents always
produce the same ``alerts.json``.  N same-seed runs of the same code
have zero-variance deterministic series and **must never alarm**; the
strict inequalities above guarantee that (latest == median fires
nothing), which CI enforces with its twin-run registry gate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.schemas import ALERTS_SCHEMA
from repro.obs.trends import TrendSeries, compute_trends
from repro.util.fileio import atomic_write_json

ALERTS_FILENAME = "alerts.json"

_LEVELS = {"warning": "warning", "critical": "error"}


@dataclass(frozen=True)
class AlertConfig:
    """Thresholds for the deterministic rules; every field has a floor
    so zero-variance histories (MAD = 0) need a real move to alarm."""

    #: MAD multiplier for all baseline-relative rules.
    k_mad: float = 4.0
    #: Absolute drop a fidelity score may take before alarming.
    fidelity_tolerance: float = 0.02
    #: Relative growth a stage's sim time may take before alarming.
    stage_time_rel_floor: float = 0.25
    #: Absolute sim-seconds growth always tolerated.
    stage_time_abs_floor: float = 60.0
    #: Absolute error-rate rise always tolerated.
    error_rate_tolerance: float = 0.01
    #: Extra quarantined records always tolerated.
    quarantine_floor: float = 5.0
    #: Relative drop in crawl pages before coverage alarms.
    coverage_tolerance: float = 0.05
    #: Also apply the stage-time rule to wall clock (machine-noisy).
    include_wall: bool = False
    #: Judge against only the last N registered runs (None = all).
    last_n: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "k_mad": self.k_mad,
            "fidelity_tolerance": self.fidelity_tolerance,
            "stage_time_rel_floor": self.stage_time_rel_floor,
            "stage_time_abs_floor": self.stage_time_abs_floor,
            "error_rate_tolerance": self.error_rate_tolerance,
            "quarantine_floor": self.quarantine_floor,
            "coverage_tolerance": self.coverage_tolerance,
            "include_wall": self.include_wall,
            "last_n": self.last_n,
        }


@dataclass(frozen=True)
class Alert:
    """One fired rule: the metric, the observed value, and the
    threshold it crossed."""

    rule: str
    metric: str
    run_id: str
    value: float
    baseline: float
    threshold: float
    severity: str  # "warning" | "critical"
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "run_id": self.run_id,
            "value": round(self.value, 9),
            "baseline": round(self.baseline, 9),
            "threshold": round(self.threshold, 9),
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class AlertNote:
    """A non-alarming observation the evaluation wants on the record —
    e.g. a baseline metric the (degraded) latest run never reported.

    Notes never fire the exit-1 path; they exist so a failed-stage run
    judged against a healthy baseline reads "these metrics were absent"
    instead of silently judging only what happens to be present."""

    kind: str  # "missing_metric" | "unscorable_entry"
    metric: str
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "metric": self.metric,
                "detail": self.detail}


@dataclass
class AlertReport:
    """Every alert of one evaluation plus the context it ran in."""

    run_id: str
    runs_considered: int
    config: AlertConfig
    alerts: List[Alert] = field(default_factory=list)
    notes: List[AlertNote] = field(default_factory=list)

    @property
    def fired(self) -> bool:
        return bool(self.alerts)

    def counts(self) -> dict:
        counts = {}
        for alert in self.alerts:
            counts[alert.severity] = counts.get(alert.severity, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "schema": ALERTS_SCHEMA,
            "run_id": self.run_id,
            "runs_considered": self.runs_considered,
            "fired": self.fired,
            "counts": self.counts(),
            "config": self.config.to_dict(),
            "alerts": [
                alert.to_dict()
                for alert in sorted(
                    self.alerts,
                    key=lambda a: (a.severity != "critical", a.rule, a.metric),
                )
            ],
            "notes": [
                note.to_dict()
                for note in sorted(self.notes,
                                   key=lambda n: (n.kind, n.metric))
            ],
        }

    def render_text(self) -> str:
        if not self.alerts:
            lines = [
                f"no alerts: latest run {self.run_id} is within baseline "
                f"({self.runs_considered} run(s) considered)"
            ]
        else:
            lines = [
                f"{len(self.alerts)} alert(s) on run {self.run_id} "
                f"({self.runs_considered} run(s) considered):"
            ]
            for alert in sorted(
                self.alerts,
                key=lambda a: (a.severity != "critical", a.rule, a.metric),
            ):
                lines.append(
                    f"  [{alert.severity}] {alert.rule} {alert.metric}: "
                    f"{alert.message}"
                )
        for note in sorted(self.notes, key=lambda n: (n.kind, n.metric)):
            lines.append(f"  [note] {note.kind} {note.metric}: {note.detail}")
        return "\n".join(lines)


def evaluate_alerts(registry, config: Optional[AlertConfig] = None,
                    events=None) -> AlertReport:
    """Apply every rule to the latest run in ``registry``.

    ``events`` may be an :class:`~repro.obs.events.EventLog` (or the
    telemetry facade's event sink); each fired alert is also emitted as
    a structured ``alert.<rule>`` event.
    """
    config = config or AlertConfig()
    runs = registry.runs(last_n=config.last_n)
    if not runs:
        return AlertReport(run_id="", runs_considered=0, config=config)
    latest = runs[-1]
    report = AlertReport(
        run_id=latest.run_id, runs_considered=len(runs), config=config,
    )
    trends = {
        series.name: series
        for series in compute_trends(registry, last_n=config.last_n)
    }

    _check_fidelity_band(registry, latest, report)
    for name, series in sorted(trends.items()):
        if series.points[-1].seq != latest.seq:
            # The latest run did not report this metric.  A degraded
            # (failed-stage) run legitimately misses whole metric
            # families, and judging only what happens to be present
            # would silently shrink the ruleset — so put the absence on
            # the record.  Machine-dependent metrics (wall clock,
            # profile) are only noted when wall alerting is opted in:
            # an unprofiled run after profiled ones is not a finding.
            if series.machine_dependent and not config.include_wall:
                continue
            report.notes.append(AlertNote(
                kind="missing_metric", metric=name,
                detail=(
                    f"reported by {series.n} baseline run(s) but absent "
                    f"from latest run {latest.run_id}"
                ),
            ))
            continue
        if series.n < 2:
            continue
        if name.startswith("fidelity.") and not name.endswith(
                (".passed", ".n_failed")):
            _check_fidelity_drop(series, config, report)
        elif name.startswith("stage_sim_seconds."):
            _check_stage_time(series, config, report, clock="sim")
        elif name.startswith("stage_wall_seconds.") and config.include_wall:
            _check_stage_time(series, config, report, clock="wall")
        elif name == "crawl.error_rate":
            _check_error_rate(series, config, report)
        elif name == "contracts.quarantine_total":
            _check_quarantine(series, config, report)
        elif name in ("crawl.pages_total", "contracts.coverage",
                      "trace.stages_total"):
            _check_coverage(series, config, report)

    if events is not None:
        for alert in report.alerts:
            events.emit(
                f"alert.{alert.rule}",
                level=_LEVELS.get(alert.severity, "warning"),
                metric=alert.metric,
                run_id=alert.run_id,
                value=round(alert.value, 9),
                threshold=round(alert.threshold, 9),
                message=alert.message,
            )
    return report


# ---------------------------------------------------------------------------
# individual rules
# ---------------------------------------------------------------------------

def _check_fidelity_band(registry, latest, report: AlertReport) -> None:
    """Scorecard entries of the latest run outside their own band."""
    document = registry.document(latest.run_id) or {}
    scorecard = document.get("scorecard")
    if not scorecard:
        return
    for entry in scorecard.get("entries") or []:
        if entry.get("passed", True):
            continue
        raw = (entry.get("value"), entry.get("low"), entry.get("high"))
        if any(isinstance(v, bool) or not isinstance(v, (int, float, type(None)))
               for v in raw) or raw[0] is None:
            # A degraded run can leave unscorable entries (value None,
            # string placeholders); note them instead of crashing the
            # whole evaluation on float(None).
            report.notes.append(AlertNote(
                kind="unscorable_entry",
                metric=f"fidelity.{entry.get('name')}",
                detail=f"non-numeric scorecard entry {raw!r} skipped",
            ))
            continue
        value = float(raw[0])
        low = float(raw[1] if raw[1] is not None else 0.0)
        high = float(raw[2] if raw[2] is not None else 1.0)
        report.alerts.append(Alert(
            rule="fidelity_band",
            metric=f"fidelity.{entry.get('name')}",
            run_id=latest.run_id,
            value=value,
            baseline=low,
            threshold=low if value < low else high,
            severity="critical",
            message=(
                f"{entry.get('name')}={value:g} outside calibration band "
                f"[{low:g}, {high:g}]"
            ),
        ))


def _check_fidelity_drop(series: TrendSeries, config: AlertConfig,
                         report: AlertReport) -> None:
    baseline = series.baseline_median()
    slack = max(config.k_mad * series.baseline_mad(),
                config.fidelity_tolerance)
    threshold = baseline - slack
    if series.latest < threshold:
        report.alerts.append(Alert(
            rule="fidelity_drop", metric=series.name,
            run_id=series.points[-1].run_id,
            value=series.latest, baseline=baseline, threshold=threshold,
            severity="warning",
            message=(
                f"dropped to {series.latest:g} from baseline median "
                f"{baseline:g} (tolerance {slack:g})"
            ),
        ))


def _check_stage_time(series: TrendSeries, config: AlertConfig,
                      report: AlertReport, clock: str) -> None:
    baseline = series.baseline_median()
    slack = max(
        config.k_mad * series.baseline_mad(),
        config.stage_time_rel_floor * baseline,
        config.stage_time_abs_floor if clock == "sim" else 0.05,
    )
    threshold = baseline + slack
    if series.latest > threshold:
        report.alerts.append(Alert(
            rule="stage_time", metric=series.name,
            run_id=series.points[-1].run_id,
            value=series.latest, baseline=baseline, threshold=threshold,
            severity="warning",
            message=(
                f"{clock} time {series.latest:g}s exceeds baseline median "
                f"{baseline:g}s + {slack:g}s"
            ),
        ))


def _check_error_rate(series: TrendSeries, config: AlertConfig,
                      report: AlertReport) -> None:
    baseline = series.baseline_median()
    slack = max(config.k_mad * series.baseline_mad(),
                config.error_rate_tolerance)
    threshold = baseline + slack
    if series.latest > threshold:
        report.alerts.append(Alert(
            rule="error_rate_spike", metric=series.name,
            run_id=series.points[-1].run_id,
            value=series.latest, baseline=baseline, threshold=threshold,
            severity="critical",
            message=(
                f"error rate {series.latest:g} exceeds baseline median "
                f"{baseline:g} + {slack:g}"
            ),
        ))


def _check_quarantine(series: TrendSeries, config: AlertConfig,
                      report: AlertReport) -> None:
    baseline = series.baseline_median()
    slack = max(config.k_mad * series.baseline_mad(),
                config.quarantine_floor)
    threshold = baseline + slack
    if series.latest > threshold:
        report.alerts.append(Alert(
            rule="quarantine_spike", metric=series.name,
            run_id=series.points[-1].run_id,
            value=series.latest, baseline=baseline, threshold=threshold,
            severity="warning",
            message=(
                f"{series.latest:g} quarantined records exceed baseline "
                f"median {baseline:g} + {slack:g}"
            ),
        ))


def _check_coverage(series: TrendSeries, config: AlertConfig,
                    report: AlertReport) -> None:
    baseline = series.baseline_median()
    threshold = baseline * (1.0 - config.coverage_tolerance)
    if series.latest < threshold:
        report.alerts.append(Alert(
            rule="coverage_drop", metric=series.name,
            run_id=series.points[-1].run_id,
            value=series.latest, baseline=baseline, threshold=threshold,
            severity="critical",
            message=(
                f"coverage {series.latest:g} fell below "
                f"{threshold:g} ({100 * config.coverage_tolerance:g}% under "
                f"baseline median {baseline:g})"
            ),
        ))


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------

def write_alerts(path: str, report: AlertReport) -> str:
    """Write ``alerts.json``; ``path`` may be a directory or a file."""
    if os.path.isdir(path):
        path = os.path.join(path, ALERTS_FILENAME)
    return atomic_write_json(path, report.to_dict())


__all__ = [
    "ALERTS_FILENAME",
    "Alert",
    "AlertConfig",
    "AlertNote",
    "AlertReport",
    "evaluate_alerts",
    "write_alerts",
]
