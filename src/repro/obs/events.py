"""Structured crawl-event log.

Every anomaly the pipeline used to swallow into a bare ``errors += 1``
— HTTP failures, robots blocks, extraction failures, registration
failures — becomes an :class:`Event` with full context (URL,
marketplace, iteration, exception class).  Events carry the simulated
timestamp, never wall time, so the stream is byte-identical across two
runs with the same seed.

The log exports to JSONL (one event per line) and loads back, so tests
and the ``repro trace`` subcommand can round-trip it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.fileio import atomic_write
from repro.util.simtime import SimClock

LEVELS = ("debug", "info", "warning", "error")


@dataclass
class Event:
    """One structured pipeline event."""

    kind: str
    sim_time: float = 0.0
    level: str = "warning"
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "sim_time": self.sim_time,
            "level": self.level,
            "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        return cls(
            kind=data["kind"],
            sim_time=data.get("sim_time", 0.0),
            level=data.get("level", "warning"),
            fields=dict(data.get("fields", {})),
        )


class EventLog:
    """Append-only, deterministic event collector."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self._clock = clock
        self.events: List[Event] = []

    def set_clock(self, clock: SimClock) -> None:
        self._clock = clock

    def emit(self, kind: str, level: str = "warning", **fields: object) -> Event:
        if level not in LEVELS:
            raise ValueError(f"unknown event level: {level!r}")
        event = Event(
            kind=kind,
            sim_time=self._clock.now() if self._clock is not None else 0.0,
            level=level,
            fields=fields,
        )
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def export_jsonl(self, path: str) -> None:
        with atomic_write(path) as handle:
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

    @staticmethod
    def load_jsonl(path: str) -> List[Event]:
        events: List[Event] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(Event.from_dict(json.loads(line)))
        return events


class NullEventLog:
    """Event log stand-in for disabled telemetry."""

    events: List[Event] = []

    def set_clock(self, clock) -> None:
        pass

    def emit(self, kind: str, level: str = "warning", **fields: object) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def counts_by_kind(self) -> Dict[str, int]:
        return {}

    def export_jsonl(self, path: str) -> None:
        pass


__all__ = ["Event", "EventLog", "LEVELS", "NullEventLog"]
