"""Run-to-run regression diffing: ``repro diff RUN_A RUN_B``.

Compares two telemetry directories and classifies every change as
informational or a **regression**:

* scorecard entries whose value dropped by more than the tolerance, or
  that flipped from passing to failing (or appeared already failing);
* error-flavoured metrics (``*error*``, ``robots_blocked_total``,
  ``watchdog_findings``) that increased, and ``crawl_coverage_ratio``
  series that decreased beyond tolerance;
* warning/error event kinds present in B but absent from A;
* stages whose **simulated** duration grew past the tolerance band.

Wall-clock durations are machine noise, never regressions, and are kept
out of the default rendering so that diffing two same-seed runs
produces byte-identical (and empty) output; ``include_wall=True`` adds
an informational wall-ratio section.

The CLI maps the result to exit codes: 0 = no regressions, 1 =
regressions found, 2 = a directory could not be loaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.rundir import RunDir

#: Substrings marking a metric as "more of it is worse".
_ERROR_METRIC_MARKERS = ("error", "robots_blocked", "watchdog_findings")


@dataclass(frozen=True)
class DiffConfig:
    """Tolerances for regression classification."""

    #: Absolute drop in a scorecard value that counts as a regression.
    scorecard_tolerance: float = 0.02
    #: Relative growth of an error metric tolerated (0.0 = any increase
    #: regresses).
    error_metric_tolerance: float = 0.0
    #: Absolute drop in a coverage ratio tolerated.
    coverage_tolerance: float = 0.02
    #: Relative growth in per-stage *simulated* duration tolerated.
    sim_duration_tolerance: float = 0.25
    #: Include (nondeterministic) wall-clock ratios in the rendering.
    include_wall: bool = False


@dataclass(frozen=True)
class DiffLine:
    """One observed difference between the two runs."""

    section: str  # "scorecard" | "metrics" | "events" | "stages"
    name: str
    a: Optional[float]
    b: Optional[float]
    regression: bool
    note: str = ""

    def render(self) -> str:
        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:g}"

        marker = "REGRESSION" if self.regression else "change"
        text = f"  [{marker}] {self.name}: {fmt(self.a)} -> {fmt(self.b)}"
        if self.note:
            text += f"  ({self.note})"
        return text


@dataclass
class RunDiff:
    """All differences between two runs, regression-classified."""

    run_a: str
    run_b: str
    lines: List[DiffLine] = field(default_factory=list)
    wall_lines: List[str] = field(default_factory=list)

    def regressions(self) -> List[DiffLine]:
        return [line for line in self.lines if line.regression]

    @property
    def has_regressions(self) -> bool:
        return any(line.regression for line in self.lines)

    def render_text(self) -> str:
        out: List[str] = [f"diff: {self.run_a} -> {self.run_b}"]
        if not self.lines:
            out.append("no differences")
        else:
            by_section: Dict[str, List[DiffLine]] = {}
            for line in self.lines:
                by_section.setdefault(line.section, []).append(line)
            for section in sorted(by_section):
                out.append(f"{section}:")
                out.extend(line.render() for line in by_section[section])
        if self.wall_lines:
            out.append("stage wall-time ratios (informational, machine-dependent):")
            out.extend(self.wall_lines)
        n = len(self.regressions())
        out.append(
            f"{n} regression{'s' if n != 1 else ''}, "
            f"{len(self.lines)} difference{'s' if len(self.lines) != 1 else ''}"
        )
        return "\n".join(out)


def diff_runs(a: RunDir, b: RunDir,
              config: Optional[DiffConfig] = None) -> RunDiff:
    """Compare two loaded telemetry directories (A = baseline, B = new)."""
    config = config or DiffConfig()
    diff = RunDiff(run_a=a.path, run_b=b.path)
    _diff_scorecards(diff, a, b, config)
    _diff_metrics(diff, a, b, config)
    _diff_events(diff, a, b)
    _diff_stages(diff, a, b, config)
    return diff


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------

def _diff_scorecards(diff: RunDiff, a: RunDir, b: RunDir,
                     config: DiffConfig) -> None:
    entries_a = {
        e["name"]: e for e in (a.scorecard or {}).get("entries", [])
    }
    entries_b = {
        e["name"]: e for e in (b.scorecard or {}).get("entries", [])
    }
    for name in sorted(set(entries_a) | set(entries_b)):
        ea, eb = entries_a.get(name), entries_b.get(name)
        if ea is None:
            regression = not eb.get("passed", True)
            diff.lines.append(DiffLine(
                "scorecard", name, None, eb.get("value"),
                regression=regression,
                note="new entry" + (" (failing)" if regression else ""),
            ))
            continue
        if eb is None:
            diff.lines.append(DiffLine(
                "scorecard", name, ea.get("value"), None,
                regression=False, note="entry vanished",
            ))
            continue
        va, vb = float(ea.get("value", 0.0)), float(eb.get("value", 0.0))
        newly_failing = ea.get("passed", True) and not eb.get("passed", True)
        dropped = (
            ea.get("kind") == "ground_truth"
            and va - vb > config.scorecard_tolerance
        )
        if va != vb or newly_failing:
            note = "now failing" if newly_failing else ""
            diff.lines.append(DiffLine(
                "scorecard", name, va, vb,
                regression=newly_failing or dropped, note=note,
            ))


def _is_error_metric(name: str) -> bool:
    return any(marker in name for marker in _ERROR_METRIC_MARKERS)


def _series_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _diff_metrics(diff: RunDiff, a: RunDir, b: RunDir,
                  config: DiffConfig) -> None:
    metrics_a = a.scalar_metrics()
    metrics_b = b.scalar_metrics()
    for key in sorted(set(metrics_a) | set(metrics_b)):
        name, labels = key
        va = metrics_a.get(key)
        vb = metrics_b.get(key)
        display = _series_name(name, labels)
        if va is None or vb is None or va != vb:
            regression = False
            note = ""
            if _is_error_metric(name):
                baseline = va or 0.0
                current = vb or 0.0
                allowed = baseline * (1.0 + config.error_metric_tolerance)
                if current > allowed:
                    regression = True
                    note = "error metric increased"
            elif name == "crawl_coverage_ratio" and va is not None:
                if (vb or 0.0) < va - config.coverage_tolerance:
                    regression = True
                    note = "coverage dropped"
            diff.lines.append(DiffLine(
                "metrics", display, va, vb, regression=regression, note=note,
            ))


def _diff_events(diff: RunDiff, a: RunDir, b: RunDir) -> None:
    counts_a = a.event_kind_counts(min_level="warning")
    counts_b = b.event_kind_counts(min_level="warning")
    for kind in sorted(set(counts_a) | set(counts_b)):
        ca, cb = counts_a.get(kind), counts_b.get(kind)
        if ca == cb:
            continue
        if ca is None:
            diff.lines.append(DiffLine(
                "events", kind, None, float(cb),
                regression=True, note="new error kind",
            ))
        elif cb is None:
            diff.lines.append(DiffLine(
                "events", kind, float(ca), None,
                regression=False, note="error kind vanished",
            ))
        else:
            diff.lines.append(DiffLine(
                "events", kind, float(ca), float(cb),
                regression=cb > ca, note="count changed",
            ))


def _diff_stages(diff: RunDiff, a: RunDir, b: RunDir,
                 config: DiffConfig) -> None:
    stages_a = {stage["name"]: stage for stage in a.stages}
    stages_b = {stage["name"]: stage for stage in b.stages}
    for name in sorted(set(stages_a) | set(stages_b)):
        sa, sb = stages_a.get(name), stages_b.get(name)
        if sa is None or sb is None:
            diff.lines.append(DiffLine(
                "stages", name,
                None if sa is None else sa.get("sim_seconds", 0.0),
                None if sb is None else sb.get("sim_seconds", 0.0),
                regression=False,
                note="stage appeared" if sa is None else "stage vanished",
            ))
            continue
        sim_a = float(sa.get("sim_seconds", 0.0))
        sim_b = float(sb.get("sim_seconds", 0.0))
        if sim_a != sim_b:
            slower = (
                sim_a > 0
                and sim_b > sim_a * (1.0 + config.sim_duration_tolerance)
            )
            ratio = sim_b / sim_a if sim_a else float("inf")
            diff.lines.append(DiffLine(
                "stages", f"{name} (sim s)", round(sim_a, 3), round(sim_b, 3),
                regression=slower,
                note=f"x{ratio:.2f}" if sim_a else "new sim time",
            ))
        if config.include_wall:
            wall_a = float(sa.get("wall_seconds", 0.0))
            wall_b = float(sb.get("wall_seconds", 0.0))
            if wall_a > 0:
                diff.wall_lines.append(
                    f"  {name}: {wall_a:.3f}s -> {wall_b:.3f}s "
                    f"(x{wall_b / wall_a:.2f})"
                )


__all__ = ["DiffConfig", "DiffLine", "RunDiff", "diff_runs"]
