"""The single registry of schema identifiers for emitted JSON artifacts.

Every JSON document the pipeline writes — the run manifest, the fidelity
scorecard, the performance profile, the bench baseline, the sealed
archive manifest, the machine-readable trace summary, and the cross-run
registry/trends/alerts documents — carries a ``"schema"`` key naming its
format and version (``repro.<artifact>/v<N>``).  Before this module the
id strings were scattered across their emitters; now each emitter
imports its constant from here, and consumers (the run registry, the
bench comparator, the archive reader) validate against the same source
of truth.

This module has **no** ``repro`` imports so any layer — including
:mod:`repro.archive` — can use it without import cycles.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

# -- artifact schema ids ----------------------------------------------------

#: ``manifest.json`` — the per-run manifest (:mod:`repro.obs.manifest`).
MANIFEST_SCHEMA = "repro.run-manifest/v1"
#: ``metrics.json`` — the metric snapshot (:mod:`repro.obs.metrics`).
METRICS_SCHEMA = "repro.metrics/v1"
#: ``scorecard.json`` — the fidelity scorecard (:mod:`repro.obs.quality`).
SCORECARD_SCHEMA = "repro.scorecard/v1"
#: ``profile.json`` — the performance profile (:mod:`repro.obs.prof`).
PROFILE_SCHEMA = "repro.profile/v1"
#: ``BENCH_pipeline.json`` — the perf baseline (:mod:`repro.obs.bench`).
BENCH_SCHEMA = "repro.bench-pipeline/v1"
#: ``archive.json`` — the sealed crawl archive (:mod:`repro.archive`).
ARCHIVE_SCHEMA = "repro.crawl-archive/v2"
#: ``repro trace --json`` — the machine-readable run summary
#: (:func:`repro.obs.summary.trace_document`).
TRACE_DOC_SCHEMA = "repro.trace-summary/v1"
#: The SQLite run registry's ``meta`` table (:mod:`repro.obs.registry`).
REGISTRY_SCHEMA = "repro.run-registry/v1"
#: ``repro runs trends --json`` (:mod:`repro.obs.trends`).
TRENDS_SCHEMA = "repro.trend-series/v1"
#: ``alerts.json`` — deterministic anomaly alerts (:mod:`repro.obs.alerts`).
ALERTS_SCHEMA = "repro.alerts/v1"
#: ``ledger.jsonl`` header — the monitor daemon's durable schedule
#: ledger (:mod:`repro.monitor.ledger`).
MONITOR_LEDGER_SCHEMA = "repro.monitor-ledger/v1"
#: ``store.json`` — the segmented dataset store's sealed manifest
#: (:mod:`repro.store`).
STORE_SCHEMA = "repro.store/v1"
#: ``catalog.json`` — the read-optimized serving catalog's manifest
#: (:mod:`repro.serve.catalog`).
CATALOG_SCHEMA = "repro.catalog/v1"
#: Every JSON body the catalog HTTP API serves
#: (:mod:`repro.serve.api`).
CATALOG_API_SCHEMA = "repro.catalog-api/v1"
#: ``BENCH_serve.json`` — the serving-layer load-generator bench
#: (:mod:`repro.serve.bench`).
BENCH_SERVE_SCHEMA = "repro.bench-serve/v1"

#: Every schema id this codebase knows how to read or write.
KNOWN_SCHEMAS = frozenset({
    MANIFEST_SCHEMA,
    METRICS_SCHEMA,
    SCORECARD_SCHEMA,
    PROFILE_SCHEMA,
    BENCH_SCHEMA,
    ARCHIVE_SCHEMA,
    TRACE_DOC_SCHEMA,
    REGISTRY_SCHEMA,
    TRENDS_SCHEMA,
    ALERTS_SCHEMA,
    MONITOR_LEDGER_SCHEMA,
    STORE_SCHEMA,
    CATALOG_SCHEMA,
    CATALOG_API_SCHEMA,
    BENCH_SERVE_SCHEMA,
})

#: Telemetry-dir artifact file -> the schema id its contents must carry.
#: (JSONL streams — trace.jsonl, events.jsonl, quarantine.jsonl — are
#: line-oriented and carry no document-level id.)
ARTIFACT_SCHEMAS: Dict[str, str] = {
    "manifest.json": MANIFEST_SCHEMA,
    "metrics.json": METRICS_SCHEMA,
    "scorecard.json": SCORECARD_SCHEMA,
    "profile.json": PROFILE_SCHEMA,
    "BENCH_pipeline.json": BENCH_SCHEMA,
    "archive.json": ARCHIVE_SCHEMA,
    "alerts.json": ALERTS_SCHEMA,
    "catalog.json": CATALOG_SCHEMA,
    "BENCH_serve.json": BENCH_SERVE_SCHEMA,
}


class SchemaError(ValueError):
    """A JSON artifact carries a missing, unknown, or mismatched schema
    id.  The message is a single printable line."""


def artifact_schema(document: Optional[dict]) -> Optional[str]:
    """The ``"schema"`` id of a parsed JSON artifact, or None."""
    if not isinstance(document, dict):
        return None
    value = document.get("schema")
    return value if isinstance(value, str) else None


def check_schema(document: Optional[dict], expected: str,
                 source: str = "artifact") -> None:
    """Raise :class:`SchemaError` unless ``document`` carries exactly
    ``expected`` as its schema id."""
    found = artifact_schema(document)
    if found != expected:
        raise SchemaError(
            f"{source}: schema id {found!r} does not match "
            f"expected {expected!r}"
        )


def check_artifact(name: str, document: Optional[dict],
                   source: str = "") -> None:
    """Validate one telemetry artifact by filename.

    Unknown filenames pass (forward compatibility); known filenames must
    carry their registered id.  Documents written before the schema key
    existed (no ``"schema"`` at all) fail — the registry refuses to
    ingest artifacts it cannot version-check.
    """
    expected = ARTIFACT_SCHEMAS.get(name)
    if expected is None or document is None:
        return
    check_schema(document, expected, source=source or name)


def canonical_json(value) -> str:
    """The canonical serialization used for hashing: sorted keys,
    minimal separators, no NaN literals."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, default=str)


def config_hash(config: Optional[dict]) -> str:
    """A short stable digest of a run's configuration dict.

    Key order does not matter; any JSON-representable config hashes the
    same on every platform.  Used to key registry rows so runs are only
    comparable to runs of the same configuration.
    """
    digest = hashlib.sha256(canonical_json(config or {}).encode("utf-8"))
    return digest.hexdigest()[:16]


__all__ = [
    "ALERTS_SCHEMA",
    "ARCHIVE_SCHEMA",
    "ARTIFACT_SCHEMAS",
    "BENCH_SCHEMA",
    "BENCH_SERVE_SCHEMA",
    "CATALOG_API_SCHEMA",
    "CATALOG_SCHEMA",
    "KNOWN_SCHEMAS",
    "MANIFEST_SCHEMA",
    "METRICS_SCHEMA",
    "MONITOR_LEDGER_SCHEMA",
    "PROFILE_SCHEMA",
    "REGISTRY_SCHEMA",
    "SCORECARD_SCHEMA",
    "STORE_SCHEMA",
    "SchemaError",
    "TRACE_DOC_SCHEMA",
    "TRENDS_SCHEMA",
    "artifact_schema",
    "canonical_json",
    "check_artifact",
    "check_schema",
    "config_hash",
]
