"""A zero-dependency metrics registry (counters, gauges, histograms).

Modeled after the Prometheus client-library data model, but in-process
and exportable to plain JSON: metrics are named, carry a fixed tuple of
label names, and hold one series per distinct label-value combination.
Histograms use cumulative buckets (each bucket counts observations
``<= upper_bound``), so exports can be turned into quantile estimates.

Everything here is deterministic: snapshots sort metrics by name and
series by label values, and no wall-clock state is kept.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.schemas import METRICS_SCHEMA
from repro.util.fileio import atomic_write_json

_DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0,
)


class MetricError(ValueError):
    """Bad metric usage: wrong labels, redeclared type, invalid name."""


def quantile_from_buckets(bounds: Sequence[float],
                          cumulative_counts: Sequence[int],
                          count: int, q: float) -> float:
    """The q-quantile (0..1) of a cumulative-bucket histogram.

    ``cumulative_counts[i]`` counts observations ``<= bounds[i]``.  The
    estimate interpolates linearly inside the bucket that crosses the
    target rank (the Prometheus ``histogram_quantile`` rule); values
    beyond the top finite bucket clamp to the largest bound.
    """
    if count <= 0:
        return 0.0
    target = min(max(q, 0.0), 1.0) * count
    prev_bound = 0.0
    prev_cum = 0
    for bound, cum in zip(bounds, cumulative_counts):
        if cum >= target:
            span = cum - prev_cum
            if span <= 0:
                return bound
            return prev_bound + (bound - prev_bound) * (target - prev_cum) / span
        prev_bound, prev_cum = bound, cum
    return float(bounds[-1]) if bounds else 0.0


def exported_histogram_quantile(series: dict, q: float) -> float:
    """Quantile from one exported histogram series dict (see
    :meth:`Histogram._series_dicts`: ``{"count": n, "buckets": {bound:
    cumulative}}``).  Accepts the JSON round-tripped form."""
    buckets = series.get("buckets") or {}
    pairs = sorted((float(bound), int(cum)) for bound, cum in buckets.items())
    return quantile_from_buckets(
        [b for b, _ in pairs], [c for _, c in pairs],
        int(series.get("count", 0)), q,
    )


class _Metric:
    """Base: a named family of series keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} expects labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _series_dicts(self) -> List[dict]:  # pragma: no cover - overridden
        raise NotImplementedError

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "series": self._series_dicts(),
        }


class Counter(_Metric):
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def _series_dicts(self) -> List[dict]:
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def _series_dicts(self) -> List[dict]:
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in sorted(self._values.items())
        ]


class _HistogramSeries:
    __slots__ = ("count", "sum", "bucket_counts")

    def __init__(self, n_buckets: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.bucket_counts = [0] * n_buckets


class Histogram(_Metric):
    """Cumulative-bucket histogram of observed values.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; an
    implicit ``+Inf`` bucket equals ``count``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(buckets) if buckets is not None else _DEFAULT_BUCKETS
        if not bounds or sorted(bounds) != list(bounds):
            raise MetricError("histogram buckets must be non-empty and ascending")
        self.buckets: Tuple[float, ...] = bounds
        self._series: Dict[Tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[index] += 1

    def count(self, **labels: object) -> int:
        series = self._series.get(self._key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(self._key(labels))
        return series.sum if series else 0.0

    def bucket_counts(self, **labels: object) -> List[int]:
        series = self._series.get(self._key(labels))
        return list(series.bucket_counts) if series else [0] * len(self.buckets)

    def quantile(self, q: float, **labels: object) -> float:
        """Estimate the q-quantile (0..1) for one series by linear
        interpolation within its cumulative buckets."""
        series = self._series.get(self._key(labels))
        if series is None:
            return 0.0
        return quantile_from_buckets(
            self.buckets, series.bucket_counts, series.count, q
        )

    def _series_dicts(self) -> List[dict]:
        return [
            {
                "labels": dict(zip(self.label_names, key)),
                "count": series.count,
                "sum": series.sum,
                "buckets": dict(zip(
                    (str(b) for b in self.buckets), series.bucket_counts
                )),
            }
            for key, series in sorted(self._series.items())
        ]


class MetricsRegistry:
    """Get-or-create home for all metrics of one telemetry context."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       label_names: Sequence[str], **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if existing.label_names != tuple(label_names):
                raise MetricError(
                    f"metric {name!r} already registered with labels "
                    f"{list(existing.label_names)}"
                )
            return existing
        metric = cls(name, help, label_names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def snapshot(self) -> dict:
        """JSON-serializable dump of every metric, sorted by name."""
        return {
            "schema": METRICS_SCHEMA,
            "metrics": [
                self._metrics[name].to_dict() for name in sorted(self._metrics)
            ],
        }

    def write_json(self, path: str) -> None:
        atomic_write_json(path, self.snapshot())


class NullMetric:
    """Accepts every operation and does nothing (disabled telemetry)."""

    def inc(self, *args, **kwargs) -> None:
        pass

    def dec(self, *args, **kwargs) -> None:
        pass

    def set(self, *args, **kwargs) -> None:
        pass

    def observe(self, *args, **kwargs) -> None:
        pass

    def value(self, **labels) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels) -> int:
        return 0

    def sum(self, **labels) -> float:
        return 0.0

    def quantile(self, q: float, **labels) -> float:
        return 0.0


class NullRegistry:
    """Registry stand-in whose metrics are all the same no-op object."""

    _metric = NullMetric()

    def counter(self, name: str, help: str = "", labels=()) -> NullMetric:
        return self._metric

    def gauge(self, name: str, help: str = "", labels=()) -> NullMetric:
        return self._metric

    def histogram(self, name: str, help: str = "", labels=(),
                  buckets=None) -> NullMetric:
        return self._metric

    def get(self, name: str) -> None:
        return None

    def snapshot(self) -> dict:
        return {"metrics": []}

    def write_json(self, path: str) -> None:
        pass


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NullMetric",
    "NullRegistry",
    "exported_histogram_quantile",
    "quantile_from_buckets",
]
