"""Observability: metrics, tracing, structured events, run manifests.

The pipeline is a five-month simulated measurement campaign; this
package makes it inspectable end to end:

* :mod:`repro.obs.metrics` — labeled counters / gauges / histograms
  with a JSON snapshot (``http_requests_total{host,status}``, ...);
* :mod:`repro.obs.trace` — nested spans charged to both the simulated
  clock and wall time, exported as JSONL;
* :mod:`repro.obs.events` — the structured crawl-anomaly log (JSONL);
* :mod:`repro.obs.manifest` — the per-run manifest that makes two runs
  diffable (config, git revision, stage durations, error counts);
* :mod:`repro.obs.telemetry` — the facade threading all of the above
  through the pipeline, with a zero-cost disabled mode;
* :mod:`repro.obs.summary` — rendering for ``repro trace <run-dir>``.
"""

from repro.obs.events import Event, EventLog, NullEventLog
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    build_manifest,
    git_describe,
    load_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.summary import render_trace_summary
from repro.obs.telemetry import (
    EVENTS_FILENAME,
    METRICS_FILENAME,
    NULL_TELEMETRY,
    TRACE_FILENAME,
    Telemetry,
    configure_logging,
)
from repro.obs.trace import NullTracer, SpanRecord, SpanTracer, stage_summary

__all__ = [
    "Counter",
    "Event",
    "EventLog",
    "EVENTS_FILENAME",
    "Gauge",
    "Histogram",
    "MANIFEST_FILENAME",
    "METRICS_FILENAME",
    "MetricError",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullEventLog",
    "NullRegistry",
    "NullTracer",
    "SpanRecord",
    "SpanTracer",
    "TRACE_FILENAME",
    "Telemetry",
    "build_manifest",
    "configure_logging",
    "git_describe",
    "load_manifest",
    "render_trace_summary",
    "stage_summary",
    "write_manifest",
]
