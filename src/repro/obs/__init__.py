"""Observability: metrics, tracing, structured events, run manifests.

The pipeline is a five-month simulated measurement campaign; this
package makes it inspectable end to end:

* :mod:`repro.obs.metrics` — labeled counters / gauges / histograms
  with a JSON snapshot (``http_requests_total{host,status}``, ...);
* :mod:`repro.obs.trace` — nested spans charged to both the simulated
  clock and wall time, exported as JSONL;
* :mod:`repro.obs.events` — the structured crawl-anomaly log (JSONL);
* :mod:`repro.obs.manifest` — the per-run manifest that makes two runs
  diffable (config, git revision, stage durations, error counts);
* :mod:`repro.obs.telemetry` — the facade threading all of the above
  through the pipeline, with a zero-cost disabled mode;
* :mod:`repro.obs.summary` — rendering for ``repro trace <run-dir>``;
* :mod:`repro.obs.quality` — the end-of-run fidelity scorecard scored
  against ground truth and the paper-shape calibration targets;
* :mod:`repro.obs.watchdog` — in-flight crawl-health monitors
  (coverage, error/ban rates, stalls);
* :mod:`repro.obs.rundir` — defensive loading of telemetry dirs;
* :mod:`repro.obs.diff` — run-to-run regression diffing;
* :mod:`repro.obs.report_html` — the single-file health dashboard.
"""

from repro.obs.diff import DiffConfig, DiffLine, RunDiff, diff_runs
from repro.obs.events import Event, EventLog, NullEventLog
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    build_manifest,
    git_describe,
    load_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.quality import (
    SCORECARD_FILENAME,
    Scorecard,
    ScoreEntry,
    compute_scorecard,
    load_scorecard,
    write_scorecard,
)
from repro.obs.report_html import health_status, render_health_html
from repro.obs.rundir import RunDir, TelemetryDirError
from repro.obs.summary import render_trace_summary
from repro.obs.telemetry import (
    EVENTS_FILENAME,
    METRICS_FILENAME,
    NULL_TELEMETRY,
    TRACE_FILENAME,
    Telemetry,
    configure_logging,
)
from repro.obs.trace import NullTracer, SpanRecord, SpanTracer, stage_summary
from repro.obs.watchdog import CrawlWatchdog, Finding, WatchdogConfig

__all__ = [
    "Counter",
    "CrawlWatchdog",
    "DiffConfig",
    "DiffLine",
    "Event",
    "EventLog",
    "EVENTS_FILENAME",
    "Finding",
    "Gauge",
    "Histogram",
    "MANIFEST_FILENAME",
    "METRICS_FILENAME",
    "MetricError",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullEventLog",
    "NullRegistry",
    "NullTracer",
    "RunDiff",
    "RunDir",
    "SCORECARD_FILENAME",
    "Scorecard",
    "ScoreEntry",
    "SpanRecord",
    "SpanTracer",
    "TRACE_FILENAME",
    "Telemetry",
    "TelemetryDirError",
    "WatchdogConfig",
    "build_manifest",
    "compute_scorecard",
    "configure_logging",
    "diff_runs",
    "git_describe",
    "health_status",
    "load_manifest",
    "load_scorecard",
    "render_health_html",
    "render_trace_summary",
    "stage_summary",
    "write_manifest",
    "write_scorecard",
]
