"""Observability: metrics, tracing, structured events, run manifests.

The pipeline is a five-month simulated measurement campaign; this
package makes it inspectable end to end:

* :mod:`repro.obs.metrics` — labeled counters / gauges / histograms
  with a JSON snapshot (``http_requests_total{host,status}``, ...);
* :mod:`repro.obs.trace` — nested spans charged to both the simulated
  clock and wall time, exported as JSONL;
* :mod:`repro.obs.events` — the structured crawl-anomaly log (JSONL);
* :mod:`repro.obs.manifest` — the per-run manifest that makes two runs
  diffable (config, git revision, stage durations, error counts);
* :mod:`repro.obs.telemetry` — the facade threading all of the above
  through the pipeline, with a zero-cost disabled mode;
* :mod:`repro.obs.summary` — rendering for ``repro trace <run-dir>``;
* :mod:`repro.obs.quality` — the end-of-run fidelity scorecard scored
  against ground truth and the paper-shape calibration targets;
* :mod:`repro.obs.watchdog` — in-flight crawl-health monitors
  (coverage, error/ban rates, stalls);
* :mod:`repro.obs.rundir` — defensive loading of telemetry dirs;
* :mod:`repro.obs.diff` — run-to-run regression diffing;
* :mod:`repro.obs.report_html` — the single-file health dashboard;
* :mod:`repro.obs.prof` — the ``--profile`` performance profiler
  (per-phase/per-stage wall, sim, memory, throughput → profile.json);
* :mod:`repro.obs.bench` — the ``repro bench`` harness behind the
  committed ``BENCH_pipeline.json`` perf baseline;
* :mod:`repro.obs.schemas` — the single registry of schema ids every
  emitted JSON artifact carries;
* :mod:`repro.obs.registry` — the cross-run SQLite run registry behind
  ``repro runs ingest/list/show``;
* :mod:`repro.obs.trends` — per-metric trend series with median/MAD
  baselines across registered runs;
* :mod:`repro.obs.alerts` — deterministic anomaly rules over the
  registry (``repro runs alerts`` → ``alerts.json``, exit 1 on fire).
"""

from repro.obs.alerts import (
    ALERTS_FILENAME,
    Alert,
    AlertConfig,
    AlertNote,
    AlertReport,
    evaluate_alerts,
    write_alerts,
)

from repro.obs.bench import (
    BENCH_FILENAME,
    BENCH_SCHEMA,
    BenchComparison,
    BenchError,
    compare_bench,
    load_baseline,
    run_bench,
    write_bench,
)

from repro.obs.diff import DiffConfig, DiffLine, RunDiff, diff_runs
from repro.obs.events import Event, EventLog, NullEventLog
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    build_manifest,
    git_describe,
    load_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.quality import (
    SCORECARD_FILENAME,
    Scorecard,
    ScoreEntry,
    compute_scorecard,
    load_scorecard,
    write_scorecard,
)
from repro.obs.prof import (
    NULL_PROFILER,
    PROFILE_FILENAME,
    PROFILE_SCHEMA,
    NullProfiler,
    StageProfiler,
    deterministic_view,
    load_profile,
    profile_stage_coverage,
)
from repro.obs.registry import (
    IngestResult,
    REGISTRY_FILENAME,
    RegistryError,
    RunRegistry,
    RunRow,
    metrics_from_document,
)
from repro.obs.report_html import (
    FLEET_FILENAME,
    health_problems,
    health_status,
    render_fleet_html,
    render_health_html,
)
from repro.obs.rundir import RunDir, TelemetryDirError
from repro.obs.schemas import (
    ALERTS_SCHEMA,
    ARTIFACT_SCHEMAS,
    KNOWN_SCHEMAS,
    MANIFEST_SCHEMA,
    METRICS_SCHEMA,
    REGISTRY_SCHEMA,
    SCORECARD_SCHEMA,
    SchemaError,
    TRACE_DOC_SCHEMA,
    TRENDS_SCHEMA,
    check_artifact,
    check_schema,
    config_hash,
)
from repro.obs.summary import render_trace_summary, trace_document
from repro.obs.trends import (
    TrendPoint,
    TrendSeries,
    compute_trends,
    render_trends_text,
    sparkline,
    trends_document,
)
from repro.obs.telemetry import (
    EVENTS_FILENAME,
    METRICS_FILENAME,
    NULL_TELEMETRY,
    TRACE_FILENAME,
    Telemetry,
    configure_logging,
)
from repro.obs.trace import NullTracer, SpanRecord, SpanTracer, stage_summary
from repro.obs.watchdog import CrawlWatchdog, Finding, WatchdogConfig

__all__ = [
    "ALERTS_FILENAME",
    "ALERTS_SCHEMA",
    "ARTIFACT_SCHEMAS",
    "Alert",
    "AlertConfig",
    "AlertNote",
    "AlertReport",
    "BENCH_FILENAME",
    "BENCH_SCHEMA",
    "FLEET_FILENAME",
    "IngestResult",
    "KNOWN_SCHEMAS",
    "MANIFEST_SCHEMA",
    "METRICS_SCHEMA",
    "REGISTRY_FILENAME",
    "REGISTRY_SCHEMA",
    "RegistryError",
    "RunRegistry",
    "RunRow",
    "SCORECARD_SCHEMA",
    "SchemaError",
    "TRACE_DOC_SCHEMA",
    "TRENDS_SCHEMA",
    "TrendPoint",
    "TrendSeries",
    "check_artifact",
    "check_schema",
    "compute_trends",
    "config_hash",
    "evaluate_alerts",
    "metrics_from_document",
    "render_fleet_html",
    "render_trends_text",
    "sparkline",
    "trace_document",
    "trends_document",
    "write_alerts",
    "BenchComparison",
    "BenchError",
    "Counter",
    "CrawlWatchdog",
    "DiffConfig",
    "DiffLine",
    "Event",
    "EventLog",
    "EVENTS_FILENAME",
    "Finding",
    "Gauge",
    "Histogram",
    "MANIFEST_FILENAME",
    "METRICS_FILENAME",
    "MetricError",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TELEMETRY",
    "NullEventLog",
    "NullProfiler",
    "NullRegistry",
    "NullTracer",
    "PROFILE_FILENAME",
    "PROFILE_SCHEMA",
    "RunDiff",
    "RunDir",
    "SCORECARD_FILENAME",
    "StageProfiler",
    "Scorecard",
    "ScoreEntry",
    "SpanRecord",
    "SpanTracer",
    "TRACE_FILENAME",
    "Telemetry",
    "TelemetryDirError",
    "WatchdogConfig",
    "build_manifest",
    "compare_bench",
    "compute_scorecard",
    "configure_logging",
    "deterministic_view",
    "diff_runs",
    "git_describe",
    "health_problems",
    "health_status",
    "load_baseline",
    "load_manifest",
    "load_profile",
    "load_scorecard",
    "profile_stage_coverage",
    "render_health_html",
    "render_trace_summary",
    "run_bench",
    "stage_summary",
    "write_bench",
    "write_manifest",
    "write_scorecard",
]
