"""Span tracing charged to both the simulated clock and wall time.

A span covers one unit of pipeline work (study -> module -> marketplace
-> page -> request).  Each span records its duration twice: against the
:class:`~repro.util.simtime.SimClock` the crawl runs on (deterministic —
two runs with the same seed produce identical sim durations) and against
``time.perf_counter()`` wall time (for real profiling; never compared
across runs).

Spans nest through an explicit stack: ``tracer.span(...)`` parents the
new span under whichever span is currently open.  Finished spans land in
``tracer.spans`` in completion order and export to JSONL one object per
line.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.fileio import atomic_write
from repro.util.simtime import SimClock


@dataclass
class SpanRecord:
    """One completed (or open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    sim_start: float = 0.0
    sim_end: float = 0.0
    wall_start: float = 0.0
    wall_end: float = 0.0

    @property
    def sim_duration(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> float:
        return self.wall_end - self.wall_start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": self.attrs,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "sim_duration": self.sim_duration,
            "wall_duration": self.wall_duration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        record = cls(
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            sim_start=data.get("sim_start", 0.0),
            sim_end=data.get("sim_end", 0.0),
        )
        record.wall_start = 0.0
        record.wall_end = data.get("wall_duration", 0.0)
        return record


class _OpenSpan:
    """Context manager handle returned by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "SpanTracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> SpanRecord:
        return self.record

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.record)


class SpanTracer:
    """Collects nested spans; span ids are sequential and deterministic."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self._clock = clock
        self._stack: List[SpanRecord] = []
        self._next_id = 1
        self.spans: List[SpanRecord] = []

    def set_clock(self, clock: SimClock) -> None:
        self._clock = clock

    def _sim_now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def span(self, name: str, **attrs: object) -> _OpenSpan:
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            name=name,
            attrs=attrs,
            sim_start=self._sim_now(),
            wall_start=time.perf_counter(),
        )
        self._next_id += 1
        self._stack.append(record)
        return _OpenSpan(self, record)

    def _finish(self, record: SpanRecord) -> None:
        record.sim_end = self._sim_now()
        record.wall_end = time.perf_counter()
        # Pop through abandoned children too, so an exception that skips
        # inner __exit__ calls cannot wedge the stack.
        while self._stack:
            top = self._stack.pop()
            if top.span_id == record.span_id:
                break
        self.spans.append(record)

    @property
    def current(self) -> Optional[SpanRecord]:
        return self._stack[-1] if self._stack else None

    # -- reporting -----------------------------------------------------------

    def stage_summary(self) -> List[dict]:
        """Durations of the top-level pipeline stages (see module fn)."""
        return stage_summary(self.spans)

    def export_jsonl(self, path: str) -> None:
        with atomic_write(path) as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")

    @staticmethod
    def load_jsonl(path: str) -> List[SpanRecord]:
        spans: List[SpanRecord] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(SpanRecord.from_dict(json.loads(line)))
        return spans


def stage_summary(spans: List[SpanRecord]) -> List[dict]:
    """Per-stage summary rows from a span list.

    A *stage* is a span one level below a root (e.g. the children of the
    ``study`` span: deploy, iteration_crawl, profile_collection, ...)
    plus any childless root (e.g. the nlp.* analysis spans recorded
    after the study finished).  Container roots themselves are omitted;
    rows come out in completion order.
    """
    children_of: Dict[Optional[int], int] = {}
    for span in spans:
        children_of[span.parent_id] = children_of.get(span.parent_id, 0) + 1
    root_ids = {s.span_id for s in spans if s.parent_id is None}
    stages = [
        s for s in spans
        if (s.parent_id in root_ids)
        or (s.parent_id is None and not children_of.get(s.span_id))
    ]
    return [
        {
            "name": span.name,
            "sim_seconds": round(span.sim_duration, 6),
            "wall_seconds": round(span.wall_duration, 6),
            "spans": children_of.get(span.span_id, 0),
            "attrs": span.attrs,
        }
        for span in stages
    ]


class _NullSpan:
    """Shared, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullTracer:
    """Tracer stand-in for disabled telemetry; ``span`` allocates nothing."""

    _span = _NullSpan()
    spans: List[SpanRecord] = []

    def set_clock(self, clock) -> None:
        pass

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return self._span

    @property
    def current(self) -> None:
        return None

    def stage_summary(self) -> List[dict]:
        return []

    def export_jsonl(self, path: str) -> None:
        pass


__all__ = [
    "NullTracer",
    "SpanRecord",
    "SpanTracer",
    "stage_summary",
]
