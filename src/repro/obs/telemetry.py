"""The telemetry facade the pipeline threads through every layer.

A :class:`Telemetry` bundles the three observability primitives —
metrics registry, span tracer, event log — behind one object that is
either fully enabled or a set of shared no-ops.  Call sites never branch
on whether telemetry is on: they hold a ``Telemetry`` (defaulting to the
module-level :data:`NULL_TELEMETRY`) and record unconditionally; the
disabled path costs one attribute lookup and an empty method call.

``set_clock`` binds the simulated clock once the :class:`Internet`
exists, so spans and events are stamped in simulated seconds and stay
deterministic across same-seed runs.
"""

from __future__ import annotations

import logging
import os
from typing import List, Optional, Union

from repro.obs.events import EventLog, NullEventLog
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.prof import NULL_PROFILER, PROFILE_FILENAME, StageProfiler
from repro.obs.trace import NullTracer, SpanTracer
from repro.util.simtime import SimClock

METRICS_FILENAME = "metrics.json"
TRACE_FILENAME = "trace.jsonl"
EVENTS_FILENAME = "events.jsonl"


class Telemetry:
    """Metrics + tracing + events (+ optional profiler) behind one switch."""

    def __init__(self, enabled: bool = True,
                 clock: Optional[SimClock] = None,
                 profiler: Optional[StageProfiler] = None) -> None:
        self.enabled = enabled
        #: The performance profiler (``--profile``); the shared no-op
        #: unless one is supplied or installed later by the pipeline.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        if enabled:
            self.metrics: Union[MetricsRegistry, NullRegistry] = MetricsRegistry()
            self.tracer: Union[SpanTracer, NullTracer] = SpanTracer(clock)
            self.events: Union[EventLog, NullEventLog] = EventLog(clock)
        else:
            self.metrics = NullRegistry()
            self.tracer = NullTracer()
            self.events = NullEventLog()

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op instance (see :data:`NULL_TELEMETRY`)."""
        return NULL_TELEMETRY

    def set_clock(self, clock: SimClock) -> None:
        self.tracer.set_clock(clock)
        self.events.set_clock(clock)
        self.profiler.set_clock(clock)

    def export(self, directory: str) -> List[str]:
        """Write metrics.json, trace.jsonl, events.jsonl — plus
        profile.json when the run was profiled — to a dir.

        Returns the written paths; a disabled telemetry writes nothing.
        """
        if not self.enabled:
            return []
        os.makedirs(directory, exist_ok=True)
        paths = [
            os.path.join(directory, METRICS_FILENAME),
            os.path.join(directory, TRACE_FILENAME),
            os.path.join(directory, EVENTS_FILENAME),
        ]
        self.metrics.write_json(paths[0])
        self.tracer.export_jsonl(paths[1])
        self.events.export_jsonl(paths[2])
        if self.profiler.enabled:
            profile_path = os.path.join(directory, PROFILE_FILENAME)
            self.profiler.export_json(profile_path)
            paths.append(profile_path)
        return paths


#: Shared no-op used as the default everywhere telemetry is optional.
NULL_TELEMETRY = Telemetry(enabled=False)


def configure_logging(level: str = "warning",
                      stream=None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy for CLI runs."""
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper(), logging.WARNING))
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger


__all__ = [
    "EVENTS_FILENAME",
    "METRICS_FILENAME",
    "NULL_TELEMETRY",
    "TRACE_FILENAME",
    "Telemetry",
    "configure_logging",
]
