"""The ``repro bench`` harness: ``BENCH_pipeline.json`` baselines.

Runs the scale-0.02 throughput study (the same configuration as
``benchmarks/test_pipeline_throughput.py``) N times with a timing-only
:class:`~repro.obs.prof.StageProfiler` (no tracemalloc, so the numbers
are undistorted), plus one dedicated memory round with full tracing, and
writes a schema-versioned baseline:

* median/p95/min/max wall seconds, total and per stage;
* pages/s and records/s medians;
* peak tracemalloc bytes and max RSS from the memory round;
* an environment fingerprint (python, platform, cpu count, git).

``compare_bench`` classifies every metric of a fresh result against a
committed baseline as **improved**, **within-noise**, or **regressed**
under a configurable relative tolerance; the CLI exits 1 on any
regression (CI runs this as a soft perf gate) and 2 on a corrupt or
schema-mismatched baseline (always a hard failure — a rotten baseline
silently waves every regression through).

Wall-clock numbers here are machine-dependent by design: the bench file
is a committed *trend artifact* (the repo's perf history), not a
determinism-gated output — see the DESIGN note on why wall time is
excluded from twin-run byte-identity gates.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.manifest import git_describe
from repro.obs.prof import StageProfiler
from repro.obs.schemas import BENCH_SCHEMA
from repro.util.fileio import atomic_write_json

BENCH_FILENAME = "BENCH_pipeline.json"

#: Default timing rounds; overridable via ``REPRO_BENCH_ROUNDS`` or
#: ``repro bench --rounds``.
DEFAULT_ROUNDS = 5
#: Default relative drift tolerated before a metric counts as improved
#: or regressed.
DEFAULT_TOLERANCE = 0.25
#: Stages whose baseline wall time is below this floor are too noisy to
#: classify; they always compare within-noise.
MIN_STAGE_WALL_SECONDS = 0.02


class BenchError(RuntimeError):
    """A bench baseline is missing, corrupt, or schema-incompatible.

    The message is a single printable line; the CLI maps it to exit 2.
    """


def default_rounds() -> int:
    """Rounds from ``REPRO_BENCH_ROUNDS`` (default :data:`DEFAULT_ROUNDS`)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_ROUNDS",
                                         str(DEFAULT_ROUNDS))))
    except ValueError:
        return DEFAULT_ROUNDS


def env_fingerprint() -> dict:
    """Where a bench result came from (never compared, always recorded)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git": git_describe(),
    }


def _quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of a small sample."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = min(max(q, 0.0), 1.0) * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def _summary(values: Sequence[float]) -> dict:
    return {
        "median": round(_quantile(values, 0.5), 6),
        "p95": round(_quantile(values, 0.95), 6),
        "min": round(min(values), 6) if values else 0.0,
        "max": round(max(values), 6) if values else 0.0,
        "rounds": [round(v, 6) for v in values],
    }


def run_bench(rounds: Optional[int] = None, scale: float = 0.02,
              iterations: int = 3, seed: int = 99,
              memory_round: bool = True,
              profile_out: Optional[str] = None,
              progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run the throughput study ``rounds`` times and build a bench dict.

    ``profile_out`` additionally exports the memory round's full
    ``profile.json`` (CI uploads it as an artifact).  ``progress`` gets
    one short line per round for CLI feedback.
    """
    # Imported here, not at module top: obs must not hold an import edge
    # into core (core.pipeline imports the telemetry facade).
    from repro.analysis.suite import STAGE_NAMES
    from repro.core.pipeline import Study, StudyConfig
    from repro.obs.telemetry import Telemetry

    rounds = default_rounds() if rounds is None else max(1, rounds)
    config = StudyConfig(seed=seed, scale=scale, iterations=iterations)
    say = progress or (lambda line: None)

    total_walls: List[float] = []
    stage_walls: Dict[str, List[float]] = {}
    stage_sims: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    sim_seconds = 0.0

    def one_round(memory: bool) -> StageProfiler:
        profiler = StageProfiler(
            memory=memory,
            top_allocations=5 if memory else 0,
            stages_expected=STAGE_NAMES,
        )
        telemetry = Telemetry(profiler=profiler)
        Study(config, telemetry=telemetry).run()
        return profiler

    for index in range(rounds):
        start = time.perf_counter()
        profiler = one_round(memory=False)
        wall = time.perf_counter() - start
        total_walls.append(wall)
        say(f"round {index + 1}/{rounds}: {wall:.2f}s wall")
        snapshot = profiler.snapshot()
        sim_seconds = snapshot["totals"]["sim_seconds"]
        counts = snapshot["totals"]["counts"]
        for phase in snapshot["phases"]:
            stage_walls.setdefault(phase["name"], []).append(
                phase["wall_seconds"]
            )
            stage_sims[phase["name"]] = phase["sim_seconds"]

    memory: Optional[dict] = None
    stage_memory: Dict[str, int] = {}
    if memory_round:
        say("memory round (tracemalloc on)")
        profiler = one_round(memory=True)
        snapshot = profiler.snapshot()
        memory = snapshot["totals"]["memory"]
        for phase in snapshot["phases"]:
            stage_memory[phase["name"]] = phase["memory"]["peak_bytes"]
        if profile_out:
            profiler.export_json(profile_out)

    wall_median = _quantile(total_walls, 0.5)
    pages = int(counts.get("pages", 0))
    records = int(counts.get("records", 0))
    stages = {}
    for name, walls in sorted(stage_walls.items()):
        stages[name] = {
            "wall_median": round(_quantile(walls, 0.5), 6),
            "wall_p95": round(_quantile(walls, 0.95), 6),
            "sim_seconds": stage_sims.get(name, 0.0),
        }
        if name in stage_memory:
            stages[name]["mem_peak_bytes"] = stage_memory[name]
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "scale": scale,
            "iterations": iterations,
            "seed": seed,
            "rounds": rounds,
        },
        "env": env_fingerprint(),
        "totals": {
            "wall_seconds": _summary(total_walls),
            "sim_seconds": sim_seconds,
            "pages": pages,
            "records": records,
            "pages_per_second_median": round(pages / wall_median, 3)
            if wall_median > 0 else 0.0,
            "records_per_second_median": round(records / wall_median, 3)
            if wall_median > 0 else 0.0,
            "memory": memory,
        },
        "stages": stages,
    }


def write_bench(path: str, bench: dict) -> str:
    return atomic_write_json(path, bench, trailing_newline=True)


def load_baseline(path: str) -> dict:
    """Read and validate a bench baseline; :class:`BenchError` otherwise."""
    if not os.path.exists(path):
        raise BenchError(f"no bench baseline at {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (ValueError, OSError) as exc:
        raise BenchError(f"corrupt bench baseline {path}: {exc}") from None
    if not isinstance(baseline, dict) or baseline.get("schema") != BENCH_SCHEMA:
        raise BenchError(
            f"bench baseline {path} has schema "
            f"{(baseline or {}).get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    return baseline


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

IMPROVED = "improved"
WITHIN_NOISE = "within-noise"
REGRESSED = "regressed"


@dataclass(frozen=True)
class MetricDrift:
    """One metric's movement between baseline and current."""

    name: str
    baseline: float
    current: float
    verdict: str  # IMPROVED | WITHIN_NOISE | REGRESSED
    note: str = ""

    def render(self) -> str:
        marker = {REGRESSED: "REGRESSED", IMPROVED: "improved",
                  WITHIN_NOISE: "within noise"}[self.verdict]
        ratio = self.current / self.baseline if self.baseline else float("inf")
        text = (f"  [{marker}] {self.name}: {self.baseline:g} -> "
                f"{self.current:g} (x{ratio:.2f})")
        if self.note:
            text += f"  ({self.note})"
        return text


@dataclass
class BenchComparison:
    """All metric drifts between a baseline and a fresh bench result."""

    baseline_path: str
    tolerance: float
    drifts: List[MetricDrift] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(d.verdict == REGRESSED for d in self.drifts)

    def verdicts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for drift in self.drifts:
            counts[drift.verdict] = counts.get(drift.verdict, 0) + 1
        return counts

    def render_text(self) -> str:
        out = [
            f"bench compare vs {self.baseline_path} "
            f"(tolerance {self.tolerance:.0%})"
        ]
        out.extend(drift.render() for drift in self.drifts)
        counts = self.verdicts()
        out.append(
            f"{counts.get(REGRESSED, 0)} regressed, "
            f"{counts.get(IMPROVED, 0)} improved, "
            f"{counts.get(WITHIN_NOISE, 0)} within noise"
        )
        return "\n".join(out)


def _classify(name: str, baseline: float, current: float, tolerance: float,
              lower_is_better: bool, note: str = "") -> MetricDrift:
    if baseline <= 0:
        return MetricDrift(name, baseline, current, WITHIN_NOISE,
                           note="no baseline signal")
    ratio = current / baseline
    if lower_is_better:
        worse, better = ratio > 1.0 + tolerance, ratio < 1.0 - tolerance
    else:
        worse, better = ratio < 1.0 - tolerance, ratio > 1.0 + tolerance
    verdict = REGRESSED if worse else IMPROVED if better else WITHIN_NOISE
    return MetricDrift(name, baseline, current, verdict, note)


def compare_bench(baseline: dict, current: dict,
                  tolerance: float = DEFAULT_TOLERANCE,
                  baseline_path: str = BENCH_FILENAME) -> BenchComparison:
    """Classify every comparable metric's drift (baseline -> current)."""
    if baseline.get("schema") != BENCH_SCHEMA:
        raise BenchError(
            f"bench baseline has schema {baseline.get('schema')!r}, "
            f"expected {BENCH_SCHEMA!r}"
        )
    comparison = BenchComparison(baseline_path=baseline_path,
                                 tolerance=tolerance)
    base_totals = baseline.get("totals") or {}
    cur_totals = current.get("totals") or {}

    def total_wall(totals: dict) -> float:
        return float((totals.get("wall_seconds") or {}).get("median", 0.0))

    comparison.drifts.append(_classify(
        "total_wall_seconds_median", total_wall(base_totals),
        total_wall(cur_totals), tolerance, lower_is_better=True,
    ))
    for name, lower in (("pages_per_second_median", False),
                        ("records_per_second_median", False)):
        comparison.drifts.append(_classify(
            name, float(base_totals.get(name, 0.0)),
            float(cur_totals.get(name, 0.0)), tolerance,
            lower_is_better=lower,
        ))
    base_mem = (base_totals.get("memory") or {})
    cur_mem = (cur_totals.get("memory") or {})
    if base_mem.get("tracemalloc_peak_bytes") and \
            cur_mem.get("tracemalloc_peak_bytes"):
        comparison.drifts.append(_classify(
            "tracemalloc_peak_bytes",
            float(base_mem["tracemalloc_peak_bytes"]),
            float(cur_mem["tracemalloc_peak_bytes"]),
            tolerance, lower_is_better=True,
        ))
    base_stages = baseline.get("stages") or {}
    cur_stages = current.get("stages") or {}
    for name in sorted(set(base_stages) & set(cur_stages)):
        base_wall = float(base_stages[name].get("wall_median", 0.0))
        cur_wall = float(cur_stages[name].get("wall_median", 0.0))
        if base_wall < MIN_STAGE_WALL_SECONDS:
            comparison.drifts.append(MetricDrift(
                f"stage:{name}", base_wall, cur_wall, WITHIN_NOISE,
                note=f"baseline below {MIN_STAGE_WALL_SECONDS}s floor",
            ))
            continue
        comparison.drifts.append(_classify(
            f"stage:{name}", base_wall, cur_wall, tolerance,
            lower_is_better=True,
        ))
    return comparison


__all__ = [
    "BENCH_FILENAME",
    "BENCH_SCHEMA",
    "BenchComparison",
    "BenchError",
    "DEFAULT_ROUNDS",
    "DEFAULT_TOLERANCE",
    "IMPROVED",
    "MetricDrift",
    "REGRESSED",
    "WITHIN_NOISE",
    "compare_bench",
    "default_rounds",
    "env_fingerprint",
    "load_baseline",
    "run_bench",
    "write_bench",
]
