"""Crawl-health watchdogs.

The paper's crawl ran for five months; a silent partial failure (a
marketplace banning the crawler, a markup change breaking extraction)
would have skewed every downstream table.  This module watches the crawl
*while it runs*, off the same counters and event stream the telemetry
layer already collects:

* **coverage auditor** — after each iteration, compares the number of
  offers the substrate actually served per marketplace against the
  number the crawler extracted; a shortfall means offers were dropped
  (bans, broken markup, truncated pagination);
* **error/ban-rate monitor** — per-marketplace error share of fetched
  pages, with HTTP 403/429 answers tracked separately as ban pressure;
* **stall detector** — flags iterations whose simulated duration blows
  past the typical iteration, and iterations that fetched nothing.

Findings are severity-tagged (``warning`` / ``critical``), emitted into
the event log as ``watchdog.*`` events (critical maps to the ``error``
level), mirrored as metrics, and summarized into the run manifest.

Everything here is O(marketplaces) arithmetic per iteration — cheap
enough to stay enabled by default under the telemetry overhead budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

#: severity -> event-log level.
_SEVERITY_LEVELS = {"warning": "warning", "critical": "error"}

#: HTTP statuses that read as the crawler being banned or throttled.
_BAN_STATUSES = ("403", "429")


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds for the crawl-health checks."""

    #: Minimum extracted/served offer ratio per marketplace+iteration.
    coverage_floor: float = 0.85
    #: Below this ratio coverage escalates from warning to critical.
    coverage_critical: float = 0.5
    #: Maximum errors / pages-fetched per marketplace+iteration.
    error_rate_ceiling: float = 0.25
    #: Maximum 403/429 share of fetched pages before flagging a ban.
    ban_rate_ceiling: float = 0.10
    #: Iterations slower than ``stall_factor`` x the median iteration's
    #: simulated duration are flagged as stalls.
    stall_factor: float = 5.0
    #: Don't judge ratios on fewer pages than this (tiny marketplaces).
    min_pages: int = 4


@dataclass(frozen=True)
class Finding:
    """One watchdog observation."""

    check: str  # "coverage" | "error_rate" | "ban_rate" | "stall"
    severity: str  # "warning" | "critical"
    subject: str  # marketplace name, or "crawl" for global checks
    iteration: Optional[int]
    value: float
    threshold: float
    message: str

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "severity": self.severity,
            "subject": self.subject,
            "iteration": self.iteration,
            "value": round(self.value, 6),
            "threshold": self.threshold,
            "message": self.message,
        }


class CrawlWatchdog:
    """Watches iteration crawls through their reports and the sim clock.

    The pipeline calls :meth:`begin_iteration` / :meth:`end_iteration`
    around each collection iteration, handing over that iteration's
    :class:`~repro.crawler.crawler.CrawlReport` list and the offer
    counts the substrate says it served (``expected_counts``).  Findings
    accumulate on the instance and go out as events immediately.
    """

    def __init__(
        self,
        telemetry: Optional[Telemetry] = None,
        config: Optional[WatchdogConfig] = None,
        clock=None,
        expected_counts: Optional[Callable[[], Dict[str, int]]] = None,
    ) -> None:
        self.telemetry = telemetry or NULL_TELEMETRY
        self.config = config or WatchdogConfig()
        self._clock = clock
        self._expected_counts = expected_counts
        self.findings: List[Finding] = []
        self._iteration_started_at: float = 0.0
        self._iteration_durations: List[float] = []

    # -- lifecycle --------------------------------------------------------

    def begin_iteration(self, iteration: int) -> None:
        self._iteration_started_at = self._now()

    def end_iteration(self, iteration: int, reports) -> None:
        """Audit one completed iteration from its per-marketplace reports."""
        expected = self._expected_counts() if self._expected_counts else {}
        parsed_by_market: Dict[str, int] = {}
        for report in reports:
            parsed_by_market[report.marketplace] = (
                parsed_by_market.get(report.marketplace, 0)
                + report.offers_parsed
            )
            self._check_error_rates(iteration, report)
        self._check_coverage(iteration, expected, parsed_by_market)
        self._check_stall(iteration, reports)

    def finish(self) -> None:
        """Final bookkeeping once the crawl completes."""
        counts = self.counts()
        gauge = self.telemetry.metrics.gauge(
            "watchdog_findings", "watchdog findings by severity",
            labels=("severity",),
        )
        for severity in sorted(_SEVERITY_LEVELS):
            gauge.set(float(counts.get(severity, 0)), severity=severity)

    # -- checks -----------------------------------------------------------

    def _check_coverage(self, iteration: int, expected: Dict[str, int],
                        parsed: Dict[str, int]) -> None:
        coverage_gauge = self.telemetry.metrics.gauge(
            "crawl_coverage_ratio",
            "offers extracted / offers served, by marketplace",
            labels=("marketplace",),
        )
        for marketplace in sorted(expected):
            served = expected[marketplace]
            if served <= 0:
                continue
            ratio = parsed.get(marketplace, 0) / served
            coverage_gauge.set(round(ratio, 6), marketplace=marketplace)
            if ratio >= self.config.coverage_floor:
                continue
            severity = (
                "critical" if ratio < self.config.coverage_critical
                else "warning"
            )
            self._record(Finding(
                check="coverage", severity=severity, subject=marketplace,
                iteration=iteration, value=ratio,
                threshold=self.config.coverage_floor,
                message=(
                    f"{marketplace}: extracted "
                    f"{parsed.get(marketplace, 0)}/{served} served offers "
                    f"at iteration {iteration}"
                ),
            ))

    def _check_error_rates(self, iteration: int, report) -> None:
        pages = report.pages_fetched
        if pages < self.config.min_pages:
            return
        error_rate = report.errors / pages
        if error_rate > self.config.error_rate_ceiling:
            self._record(Finding(
                check="error_rate", severity="warning",
                subject=report.marketplace, iteration=iteration,
                value=error_rate, threshold=self.config.error_rate_ceiling,
                message=(
                    f"{report.marketplace}: {report.errors} errors over "
                    f"{pages} pages at iteration {iteration}"
                ),
            ))
        banned = sum(
            1 for error in report.error_details
            if error.kind == "http_status"
            and any(status in error.detail for status in _BAN_STATUSES)
        )
        ban_rate = banned / pages
        if ban_rate > self.config.ban_rate_ceiling:
            self._record(Finding(
                check="ban_rate", severity="critical",
                subject=report.marketplace, iteration=iteration,
                value=ban_rate, threshold=self.config.ban_rate_ceiling,
                message=(
                    f"{report.marketplace}: {banned} 403/429 answers over "
                    f"{pages} pages at iteration {iteration} — crawler "
                    "likely rate-limited or banned"
                ),
            ))

    def _check_stall(self, iteration: int, reports) -> None:
        if not any(report.pages_fetched for report in reports):
            self._record(Finding(
                check="stall", severity="critical", subject="crawl",
                iteration=iteration, value=0.0, threshold=1.0,
                message=f"iteration {iteration} fetched no pages at all",
            ))
        duration = max(0.0, self._now() - self._iteration_started_at)
        history = self._iteration_durations
        if history:
            typical = sorted(history)[len(history) // 2]
            limit = typical * self.config.stall_factor
            if typical > 0 and duration > limit:
                self._record(Finding(
                    check="stall", severity="warning", subject="crawl",
                    iteration=iteration, value=duration, threshold=limit,
                    message=(
                        f"iteration {iteration} took {duration:.0f}s of "
                        f"simulated time (typical: {typical:.0f}s)"
                    ),
                ))
        history.append(duration)

    # -- reporting --------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        """The manifest block: counts plus every finding, in order."""
        return {
            "config": {
                "coverage_floor": self.config.coverage_floor,
                "error_rate_ceiling": self.config.error_rate_ceiling,
                "ban_rate_ceiling": self.config.ban_rate_ceiling,
                "stall_factor": self.config.stall_factor,
            },
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def _record(self, finding: Finding) -> None:
        self.findings.append(finding)
        self.telemetry.events.emit(
            f"watchdog.{finding.check}",
            level=_SEVERITY_LEVELS[finding.severity],
            severity=finding.severity,
            subject=finding.subject,
            iteration=finding.iteration,
            value=round(finding.value, 6),
            threshold=finding.threshold,
            message=finding.message,
        )

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0


__all__ = ["CrawlWatchdog", "Finding", "WatchdogConfig"]
