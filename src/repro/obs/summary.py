"""Rendering for ``repro trace <run-dir>``.

Reads a telemetry directory (manifest.json / trace.jsonl / events.jsonl,
any subset) and produces the per-stage time-and-error summary table plus
event and crawl-error breakdowns.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.obs.events import EventLog
from repro.obs.manifest import load_manifest
from repro.obs.telemetry import EVENTS_FILENAME, TRACE_FILENAME
from repro.obs.trace import SpanTracer, stage_summary


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def _stage_rows(stages: List[dict],
                errors_by_stage: Optional[Dict[str, int]] = None) -> str:
    rows = []
    for stage in stages:
        name = stage["name"]
        rows.append([
            name,
            f"{stage.get('sim_seconds', 0.0):,.1f}",
            f"{stage.get('wall_seconds', 0.0):.3f}",
            str(stage.get("spans", 0)),
            str((errors_by_stage or {}).get(name, "")),
        ])
    return _format_table(
        ["stage", "sim s", "wall s", "spans", "errors"], rows
    )


def render_trace_summary(directory: str) -> str:
    """The full ``repro trace`` report for one telemetry directory."""
    sections: List[str] = []
    manifest = load_manifest(directory)
    trace_path = os.path.join(directory, TRACE_FILENAME)
    events_path = os.path.join(directory, EVENTS_FILENAME)

    stages: List[dict] = []
    if manifest and manifest.get("stages"):
        stages = manifest["stages"]
    elif os.path.exists(trace_path):
        stages = stage_summary(SpanTracer.load_jsonl(trace_path))

    if manifest:
        header = [f"run manifest: schema={manifest.get('schema')}"]
        if manifest.get("git"):
            header.append(f"git={manifest['git']}")
        config = manifest.get("config") or {}
        if config:
            header.append(
                "config: " + ", ".join(
                    f"{key}={config[key]}" for key in sorted(config)
                )
            )
        header.append(
            f"simulated_seconds={manifest.get('simulated_seconds', 0.0):,.1f}"
        )
        sections.append("\n".join(header))

    if stages:
        sections.append("per-stage summary:\n" + _stage_rows(stages))
    else:
        sections.append(f"no trace data found in {directory}")

    events: List = []
    if os.path.exists(events_path):
        events = EventLog.load_jsonl(events_path)
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    if not counts and manifest:
        counts = manifest.get("events", {})
    if counts:
        rows = [[kind, str(count)] for kind, count in sorted(counts.items())]
        sections.append("events by kind:\n" + _format_table(["kind", "count"], rows))
    else:
        sections.append("events by kind: none recorded")

    if manifest and manifest.get("crawl", {}).get("reports"):
        totals: Dict[str, List[int]] = {}
        for report in manifest["crawl"]["reports"]:
            row = totals.setdefault(report["marketplace"], [0, 0, 0])
            row[0] += report["pages_fetched"]
            row[1] += report["offers_parsed"]
            row[2] += report["errors"]
        rows = [
            [name, str(pages), str(offers), str(errors)]
            for name, (pages, offers, errors) in totals.items()
        ]
        sections.append(
            "crawl totals (summed over iterations):\n"
            + _format_table(["marketplace", "pages", "offers", "errors"], rows)
        )

    return "\n\n".join(sections)


__all__ = ["render_trace_summary"]
