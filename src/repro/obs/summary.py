"""Rendering for ``repro trace <run-dir>``.

Reads a telemetry directory through :class:`~repro.obs.rundir.RunDir`
(manifest.json / metrics.json / trace.jsonl / events.jsonl /
scorecard.json, any subset) and produces the per-stage
time-and-error summary, per-host HTTP latency quantiles and
retry/politeness overhead, watchdog and scorecard status, and event and
crawl-error breakdowns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.obs.metrics import exported_histogram_quantile
from repro.obs.rundir import RunDir
from repro.obs.schemas import TRACE_DOC_SCHEMA, config_hash


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def _stage_rows(stages: List[dict],
                errors_by_stage: Optional[Dict[str, int]] = None) -> str:
    rows = []
    for stage in stages:
        name = stage["name"]
        rows.append([
            name,
            f"{stage.get('sim_seconds', 0.0):,.1f}",
            f"{stage.get('wall_seconds', 0.0):.3f}",
            str(stage.get("spans", 0)),
            str((errors_by_stage or {}).get(name, "")),
        ])
    return _format_table(
        ["stage", "sim s", "wall s", "spans", "errors"], rows
    )


def _http_section(run: RunDir) -> Optional[str]:
    """Per-host request counts, p50/p95 sim latency, and the retry /
    politeness wait totals the :class:`~repro.web.client.ClientStats`
    accumulate."""
    latency = run.histogram_series("http_request_sim_seconds")
    scalars = run.scalar_metrics()
    waits: Dict[str, List[float]] = {}
    for (name, labels), value in scalars.items():
        if name not in ("http_retry_wait_seconds_total",
                        "http_politeness_wait_seconds_total"):
            continue
        host = dict(labels).get("host", "")
        slot = waits.setdefault(host, [0.0, 0.0])
        slot[0 if name.startswith("http_retry") else 1] += value
    series_by_host = {
        (s.get("labels") or {}).get("host", ""): s for s in latency
    }
    hosts = sorted(set(series_by_host) | set(waits))
    if not hosts:
        return None
    rows = []
    for host in hosts:
        series = series_by_host.get(host)
        count = int(series.get("count", 0)) if series else 0
        p50 = exported_histogram_quantile(series, 0.5) if series else 0.0
        p95 = exported_histogram_quantile(series, 0.95) if series else 0.0
        retry, polite = waits.get(host, [0.0, 0.0])
        rows.append([
            host, str(count), f"{p50:.3f}", f"{p95:.3f}",
            f"{retry:,.1f}", f"{polite:,.1f}",
        ])
    return (
        "http client, per host (sim seconds):\n"
        + _format_table(
            ["host", "requests", "p50", "p95", "retry wait", "polite wait"],
            rows,
        )
    )


def _profile_sections(run: RunDir) -> List[str]:
    """"hot stages" and "memory peaks" from ``profile.json``, when the
    run was profiled (``repro run --profile``)."""
    profile = run.profile
    if not profile:
        return []
    phases = profile.get("phases") or []
    sections: List[str] = []
    hot = sorted(phases, key=lambda p: -p.get("wall_seconds", 0.0))[:8]
    if hot:
        rows = []
        for phase in hot:
            throughput = phase.get("throughput") or {}
            rate = ", ".join(
                f"{key.replace('_per_second', '')} {value:,.0f}/s"
                for key, value in sorted(throughput.items())
            )
            rows.append([
                phase.get("name", ""),
                f"{phase.get('wall_seconds', 0.0):.3f}",
                f"{phase.get('sim_seconds', 0.0):,.1f}",
                rate,
            ])
        sections.append(
            "hot stages (profile.json, by wall time):\n"
            + _format_table(["phase", "wall s", "sim s", "throughput"], rows)
        )
    by_peak = sorted(
        phases,
        key=lambda p: -((p.get("memory") or {}).get("peak_bytes", 0)),
    )[:8]
    mem_rows = []
    for phase in by_peak:
        memory = phase.get("memory") or {}
        if not memory.get("peak_bytes"):
            continue
        top = memory.get("top_allocations") or []
        mem_rows.append([
            phase.get("name", ""),
            f"{memory.get('peak_bytes', 0) / 1e6:,.1f}",
            f"{memory.get('net_bytes', 0) / 1e6:,.1f}",
            top[0]["site"] if top else "",
        ])
    if mem_rows:
        totals_mem = (profile.get("totals") or {}).get("memory") or {}
        label_bits = []
        if totals_mem.get("tracemalloc_peak_bytes"):
            label_bits.append(
                "tracemalloc peak "
                f"{totals_mem['tracemalloc_peak_bytes'] / 1e6:,.1f} MB"
            )
        if totals_mem.get("rss_max_kb"):
            label_bits.append(
                f"max RSS {totals_mem['rss_max_kb'] / 1024:,.1f} MB"
            )
        label = f" ({', '.join(label_bits)})" if label_bits else ""
        sections.append(
            f"memory peaks{label}:\n"
            + _format_table(
                ["phase", "peak MB", "net MB", "top allocation site"],
                mem_rows,
            )
        )
    return sections


def _watchdog_section(run: RunDir) -> Optional[str]:
    summary = run.watchdog_summary()
    if summary is None:
        return None
    counts = summary.get("counts") or {}
    findings = summary.get("findings") or []
    if not findings:
        return "watchdog: no findings"
    label = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    rows = [
        [
            finding.get("severity", ""),
            finding.get("check", ""),
            finding.get("subject", ""),
            str(finding.get("iteration", "")),
            finding.get("message", ""),
        ]
        for finding in findings
    ]
    return (
        f"watchdog findings ({label}):\n"
        + _format_table(
            ["severity", "check", "subject", "iter", "message"], rows
        )
    )


def _scorecard_section(run: RunDir) -> Optional[str]:
    card = run.scorecard
    if not card:
        return None
    status = "PASS" if card.get("passed") else "FAIL"
    failed = [
        entry for entry in card.get("entries", [])
        if not entry.get("passed", False)
    ]
    lines = [
        f"fidelity scorecard: {status} "
        f"({card.get('n_entries', 0)} metrics, {len(failed)} out of band)"
    ]
    for entry in failed:
        lines.append(
            f"  {entry.get('name')}: {entry.get('value')} outside "
            f"[{entry.get('low')}, {entry.get('high')}]"
        )
    return "\n".join(lines)


def _contracts_section(manifest: Optional[dict]) -> Optional[str]:
    contracts = (manifest or {}).get("contracts")
    if not contracts:
        return None
    lines = []
    validation = contracts.get("validation")
    if validation:
        lines.append(
            "contracts: "
            f"{sum((validation.get('checked') or {}).values())} checked, "
            f"{validation.get('repaired', 0)} repaired, "
            f"{validation.get('degraded', 0)} degraded, "
            f"{validation.get('quarantined', 0)} quarantined "
            f"(coverage {validation.get('coverage', 1.0):.4f})"
        )
    quarantine = contracts.get("quarantine")
    if quarantine and quarantine.get("by_rule"):
        for rule, count in sorted(quarantine["by_rule"].items()):
            lines.append(f"  quarantined {rule}: {count}")
    return "\n".join(lines) if lines else None


def _archive_section(manifest: Optional[dict]) -> Optional[str]:
    archive = (manifest or {}).get("archive")
    if not archive:
        return None
    lines = [
        "crawl archive: "
        f"{archive.get('exchanges_total', 0)} exchanges "
        f"({archive.get('outcomes_total', 0)} outcomes), "
        f"{archive.get('blobs_total', 0)} unique bodies, "
        f"{archive.get('bytes_total', 0):,} bytes, "
        f"dedup ratio {archive.get('dedup_ratio', 0.0):.3f}"
    ]
    if archive.get("dir"):
        lines.append(f"  dir: {archive['dir']}")
    if archive.get("chain_sha256"):
        lines.append(f"  chain: {archive['chain_sha256']}")
    return "\n".join(lines)


def _stage_failures_section(manifest: Optional[dict]) -> Optional[str]:
    failures = (manifest or {}).get("stage_failures") or []
    if not failures:
        return None
    rows = [
        [
            failure.get("stage", ""),
            failure.get("kind", ""),
            str(failure.get("attempts", 1)),
            failure.get("disposition", ""),
            failure.get("detail", ""),
        ]
        for failure in failures
    ]
    return (
        f"stage failures ({len(failures)} degraded):\n"
        + _format_table(
            ["stage", "kind", "attempts", "disposition", "detail"], rows
        )
    )


def _http_table(run: RunDir) -> Dict[str, dict]:
    """Per-host request counts, latency quantiles, and wait totals as
    plain data (the machine-readable twin of :func:`_http_section`)."""
    latency = run.histogram_series("http_request_sim_seconds")
    scalars = run.scalar_metrics()
    waits: Dict[str, List[float]] = {}
    for (name, labels), value in scalars.items():
        if name not in ("http_retry_wait_seconds_total",
                        "http_politeness_wait_seconds_total"):
            continue
        host = dict(labels).get("host", "")
        slot = waits.setdefault(host, [0.0, 0.0])
        slot[0 if name.startswith("http_retry") else 1] += value
    series_by_host = {
        (s.get("labels") or {}).get("host", ""): s for s in latency
    }
    table: Dict[str, dict] = {}
    for host in sorted(set(series_by_host) | set(waits)):
        series = series_by_host.get(host)
        retry, polite = waits.get(host, [0.0, 0.0])
        table[host] = {
            "requests": int(series.get("count", 0)) if series else 0,
            "p50_sim_seconds": round(
                exported_histogram_quantile(series, 0.5), 6) if series else 0.0,
            "p95_sim_seconds": round(
                exported_histogram_quantile(series, 0.95), 6) if series else 0.0,
            "retry_wait_seconds": round(retry, 6),
            "politeness_wait_seconds": round(polite, 6),
        }
    return table


def _crawl_totals(manifest: Optional[dict]) -> dict:
    """Summed per-marketplace crawl counters plus grand totals."""
    reports = ((manifest or {}).get("crawl") or {}).get("reports") or []
    by_marketplace: Dict[str, Dict[str, int]] = {}
    for report in reports:
        row = by_marketplace.setdefault(report.get("marketplace", ""), {
            "pages_fetched": 0, "offers_found": 0,
            "offers_parsed": 0, "sellers_fetched": 0, "errors": 0,
        })
        for key in row:
            row[key] += int(report.get(key, 0))
    pages = sum(r["pages_fetched"] for r in by_marketplace.values())
    errors = sum(r["errors"] for r in by_marketplace.values())
    return {
        "by_marketplace": dict(sorted(by_marketplace.items())),
        "pages_total": pages,
        "errors_total": errors,
        "error_rate": round(errors / pages, 6) if pages else 0.0,
    }


def trace_document(source: Union[str, RunDir]) -> dict:
    """The ``repro trace --json`` document: one stable, schema-versioned
    JSON view over a telemetry directory.

    Scripts and the cross-run :class:`~repro.obs.registry.RunRegistry`
    ingester both consume this document, so the text renderer and the
    machine path can never drift apart.  Keys are sorted at serialization
    time and every float is rounded, so two loads of the same directory
    produce byte-identical output.  Sections whose artifacts are absent
    come out as ``None`` rather than being omitted.
    """
    run = source if isinstance(source, RunDir) else RunDir.load(source)
    manifest = run.manifest or {}
    config = manifest.get("config") or {}

    scorecard = None
    if run.scorecard:
        scorecard = {
            "passed": bool(run.scorecard.get("passed")),
            "n_entries": run.scorecard.get("n_entries", 0),
            "n_failed": run.scorecard.get("n_failed", 0),
            "entries": [
                {
                    "name": entry.get("name"),
                    "kind": entry.get("kind"),
                    "value": entry.get("value"),
                    "low": entry.get("low"),
                    "high": entry.get("high"),
                    "passed": entry.get("passed"),
                }
                for entry in run.scorecard.get("entries", [])
            ],
        }

    watchdog = run.watchdog_summary()
    watchdog_doc = None
    if watchdog is not None:
        counts = watchdog.get("counts") or {}
        watchdog_doc = {
            "counts": dict(sorted(counts.items())),
            "findings_total": len(watchdog.get("findings") or []),
        }

    profile_doc = None
    if run.profile:
        totals = run.profile.get("totals") or {}
        memory = totals.get("memory") or {}
        profile_doc = {
            "phases": [
                {
                    "name": phase.get("name"),
                    "kind": phase.get("kind"),
                    "wall_seconds": phase.get("wall_seconds"),
                    "sim_seconds": phase.get("sim_seconds"),
                }
                for phase in run.profile.get("phases") or []
            ],
            "totals": {
                "sim_seconds": totals.get("sim_seconds"),
                "wall_seconds": totals.get("wall_seconds"),
                "tracemalloc_peak_bytes": memory.get("tracemalloc_peak_bytes"),
                "rss_max_kb": memory.get("rss_max_kb"),
            },
        }

    return {
        "schema": TRACE_DOC_SCHEMA,
        "path": run.path,
        "run": {
            "git": manifest.get("git"),
            "python": manifest.get("python"),
            "seed": manifest.get("seed", config.get("seed")),
            "config": dict(sorted(config.items())),
            "config_hash": manifest.get("config_hash")
            or config_hash(config),
            "simulated_seconds": manifest.get("simulated_seconds"),
            "dataset": manifest.get("dataset") or {},
        },
        "stages": [
            {
                "name": stage.get("name"),
                "sim_seconds": stage.get("sim_seconds", 0.0),
                "wall_seconds": stage.get("wall_seconds", 0.0),
                "spans": stage.get("spans", 0),
            }
            for stage in run.stages
        ],
        "scorecard": scorecard,
        "watchdog": watchdog_doc,
        "contracts": manifest.get("contracts"),
        "stage_failures": manifest.get("stage_failures") or [],
        "archive": manifest.get("archive"),
        "profile": profile_doc,
        "crawl": _crawl_totals(manifest),
        "events": run.event_kind_counts(),
        "http": _http_table(run),
    }


def render_trace_summary(source: Union[str, RunDir]) -> str:
    """The full ``repro trace`` report for one telemetry directory.

    Accepts a path (raises :class:`~repro.obs.rundir.TelemetryDirError`
    on unusable directories) or an already-loaded :class:`RunDir`.
    """
    run = source if isinstance(source, RunDir) else RunDir.load(source)
    sections: List[str] = []
    manifest = run.manifest

    if manifest:
        header = [f"run manifest: schema={manifest.get('schema')}"]
        if manifest.get("git"):
            header.append(f"git={manifest['git']}")
        config = manifest.get("config") or {}
        if config:
            header.append(
                "config: " + ", ".join(
                    f"{key}={config[key]}" for key in sorted(config)
                )
            )
        header.append(
            f"simulated_seconds={manifest.get('simulated_seconds', 0.0):,.1f}"
        )
        sections.append("\n".join(header))

    if run.stages:
        sections.append("per-stage summary:\n" + _stage_rows(run.stages))
    else:
        sections.append(f"no trace data found in {run.path}")

    for section in (
        _scorecard_section(run),
        _stage_failures_section(manifest),
        _contracts_section(manifest),
        _archive_section(manifest),
        *_profile_sections(run),
        _watchdog_section(run),
        _http_section(run),
    ):
        if section:
            sections.append(section)

    counts = run.event_kind_counts()
    if counts:
        rows = [[kind, str(count)] for kind, count in sorted(counts.items())]
        sections.append("events by kind:\n" + _format_table(["kind", "count"], rows))
    else:
        sections.append("events by kind: none recorded")

    if manifest and manifest.get("crawl", {}).get("reports"):
        totals: Dict[str, List[int]] = {}
        for report in manifest["crawl"]["reports"]:
            row = totals.setdefault(report["marketplace"], [0, 0, 0])
            row[0] += report["pages_fetched"]
            row[1] += report["offers_parsed"]
            row[2] += report["errors"]
        rows = [
            [name, str(pages), str(offers), str(errors)]
            for name, (pages, offers, errors) in totals.items()
        ]
        sections.append(
            "crawl totals (summed over iterations):\n"
            + _format_table(["marketplace", "pages", "offers", "errors"], rows)
        )

    return "\n\n".join(sections)


__all__ = ["render_trace_summary", "trace_document"]
