"""Per-metric trend series across registered runs.

Reads a :class:`~repro.obs.registry.RunRegistry` and turns each stored
metric into a :class:`TrendSeries`: the ordered points plus the robust
baseline statistics (median and MAD — median absolute deviation) that
the deterministic anomaly rules in :mod:`repro.obs.alerts` threshold
against.  Median/MAD rather than mean/stddev because run histories are
short and a single bad run must not drag its own baseline toward
itself.

Everything here is pure arithmetic over registry contents: same
registry, same trends, byte for byte.  N same-seed runs of the same
code produce zero-variance fidelity and sim-time series (MAD = 0); only
wall-clock metrics (``stage_wall_seconds.*``, ``profile.*``) vary with
the machine, which is why alerting treats them as opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.schemas import TRENDS_SCHEMA

#: Metric-name prefixes whose values depend on the machine, not the
#: seed; rendered for context but excluded from default alerting.
MACHINE_METRIC_PREFIXES = ("stage_wall_seconds.", "profile.")

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def median(values: Sequence[float]) -> float:
    """The median of a non-empty sequence (0.0 when empty)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: median)."""
    if not values:
        return 0.0
    mid = median(values) if center is None else center
    return median([abs(value - mid) for value in values])


def sparkline(values: Sequence[float]) -> str:
    """A unicode block-character sparkline of a value sequence."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high - low <= 0:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    return "".join(
        _SPARK_LEVELS[
            min(int((value - low) / span * len(_SPARK_LEVELS)),
                len(_SPARK_LEVELS) - 1)
        ]
        for value in values
    )


@dataclass
class TrendPoint:
    """One metric observation: the run it came from, in ingest order."""

    seq: int
    run_id: str
    value: float

    def to_dict(self) -> dict:
        return {"seq": self.seq, "run_id": self.run_id, "value": self.value}


@dataclass
class TrendSeries:
    """One metric across runs plus its rolling baseline statistics."""

    name: str
    points: List[TrendPoint] = field(default_factory=list)

    @property
    def values(self) -> List[float]:
        return [point.value for point in self.points]

    @property
    def n(self) -> int:
        return len(self.points)

    @property
    def latest(self) -> float:
        return self.points[-1].value if self.points else 0.0

    @property
    def machine_dependent(self) -> bool:
        return self.name.startswith(MACHINE_METRIC_PREFIXES)

    def baseline_values(self) -> List[float]:
        """Every value but the latest — the history the newest run is
        judged against.  A single-run series has no baseline."""
        return self.values[:-1]

    def baseline_median(self) -> float:
        return median(self.baseline_values())

    def baseline_mad(self) -> float:
        return mad(self.baseline_values())

    @property
    def zero_variance(self) -> bool:
        values = self.values
        return len(set(values)) <= 1 if values else True

    @property
    def delta(self) -> float:
        """Latest value minus the baseline median (0 with no history)."""
        if len(self.points) < 2:
            return 0.0
        return self.latest - self.baseline_median()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n": self.n,
            "latest": self.latest,
            "median": median(self.values),
            "mad": mad(self.values),
            "min": min(self.values) if self.points else 0.0,
            "max": max(self.values) if self.points else 0.0,
            "delta": round(self.delta, 9),
            "zero_variance": self.zero_variance,
            "machine_dependent": self.machine_dependent,
            "points": [point.to_dict() for point in self.points],
        }


def compute_trends(registry, names: Optional[Sequence[str]] = None,
                   last_n: Optional[int] = None) -> List[TrendSeries]:
    """Every requested metric (default: all) as a trend series over the
    last ``last_n`` runs (default: all), sorted by name."""
    wanted = list(names) if names else registry.metric_names()
    series_list: List[TrendSeries] = []
    for name in sorted(set(wanted)):
        rows = registry.series(name, last_n=last_n)
        if not rows:
            continue
        series_list.append(TrendSeries(
            name=name,
            points=[TrendPoint(seq, run_id, value)
                    for (seq, run_id, value) in rows],
        ))
    return series_list


def trends_document(series_list: Sequence[TrendSeries],
                    runs: Optional[Sequence] = None) -> dict:
    """The machine-readable ``repro runs trends --json`` document."""
    return {
        "schema": TRENDS_SCHEMA,
        "n_series": len(series_list),
        "runs": [run.to_dict() for run in runs] if runs is not None else None,
        "series": [series.to_dict() for series in series_list],
    }


def render_trends_text(series_list: Sequence[TrendSeries]) -> str:
    """The ``repro runs trends`` table: one row per metric with its
    history sparkline and baseline statistics."""
    if not series_list:
        return "no metrics registered yet"
    headers = ["metric", "n", "min", "median", "mad", "latest",
               "delta", "trend"]
    rows: List[List[str]] = []
    for series in series_list:
        values = series.values
        rows.append([
            series.name + (" *" if series.machine_dependent else ""),
            str(series.n),
            _fmt(min(values)),
            _fmt(median(values)),
            _fmt(mad(values)),
            _fmt(series.latest),
            _fmt(series.delta, signed=True),
            sparkline(values),
        ])
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i])
                  for i in range(len(headers))).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(
            row[i].ljust(widths[i]) for i in range(len(headers))
        ).rstrip())
    if any(series.machine_dependent for series in series_list):
        lines.append("")
        lines.append("* machine-dependent (wall clock / memory); "
                     "excluded from default alerting")
    return "\n".join(lines)


def _fmt(value: float, signed: bool = False) -> str:
    if value == int(value) and abs(value) < 1e15:
        text = f"{int(value):+d}" if signed else f"{int(value):d}"
    else:
        text = f"{value:+.4f}" if signed else f"{value:.4f}"
    return text


__all__ = [
    "MACHINE_METRIC_PREFIXES",
    "TrendPoint",
    "TrendSeries",
    "compute_trends",
    "mad",
    "median",
    "render_trends_text",
    "sparkline",
    "trends_document",
]
