"""Content-hash response cache for the catalog API.

Every cache key is ``(endpoint, canonical params, catalog content
digest)``.  The digest is the catalog's :mod:`content digest
<repro.serve.catalog>` — it changes exactly when the underlying data
does, so **invalidation is free**: a rebuilt catalog simply stops
producing hits for the old digest, and the stale entries age out of the
LRU without any explicit flush protocol.

Hits and misses are counted in ``catalog_cache_hits_total`` /
``catalog_cache_misses_total`` (labelled by endpoint), the numbers the
serve bench turns into its hit-rate figure.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

#: Default entry budget.  Sized well above the bench's distinct-query
#: pool so a repeated-query workload is eviction-free.
DEFAULT_MAX_ENTRIES = 4096

CacheKey = Tuple[str, Tuple[Tuple[str, str], ...], str]


def cache_key(endpoint: str, params: Dict[str, str],
              digest: str) -> CacheKey:
    """The canonical key: endpoint name, sorted params, content digest."""
    return (endpoint,
            tuple(sorted((str(k), str(v)) for k, v in params.items())),
            digest)


class ResponseCache:
    """A bounded LRU of rendered (status, body) response pairs."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 telemetry: Optional[Telemetry] = None) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, Tuple[int, str]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        telemetry = telemetry or NULL_TELEMETRY
        self._m_hits = telemetry.metrics.counter(
            "catalog_cache_hits_total",
            "catalog API responses served from the content-hash cache",
            labels=("endpoint",),
        )
        self._m_misses = telemetry.metrics.counter(
            "catalog_cache_misses_total",
            "catalog API responses computed on a cache miss",
            labels=("endpoint",),
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Tuple[int, str]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._m_misses.inc(endpoint=key[0])
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._m_hits.inc(endpoint=key[0])
        return entry

    def put(self, key: CacheKey, status: int, body: str) -> None:
        self._entries[key] = (status, body)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }


__all__ = ["DEFAULT_MAX_ENTRIES", "ResponseCache", "cache_key"]
