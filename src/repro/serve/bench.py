"""Load-generator bench for the serving layer (``repro serve bench``).

Drives thousands of seeded simulated clients through the catalog API —
the same :class:`~repro.web.server.Internet` dispatch path the crawler
uses — and reports wall-clock p50/p95 request latency (via the existing
:meth:`Histogram.quantile <repro.obs.metrics.Histogram.quantile>`),
per-endpoint breakdowns, status counts, throughput, and the response
cache's hit rate.

The workload is a **repeated-query** mix, as real read traffic is: a
seeded pool of ``distinct_queries`` unique requests (searches with
filters drawn from the catalog's actual marketplaces/categories,
listing and seller lookups, price-history, scorecard, diff) is sampled
uniformly by every client.  With the default pool of 200 queries and
5,000 total requests the only misses are each query's first render, so
the content-hash cache sits above a 0.9 hit rate — the number the
acceptance gate checks.

The result document is schema-versioned (``repro.bench-serve/v1``) and
written as ``BENCH_serve.json``.  Latency and throughput are
machine-dependent; the request/status/cache-count fields are
deterministic for a fixed catalog digest and seed.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.bench import env_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.obs.schemas import BENCH_SERVE_SCHEMA
from repro.obs.telemetry import Telemetry
from repro.serve.api import CATALOG_HOST, build_catalog_site
from repro.serve.cache import ResponseCache
from repro.serve.catalog import Catalog
from repro.util.fileio import atomic_write_json
from repro.util.simtime import SimClock
from repro.web.http import Request
from repro.web.server import Internet

BENCH_SERVE_FILENAME = "BENCH_serve.json"

#: Latency buckets in seconds, sized for in-process serving (tens of
#: microseconds for a cache hit up to milliseconds for a cold query).
_LATENCY_BUCKETS = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Workload mix: (endpoint kind, weight).  Searches dominate, exactly
#: as listing browse/search traffic dominates a marketplace.
_MIX = (
    ("listings", 45),
    ("listing", 15),
    ("seller", 12),
    ("sellers", 8),
    ("price_history", 10),
    ("scorecard", 5),
    ("diff", 3),
    ("catalog", 2),
)


def _distinct(catalog: Catalog, column: str, table: str) -> List[str]:
    return [
        row[0]
        for row in catalog.conn.execute(
            f"SELECT DISTINCT {column} FROM {table}"
            f" WHERE {column} IS NOT NULL ORDER BY {column}"
        )
    ]


def _ids(catalog: Catalog, table: str, limit: int = 500) -> List[int]:
    return [
        row[0]
        for row in catalog.conn.execute(
            f"SELECT id FROM {table} ORDER BY id LIMIT ?", (limit,)
        )
    ]


def build_query_pool(catalog: Catalog, rng: random.Random,
                     size: int) -> List[Tuple[str, str]]:
    """A deterministic pool of ``size`` distinct (endpoint, url) pairs."""
    marketplaces = _distinct(catalog, "marketplace", "listings")
    categories = _distinct(catalog, "category", "listings")
    platforms = _distinct(catalog, "platform", "listings")
    listing_ids = _ids(catalog, "listings")
    seller_ids = _ids(catalog, "sellers")
    cycles = catalog.cycles()
    base = f"http://{CATALOG_HOST}"
    kinds = [kind for kind, _ in _MIX]
    weights = [weight for _, weight in _MIX]

    def one_query() -> Tuple[str, str]:
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind == "listings":
            params = [f"limit={rng.choice((10, 20, 50))}",
                      f"offset={rng.choice((0, 0, 20, 40))}"]
            if marketplaces and rng.random() < 0.7:
                params.append(f"marketplace={rng.choice(marketplaces)}")
            if categories and rng.random() < 0.5:
                params.append(f"category={rng.choice(categories)}")
            if platforms and rng.random() < 0.3:
                params.append(f"platform={rng.choice(platforms)}")
            if rng.random() < 0.3:
                params.append(f"price_min={rng.choice((10, 50, 100))}")
                params.append(f"price_max={rng.choice((500, 1000, 5000))}")
            if rng.random() < 0.4:
                params.append(f"sort={rng.choice(('price', '-price'))}")
            return kind, f"{base}/api/listings?{'&'.join(params)}"
        if kind == "listing" and listing_ids:
            return kind, f"{base}/api/listings/{rng.choice(listing_ids)}"
        if kind == "seller" and seller_ids:
            return kind, f"{base}/api/sellers/{rng.choice(seller_ids)}"
        if kind == "sellers":
            suffix = f"?min_listings={rng.choice((1, 2, 3))}"
            if marketplaces and rng.random() < 0.5:
                suffix += f"&marketplace={rng.choice(marketplaces)}"
            return kind, f"{base}/api/sellers{suffix}"
        if kind == "price_history":
            suffix = ""
            if marketplaces and rng.random() < 0.7:
                suffix = f"?marketplace={rng.choice(marketplaces)}"
                if categories and rng.random() < 0.5:
                    suffix += f"&category={rng.choice(categories)}"
            return kind, f"{base}/api/price-history{suffix}"
        if kind == "scorecard":
            if cycles and rng.random() < 0.5:
                return kind, f"{base}/api/scorecard?cycle={rng.choice(cycles)}"
            return kind, f"{base}/api/scorecard"
        if kind == "diff" and len(cycles) >= 1:
            left = rng.choice(cycles)
            right = rng.choice(cycles)
            return kind, f"{base}/api/diff?from={left}&to={right}"
        return "catalog", f"{base}/api/catalog"

    pool: List[Tuple[str, str]] = []
    seen = set()
    attempts = 0
    while len(pool) < size and attempts < size * 50:
        attempts += 1
        endpoint, url = one_query()
        if url in seen:
            continue
        seen.add(url)
        pool.append((endpoint, url))
    return pool


def run_serve_bench(catalog_dir: str,
                    clients: int = 1000,
                    requests_per_client: int = 5,
                    distinct_queries: int = 200,
                    seed: int = 7,
                    cache_entries: int = 4096,
                    telemetry: Optional[Telemetry] = None,
                    progress: Optional[Callable[[str], None]] = None
                    ) -> dict:
    """Run the load generator and return the bench document."""
    if clients <= 0 or requests_per_client <= 0:
        raise ValueError("clients and requests_per_client must be positive")
    catalog = Catalog.open(catalog_dir)
    try:
        clock = SimClock()
        internet = Internet(clock=clock, telemetry=telemetry)
        cache = ResponseCache(max_entries=cache_entries, telemetry=telemetry)
        site, api = build_catalog_site(
            catalog, cache=cache, clock=clock, telemetry=telemetry,
        )
        internet.register(site)

        rng = random.Random(seed)
        pool = build_query_pool(catalog, rng, distinct_queries)
        if not pool:
            raise ValueError("catalog produced an empty query pool")

        metrics = MetricsRegistry()
        latency = metrics.histogram(
            "serve_request_seconds", "wall latency per catalog API request",
            labels=("endpoint",), buckets=_LATENCY_BUCKETS,
        )
        overall = metrics.histogram(
            "serve_request_seconds_all", "wall latency, all endpoints",
            buckets=_LATENCY_BUCKETS,
        )
        statuses: Dict[str, int] = {}
        requests_total = clients * requests_per_client
        if progress is not None:
            progress(
                f"serve bench: {clients} clients x {requests_per_client} "
                f"requests over {len(pool)} distinct queries"
            )
        started = time.perf_counter()
        for index in range(requests_total):
            endpoint, url = pool[rng.randrange(len(pool))]
            client_id = f"client-{index % clients:05d}"
            request = Request(method="GET", url=url)
            t0 = time.perf_counter()
            response = internet.fetch(request, client_id=client_id)
            elapsed = time.perf_counter() - t0
            latency.observe(elapsed, endpoint=endpoint)
            overall.observe(elapsed)
            statuses[str(response.status)] = \
                statuses.get(str(response.status), 0) + 1
        wall_seconds = time.perf_counter() - started

        per_endpoint = {
            endpoint: {
                "count": latency.count(endpoint=endpoint),
                "p50_ms": round(
                    latency.quantile(0.5, endpoint=endpoint) * 1000.0, 4),
                "p95_ms": round(
                    latency.quantile(0.95, endpoint=endpoint) * 1000.0, 4),
            }
            for endpoint in sorted({kind for kind, _ in pool})
            if latency.count(endpoint=endpoint)
        }
        document = {
            "schema": BENCH_SERVE_SCHEMA,
            "catalog_digest": catalog.digest,
            "seed": seed,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "requests_total": requests_total,
            "distinct_queries": len(pool),
            "statuses": dict(sorted(statuses.items())),
            "latency": {
                "p50_ms": round(overall.quantile(0.5) * 1000.0, 4),
                "p95_ms": round(overall.quantile(0.95) * 1000.0, 4),
                "mean_ms": round(
                    overall.sum() / overall.count() * 1000.0, 4),
            },
            "per_endpoint": per_endpoint,
            "cache": cache.stats(),
            "wall_seconds": round(wall_seconds, 4),
            "requests_per_second": round(
                requests_total / wall_seconds, 1) if wall_seconds else 0.0,
            "server_requests": site.request_count,
            "env": env_fingerprint(),
        }
        return document
    finally:
        catalog.close()


def write_serve_bench(path: str, document: dict) -> str:
    """Write the bench document (``path`` may be a directory)."""
    import os

    if os.path.isdir(path):
        path = os.path.join(path, BENCH_SERVE_FILENAME)
    atomic_write_json(path, document)
    return path


def render_serve_bench(document: dict) -> str:
    """The human one-screen summary the CLI prints."""
    latency = document["latency"]
    cache = document["cache"]
    lines = [
        f"serve bench: {document['requests_total']} requests from "
        f"{document['clients']} clients "
        f"({document['distinct_queries']} distinct queries)",
        f"  latency   p50 {latency['p50_ms']:.3f} ms, "
        f"p95 {latency['p95_ms']:.3f} ms, mean {latency['mean_ms']:.3f} ms",
        f"  cache     hit rate {cache['hit_rate']:.3f} "
        f"({cache['hits']} hits / {cache['misses']} misses)",
        f"  wall      {document['wall_seconds']:.2f} s, "
        f"{document['requests_per_second']:,.0f} req/s",
        "  statuses  " + ", ".join(
            f"{status}={count}"
            for status, count in document["statuses"].items()
        ),
    ]
    for endpoint, stats in document["per_endpoint"].items():
        lines.append(
            f"    {endpoint:<14} {stats['count']:>6}  "
            f"p50 {stats['p50_ms']:.3f} ms  p95 {stats['p95_ms']:.3f} ms"
        )
    return "\n".join(lines)


__all__ = [
    "BENCH_SERVE_FILENAME",
    "BENCH_SERVE_SCHEMA",
    "build_query_pool",
    "render_serve_bench",
    "run_serve_bench",
    "write_serve_bench",
]
