"""The read-optimized serving catalog.

:func:`build_catalog` ingests one or more **run directories** — each a
flat JSONL dataset (``repro run --out``) or a segmented store
(``run --store-dir``), plus ``study_meta.json`` / ``scorecard.json``
when present — into a single SQLite database shaped for reads:

* ``listings`` with secondary indexes by marketplace+category, price,
  and seller, so the search endpoint never scans;
* ``sellers`` — one aggregated row per seller (listing counts, price
  stats, platforms sold) joined against the seller-page records;
* ``price_history`` — per ``(cycle, marketplace, category)`` price
  aggregates, the timestamped series *BuyTheBy* treats as the core
  artifact (each ingested run dir is one cycle, in argument order —
  e.g. successive monitor re-crawls);
* ``scorecards`` — every fidelity-scorecard entry per cycle, powering
  the scorecard and run-diff endpoints.

The build is **deterministic and rebuild-idempotent**.  A
``catalog.json`` manifest (``repro.catalog/v1``) records a
``content_digest``: the SHA-256 folded over every *deterministic*
source artifact (dataset files, ``study_meta.json``,
``scorecard.json`` — never ``manifest.json``, whose wall-clock stage
timings differ between same-seed twins).  Same-seed twin runs therefore
produce byte-identical digests, and rebuilding over an unchanged run
dir compares digests and returns without touching a file.  The digest
is also the serving layer's cache-invalidation token: it changes
exactly when the data does (see :mod:`repro.serve.cache`).

All rows are inserted in sorted key order with no timestamps, so the
catalog itself is as deterministic as SQLite's file format allows; the
manifest additionally records ``db_sha256`` so :meth:`Catalog.open`
can refuse a corrupted or hand-edited database (``repro serve query``
exits 2 on that).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs.schemas import CATALOG_SCHEMA, artifact_schema, canonical_json
from repro.store import is_store_dir
from repro.store.segments import StoreReader
from repro.util.fileio import atomic_write_json
from repro.util.money import is_valid_price
from repro.util.stats import median

CATALOG_FILENAME = "catalog.json"
CATALOG_DB_FILENAME = "catalog.db"

#: Record-type JSONL files of the flat run-dir layout, in digest order.
_FLAT_FILES = ("listings.jsonl", "posts.jsonl", "profiles.jsonl",
               "sellers.jsonl", "underground.jsonl")
#: Deterministic side artifacts folded into the digest when present.
#: ``manifest.json`` is deliberately absent: it records wall-clock
#: timings, which would split same-seed twins into different digests.
_SIDE_FILES = ("study_meta.json", "scorecard.json")

_SCHEMA_SQL = """
CREATE TABLE catalog_info (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE runs (
    cycle INTEGER PRIMARY KEY,
    label TEXT NOT NULL,
    layout TEXT NOT NULL,
    seed INTEGER,
    scale REAL,
    iterations INTEGER,
    partial TEXT,
    n_listings INTEGER NOT NULL,
    n_sellers INTEGER NOT NULL,
    n_profiles INTEGER NOT NULL,
    scorecard_passed INTEGER
);
CREATE TABLE listings (
    id INTEGER PRIMARY KEY,
    cycle INTEGER NOT NULL REFERENCES runs (cycle),
    offer_url TEXT NOT NULL,
    marketplace TEXT NOT NULL,
    platform TEXT,
    category TEXT,
    price_usd REAL,
    title TEXT,
    seller_id INTEGER,
    seller_url TEXT,
    seller_name TEXT,
    followers_claimed INTEGER,
    verified_claim INTEGER NOT NULL DEFAULT 0,
    first_seen_iteration INTEGER NOT NULL DEFAULT 0,
    last_seen_iteration INTEGER NOT NULL DEFAULT 0,
    provenance TEXT
);
CREATE INDEX listings_by_market ON listings (marketplace, category);
CREATE INDEX listings_by_category ON listings (category);
CREATE INDEX listings_by_price ON listings (price_usd);
CREATE INDEX listings_by_seller ON listings (seller_id);
CREATE TABLE sellers (
    id INTEGER PRIMARY KEY,
    seller_url TEXT NOT NULL UNIQUE,
    marketplace TEXT NOT NULL,
    name TEXT,
    country TEXT,
    rating REAL,
    joined TEXT,
    n_listings INTEGER NOT NULL,
    n_priced INTEGER NOT NULL,
    median_price_usd REAL,
    min_price_usd REAL,
    max_price_usd REAL,
    platforms TEXT NOT NULL DEFAULT ''
);
CREATE INDEX sellers_by_market ON sellers (marketplace);
CREATE TABLE price_history (
    cycle INTEGER NOT NULL REFERENCES runs (cycle),
    marketplace TEXT NOT NULL,
    category TEXT NOT NULL,
    n INTEGER NOT NULL,
    median_price_usd REAL NOT NULL,
    mean_price_usd REAL NOT NULL,
    min_price_usd REAL NOT NULL,
    max_price_usd REAL NOT NULL,
    PRIMARY KEY (cycle, marketplace, category)
);
CREATE TABLE scorecards (
    cycle INTEGER NOT NULL REFERENCES runs (cycle),
    name TEXT NOT NULL,
    kind TEXT,
    value REAL,
    lo REAL,
    hi REAL,
    passed INTEGER,
    detail TEXT,
    PRIMARY KEY (cycle, name)
);
"""


class CatalogError(RuntimeError):
    """The catalog directory is missing, corrupt, or not a catalog.
    The message is a single printable line."""


@dataclass
class BuildResult:
    """What one :func:`build_catalog` call did."""

    directory: str
    content_digest: str
    rebuilt: bool
    tables: Dict[str, int] = field(default_factory=dict)


# -- source digest ----------------------------------------------------------


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _run_source_files(run_dir: str) -> List[str]:
    """Relative paths of the digestable artifacts inside one run dir."""
    names: List[str] = []
    if is_store_dir(run_dir):
        if os.path.exists(os.path.join(run_dir, "store.json")):
            names.append("store.json")
        segments = os.path.join(run_dir, "segments")
        if os.path.isdir(segments):
            names.extend(
                os.path.join("segments", entry)
                for entry in sorted(os.listdir(segments))
                if entry.endswith(".seg")
            )
    else:
        names.extend(n for n in _FLAT_FILES
                     if os.path.exists(os.path.join(run_dir, n)))
    names.extend(n for n in _SIDE_FILES
                 if os.path.exists(os.path.join(run_dir, n)))
    return names


def source_digest(run_dirs: Iterable[str]) -> str:
    """The content digest over every deterministic source artifact.

    Folds ``cycle index, relative name, file sha256`` triples — never
    absolute paths, so twin runs in different directories digest
    identically.
    """
    digest = hashlib.sha256(b"repro.catalog/v1\n")
    for cycle, run_dir in enumerate(run_dirs):
        for name in _run_source_files(run_dir):
            file_hash = _file_sha256(os.path.join(run_dir, name))
            digest.update(f"{cycle}\0{name}\0{file_hash}\n".encode("utf-8"))
    return digest.hexdigest()


# -- reading one run dir ----------------------------------------------------


def _iter_run_records(run_dir: str,
                      record_type: str) -> Iterator[dict]:
    """Record payload dicts of one type, from either run-dir layout.
    Corrupt lines are skipped — the catalog indexes what is readable."""
    if is_store_dir(run_dir):
        reader = StoreReader.open(run_dir)
        yield from reader.iter_records(record_type)
        return
    path = os.path.join(run_dir, f"{record_type}.jsonl")
    if not os.path.exists(path):
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict):
                yield payload


def _load_json(run_dir: str, name: str) -> Optional[dict]:
    path = os.path.join(run_dir, name)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return document if isinstance(document, dict) else None


# -- building ---------------------------------------------------------------


def _insert_run_rows(conn: sqlite3.Connection, cycle: int,
                     run_dir: str,
                     seller_ids: Dict[str, int]) -> Dict[str, int]:
    """Ingest one run dir as one cycle; returns per-table row counts."""
    listings = sorted(
        _iter_run_records(run_dir, "listings"),
        key=lambda p: (str(p.get("marketplace") or ""),
                       str(p.get("offer_url") or "")),
    )
    sellers = list(_iter_run_records(run_dir, "sellers"))
    n_profiles = sum(1 for _ in _iter_run_records(run_dir, "profiles"))

    for payload in listings:
        price = payload.get("price_usd")
        if price is not None and not is_valid_price(price):
            price = None
        seller_url = payload.get("seller_url")
        conn.execute(
            "INSERT INTO listings (cycle, offer_url, marketplace, platform,"
            " category, price_usd, title, seller_id, seller_url, seller_name,"
            " followers_claimed, verified_claim, first_seen_iteration,"
            " last_seen_iteration, provenance)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                cycle,
                str(payload.get("offer_url") or ""),
                str(payload.get("marketplace") or ""),
                payload.get("platform"),
                payload.get("category"),
                price,
                payload.get("title"),
                seller_ids.get(seller_url) if seller_url else None,
                seller_url,
                payload.get("seller_name"),
                payload.get("followers_claimed"),
                1 if payload.get("verified_claim") else 0,
                int(payload.get("first_seen_iteration") or 0),
                int(payload.get("last_seen_iteration") or 0),
                payload.get("provenance"),
            ),
        )

    # Price history: one row per (marketplace, category) with a price.
    series: Dict[Tuple[str, str], List[float]] = {}
    for payload in listings:
        price = payload.get("price_usd")
        if price is None or not is_valid_price(price):
            continue
        key = (str(payload.get("marketplace") or ""),
               str(payload.get("category") or "uncategorized"))
        series.setdefault(key, []).append(float(price))
    for (marketplace, category), prices in sorted(series.items()):
        conn.execute(
            "INSERT INTO price_history (cycle, marketplace, category, n,"
            " median_price_usd, mean_price_usd, min_price_usd,"
            " max_price_usd) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (cycle, marketplace, category, len(prices),
             round(median(prices), 6),
             round(sum(prices) / len(prices), 6),
             min(prices), max(prices)),
        )

    scorecard = _load_json(run_dir, "scorecard.json")
    scorecard_passed: Optional[int] = None
    n_scorecard = 0
    if scorecard is not None:
        scorecard_passed = 1 if scorecard.get("passed") else 0
        for entry in scorecard.get("entries", []):
            if not isinstance(entry, dict) or not entry.get("name"):
                continue
            conn.execute(
                "INSERT OR REPLACE INTO scorecards (cycle, name, kind,"
                " value, lo, hi, passed, detail)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (cycle, entry.get("name"), entry.get("kind"),
                 entry.get("value"), entry.get("low"), entry.get("high"),
                 1 if entry.get("passed") else 0, entry.get("detail")),
            )
            n_scorecard += 1

    meta = _load_json(run_dir, "study_meta.json") or {}
    conn.execute(
        "INSERT INTO runs (cycle, label, layout, seed, scale, iterations,"
        " partial, n_listings, n_sellers, n_profiles, scorecard_passed)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        # The label is content-derived (cycle index), never path-derived:
        # twin runs ingested from differently-named directories must
        # produce byte-identical catalog databases.
        (cycle, f"cycle-{cycle:03d}",
         "store" if is_store_dir(run_dir) else "flat",
         meta.get("seed"), meta.get("scale"), meta.get("iterations"),
         meta.get("partial"), len(listings), len(sellers), n_profiles,
         scorecard_passed),
    )
    return {"listings": len(listings), "price_history": len(series),
            "scorecards": n_scorecard}


def _insert_sellers(conn: sqlite3.Connection,
                    run_dirs: List[str]) -> Dict[str, int]:
    """Aggregate sellers across every cycle; returns seller_url -> id.

    Ids are 1-based positions in sorted ``seller_url`` order — fully
    deterministic and stable across rebuilds of the same sources.
    """
    seller_pages: Dict[str, dict] = {}
    stats: Dict[str, dict] = {}
    for run_dir in run_dirs:
        for payload in _iter_run_records(run_dir, "sellers"):
            url = payload.get("seller_url")
            if url:
                seller_pages.setdefault(str(url), payload)
        for payload in _iter_run_records(run_dir, "listings"):
            url = payload.get("seller_url")
            if not url:
                continue
            entry = stats.setdefault(str(url), {
                "marketplace": str(payload.get("marketplace") or ""),
                "n_listings": 0, "prices": [], "platforms": set(),
            })
            entry["n_listings"] += 1
            price = payload.get("price_usd")
            if price is not None and is_valid_price(price):
                entry["prices"].append(float(price))
            if payload.get("platform"):
                entry["platforms"].add(str(payload["platform"]))

    urls = sorted(set(seller_pages) | set(stats))
    ids: Dict[str, int] = {}
    for seller_id, url in enumerate(urls, start=1):
        ids[url] = seller_id
        page = seller_pages.get(url, {})
        entry = stats.get(url, {"marketplace": "", "n_listings": 0,
                                "prices": [], "platforms": set()})
        prices = entry["prices"]
        conn.execute(
            "INSERT INTO sellers (id, seller_url, marketplace, name,"
            " country, rating, joined, n_listings, n_priced,"
            " median_price_usd, min_price_usd, max_price_usd, platforms)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (seller_id, url,
             str(page.get("marketplace") or entry["marketplace"]),
             page.get("name"), page.get("country"), page.get("rating"),
             page.get("joined"), entry["n_listings"], len(prices),
             round(median(prices), 6) if prices else None,
             min(prices) if prices else None,
             max(prices) if prices else None,
             ",".join(sorted(entry["platforms"]))),
        )
    return ids


def build_catalog(run_dirs: List[str], out_dir: str) -> BuildResult:
    """Ingest ``run_dirs`` (one cycle each, in order) into ``out_dir``.

    Idempotent: when ``out_dir`` already holds a catalog whose
    ``content_digest`` matches the sources and whose database still
    hashes to the recorded ``db_sha256``, nothing is written.
    """
    if not run_dirs:
        raise CatalogError("no run directories to ingest")
    for run_dir in run_dirs:
        if not os.path.isdir(run_dir):
            raise CatalogError(f"run directory {run_dir} does not exist")
        if not _run_source_files(run_dir):
            raise CatalogError(
                f"{run_dir} holds no dataset artifacts "
                f"(neither *.jsonl nor a segmented store)"
            )

    digest = source_digest(run_dirs)
    manifest_path = os.path.join(out_dir, CATALOG_FILENAME)
    db_path = os.path.join(out_dir, CATALOG_DB_FILENAME)
    existing = _load_json(out_dir, CATALOG_FILENAME) \
        if os.path.exists(manifest_path) else None
    if (existing is not None
            and artifact_schema(existing) == CATALOG_SCHEMA
            and existing.get("content_digest") == digest
            and os.path.exists(db_path)
            and _file_sha256(db_path) == existing.get("db_sha256")):
        return BuildResult(out_dir, digest, rebuilt=False,
                           tables=dict(existing.get("tables") or {}))

    os.makedirs(out_dir, exist_ok=True)
    tmp_path = db_path + ".tmp"
    if os.path.exists(tmp_path):
        os.remove(tmp_path)
    conn = sqlite3.connect(tmp_path)
    try:
        conn.executescript(_SCHEMA_SQL)
        seller_ids = _insert_sellers(conn, run_dirs)
        tables = {"listings": 0, "price_history": 0, "scorecards": 0}
        for cycle, run_dir in enumerate(run_dirs):
            counts = _insert_run_rows(conn, cycle, run_dir, seller_ids)
            for key, value in counts.items():
                tables[key] += value
        tables["sellers"] = len(seller_ids)
        tables["runs"] = len(run_dirs)
        conn.execute(
            "INSERT INTO catalog_info (key, value) VALUES (?, ?)",
            ("content_digest", digest),
        )
        conn.commit()
    finally:
        conn.close()
    os.replace(tmp_path, db_path)

    atomic_write_json(manifest_path, {
        "schema": CATALOG_SCHEMA,
        "content_digest": digest,
        "db_sha256": _file_sha256(db_path),
        "cycles": len(run_dirs),
        # Sources are described by cycle label and relative file names
        # only — no absolute or basename paths — so twin runs ingested
        # from anywhere yield a byte-identical manifest.
        "sources": [
            {"cycle": cycle,
             "label": f"cycle-{cycle:03d}",
             "layout": "store" if is_store_dir(run_dir) else "flat",
             "files": _run_source_files(run_dir)}
            for cycle, run_dir in enumerate(run_dirs)
        ],
        "tables": tables,
    })
    return BuildResult(out_dir, digest, rebuilt=True, tables=tables)


# -- reading ----------------------------------------------------------------


class Catalog:
    """Read-side handle: the manifest plus a read-only SQLite connection.

    :meth:`open` verifies the manifest's schema id and, unless
    ``verify=False``, re-hashes the database against the recorded
    ``db_sha256`` — a flipped byte is refused, not served.
    """

    def __init__(self, directory: str, manifest: dict,
                 conn: sqlite3.Connection) -> None:
        self.directory = directory
        self.manifest = manifest
        self.conn = conn
        self.digest: str = manifest["content_digest"]

    @classmethod
    def open(cls, directory: str, verify: bool = True) -> "Catalog":
        manifest_path = os.path.join(directory, CATALOG_FILENAME)
        db_path = os.path.join(directory, CATALOG_DB_FILENAME)
        if not os.path.isdir(directory) or not os.path.exists(manifest_path):
            raise CatalogError(
                f"{directory} is not a catalog (no {CATALOG_FILENAME}); "
                f"build one with 'repro serve build'"
            )
        manifest = _load_json(directory, CATALOG_FILENAME)
        if manifest is None:
            raise CatalogError(f"unreadable catalog manifest {manifest_path}")
        if artifact_schema(manifest) != CATALOG_SCHEMA:
            raise CatalogError(
                f"{manifest_path}: schema id {artifact_schema(manifest)!r} "
                f"does not match expected {CATALOG_SCHEMA!r}"
            )
        if not isinstance(manifest.get("content_digest"), str):
            raise CatalogError(f"{manifest_path}: missing content_digest")
        if not os.path.exists(db_path):
            raise CatalogError(f"catalog database {db_path} is missing")
        if verify and _file_sha256(db_path) != manifest.get("db_sha256"):
            raise CatalogError(
                f"catalog database {db_path} does not match the manifest "
                f"db_sha256 — rebuild with 'repro serve build'"
            )
        conn = sqlite3.connect(f"file:{db_path}?mode=ro", uri=True)
        conn.row_factory = sqlite3.Row
        return cls(directory, manifest, conn)

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- small helpers the API layer leans on ------------------------------

    def cycles(self) -> List[int]:
        return [row[0] for row in
                self.conn.execute("SELECT cycle FROM runs ORDER BY cycle")]

    def latest_cycle(self) -> int:
        row = self.conn.execute("SELECT MAX(cycle) FROM runs").fetchone()
        if row is None or row[0] is None:
            raise CatalogError("catalog holds no runs")
        return int(row[0])

    def stats(self) -> Dict[str, int]:
        return {
            table: self.conn.execute(
                f"SELECT COUNT(*) FROM {table}"  # noqa: S608 - fixed names
            ).fetchone()[0]
            for table in ("runs", "listings", "sellers", "price_history",
                          "scorecards")
        }


def catalog_digest(directory: str) -> str:
    """The catalog's content digest without opening the database."""
    manifest = _load_json(directory, CATALOG_FILENAME)
    if manifest is None or artifact_schema(manifest) != CATALOG_SCHEMA \
            or not isinstance(manifest.get("content_digest"), str):
        raise CatalogError(f"{directory} holds no valid {CATALOG_FILENAME}")
    return manifest["content_digest"]


def manifest_document(directory: str) -> dict:
    """The parsed ``catalog.json`` (canonical-JSON re-serializable)."""
    manifest = _load_json(directory, CATALOG_FILENAME)
    if manifest is None:
        raise CatalogError(f"{directory} holds no valid {CATALOG_FILENAME}")
    json.loads(canonical_json(manifest))  # must stay canonicalizable
    return manifest


__all__ = [
    "BuildResult",
    "CATALOG_DB_FILENAME",
    "CATALOG_FILENAME",
    "Catalog",
    "CatalogError",
    "build_catalog",
    "catalog_digest",
    "manifest_document",
    "source_digest",
]
