"""The serving layer: read-optimized catalog, HTTP query API, cache, bench.

``repro.serve`` turns a finished run directory (flat dataset or
segmented store, plus its scorecard) into a queryable product:

- :mod:`repro.serve.catalog` — builds the SQLite catalog and its
  deterministic ``catalog.json`` manifest (``repro.catalog/v1``).
- :mod:`repro.serve.api` — the HTTP query API, registered as a
  :class:`~repro.web.server.Site` on the in-process internet.
- :mod:`repro.serve.cache` — the content-hash response cache whose keys
  include the catalog digest, so invalidation is free.
- :mod:`repro.serve.bench` — the seeded load generator behind
  ``repro serve bench`` (``BENCH_serve.json``).
"""

from repro.serve.api import CATALOG_HOST, CatalogApi, build_catalog_site
from repro.serve.bench import (
    BENCH_SERVE_FILENAME,
    render_serve_bench,
    run_serve_bench,
    write_serve_bench,
)
from repro.serve.cache import DEFAULT_MAX_ENTRIES, ResponseCache, cache_key
from repro.serve.catalog import (
    CATALOG_DB_FILENAME,
    CATALOG_FILENAME,
    BuildResult,
    Catalog,
    CatalogError,
    build_catalog,
    catalog_digest,
    manifest_document,
    source_digest,
)

__all__ = [
    "BENCH_SERVE_FILENAME",
    "BuildResult",
    "CATALOG_DB_FILENAME",
    "CATALOG_FILENAME",
    "CATALOG_HOST",
    "Catalog",
    "CatalogApi",
    "CatalogError",
    "DEFAULT_MAX_ENTRIES",
    "ResponseCache",
    "build_catalog",
    "build_catalog_site",
    "cache_key",
    "catalog_digest",
    "manifest_document",
    "run_serve_bench",
    "render_serve_bench",
    "source_digest",
    "write_serve_bench",
]
