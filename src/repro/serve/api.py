"""The catalog's HTTP query API — a :class:`~repro.web.server.Site`.

The serving layer is deliberately built on the same in-process web
substrate the crawler crawls: the catalog registers as a virtual host
on :class:`repro.web.server.Internet`, so every existing facility —
routing (with the 405/404 distinction), token buckets, telemetry's
``server_requests_total`` — applies to the product surface too.

Endpoints (all ``GET``, all JSON, all carrying
``"schema": "repro.catalog-api/v1"`` and the catalog's content digest):

======================  ====================================================
``/api/catalog``        manifest summary: digest, tables, cycles
``/api/listings``       search with filters + pagination (marketplace,
                        category, platform, seller, price_min/max, cycle,
                        sort=url|price|-price, limit, offset)
``/api/listings/<id>``  one listing row
``/api/sellers``        seller directory (marketplace, min_listings,
                        limit, offset)
``/api/sellers/<id>``   one seller's aggregated stats + their listings
``/api/price-history``  per (marketplace, category) price series across
                        cycles
``/api/scorecard``      fidelity scorecard entries of one cycle
``/api/diff``           run diff between two cycles (?from=A&to=B)
======================  ====================================================

Every response is rendered at most once per catalog content digest:
handlers are wrapped by the :class:`~repro.serve.cache.ResponseCache`,
keyed ``(endpoint, params, digest)``.  Bodies are canonical JSON
(sorted keys), so a cached byte stream and a fresh render are
indistinguishable.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.schemas import CATALOG_API_SCHEMA
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.serve.cache import ResponseCache, cache_key
from repro.serve.catalog import Catalog, CatalogError
from repro.util.simtime import SimClock
from repro.web import http
from repro.web.http import Request, Response
from repro.web.server import Site

#: The catalog's hostname on the in-process Internet.
CATALOG_HOST = "catalog.serve.repro"

#: Pagination guard rails.
DEFAULT_LIMIT = 20
MAX_LIMIT = 100

_LISTING_COLUMNS = (
    "id", "cycle", "offer_url", "marketplace", "platform", "category",
    "price_usd", "title", "seller_id", "seller_url", "seller_name",
    "followers_claimed", "verified_claim", "first_seen_iteration",
    "last_seen_iteration", "provenance",
)
_SELLER_COLUMNS = (
    "id", "seller_url", "marketplace", "name", "country", "rating",
    "joined", "n_listings", "n_priced", "median_price_usd",
    "min_price_usd", "max_price_usd", "platforms",
)

_LISTING_SORTS = {
    "url": "offer_url ASC, id ASC",
    "price": "price_usd ASC, id ASC",
    "-price": "price_usd DESC, id ASC",
}


class _BadParam(ValueError):
    """A query parameter failed validation (rendered as a 400)."""


def _json_response(status: int, document: dict) -> Response:
    body = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return Response(status=status, body=body,
                    headers={"Content-Type": "application/json"})


def _listing_dict(row) -> dict:
    payload = {column: row[column] for column in _LISTING_COLUMNS}
    payload["verified_claim"] = bool(payload["verified_claim"])
    return payload


def _seller_dict(row) -> dict:
    payload = {column: row[column] for column in _SELLER_COLUMNS}
    payload["platforms"] = \
        payload["platforms"].split(",") if payload["platforms"] else []
    return payload


def _int_param(params: Dict[str, str], name: str,
               default: Optional[int] = None,
               minimum: Optional[int] = None,
               maximum: Optional[int] = None) -> Optional[int]:
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise _BadParam(f"{name} must be an integer, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise _BadParam(f"{name} must be >= {minimum}")
    if maximum is not None:
        value = min(value, maximum)
    return value


def _float_param(params: Dict[str, str], name: str) -> Optional[float]:
    raw = params.get(name)
    if raw is None or raw == "":
        return None
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise _BadParam(f"{name} must be a number, got {raw!r}") from None


class CatalogApi:
    """Route handlers over one opened :class:`Catalog`.

    Construct once, then :meth:`register` onto a site (or use
    :func:`build_catalog_site`).  The instance owns the response cache;
    its hit/miss counters are what ``repro serve bench`` reports.
    """

    def __init__(self, catalog: Catalog,
                 cache: Optional[ResponseCache] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.catalog = catalog
        self.telemetry = telemetry or NULL_TELEMETRY
        self.cache = cache if cache is not None \
            else ResponseCache(telemetry=self.telemetry)

    # -- caching dispatch ---------------------------------------------------

    def _cached(self, endpoint: str, request: Request, compute) -> Response:
        params = {**request.params, **request.path_params}
        key = cache_key(endpoint, params, self.catalog.digest)
        entry = self.cache.get(key)
        if entry is not None:
            status, body = entry
            return Response(status=status, body=body,
                            headers={"Content-Type": "application/json"})
        try:
            status, document = compute(params)
        except _BadParam as exc:
            status, document = http.BAD_REQUEST, {"error": str(exc)}
        except CatalogError as exc:
            status, document = http.NOT_FOUND, {"error": str(exc)}
        document.setdefault("schema", CATALOG_API_SCHEMA)
        document.setdefault("endpoint", endpoint)
        document.setdefault("digest", self.catalog.digest)
        response = _json_response(status, document)
        # Every response is a pure function of (params, digest) — error
        # answers included — so everything is cacheable.
        self.cache.put(key, response.status, response.body)
        return response

    def register(self, site: Site) -> Site:
        site.route("GET", "/api/catalog",
                   lambda r: self._cached("catalog", r, self._catalog))
        site.route("GET", "/api/listings",
                   lambda r: self._cached("listings", r, self._listings))
        site.route("GET", "/api/listings/<listing_id>",
                   lambda r: self._cached("listing", r, self._listing))
        site.route("GET", "/api/sellers",
                   lambda r: self._cached("sellers", r, self._sellers))
        site.route("GET", "/api/sellers/<seller_id>",
                   lambda r: self._cached("seller", r, self._seller))
        site.route("GET", "/api/price-history",
                   lambda r: self._cached("price_history", r,
                                          self._price_history))
        site.route("GET", "/api/scorecard",
                   lambda r: self._cached("scorecard", r, self._scorecard))
        site.route("GET", "/api/diff",
                   lambda r: self._cached("diff", r, self._diff))
        return site

    # -- endpoints ----------------------------------------------------------

    def _catalog(self, params: Dict[str, str]) -> Tuple[int, dict]:
        return http.OK, {
            "cycles": self.catalog.cycles(),
            "tables": self.catalog.stats(),
            "cache": self.cache.stats(),
        }

    def _listings(self, params: Dict[str, str]) -> Tuple[int, dict]:
        clauses: List[str] = []
        arguments: List[object] = []
        for column in ("marketplace", "category", "platform"):
            value = params.get(column)
            if value:
                clauses.append(f"{column} = ?")
                arguments.append(value)
        seller = _int_param(params, "seller")
        if seller is not None:
            clauses.append("seller_id = ?")
            arguments.append(seller)
        cycle = _int_param(params, "cycle")
        if cycle is not None:
            clauses.append("cycle = ?")
            arguments.append(cycle)
        price_min = _float_param(params, "price_min")
        if price_min is not None:
            clauses.append("price_usd >= ?")
            arguments.append(price_min)
        price_max = _float_param(params, "price_max")
        if price_max is not None:
            clauses.append("price_usd <= ?")
            arguments.append(price_max)
        sort = params.get("sort", "url")
        if sort not in _LISTING_SORTS:
            raise _BadParam(
                f"sort must be one of {sorted(_LISTING_SORTS)}, got {sort!r}"
            )
        limit = _int_param(params, "limit", default=DEFAULT_LIMIT,
                           minimum=1, maximum=MAX_LIMIT)
        offset = _int_param(params, "offset", default=0, minimum=0)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        total = self.catalog.conn.execute(
            f"SELECT COUNT(*) FROM listings{where}", arguments
        ).fetchone()[0]
        rows = self.catalog.conn.execute(
            f"SELECT * FROM listings{where}"
            f" ORDER BY {_LISTING_SORTS[sort]} LIMIT ? OFFSET ?",
            [*arguments, limit, offset],
        ).fetchall()
        return http.OK, {
            "total": total,
            "limit": limit,
            "offset": offset,
            "results": [_listing_dict(row) for row in rows],
        }

    def _listing(self, params: Dict[str, str]) -> Tuple[int, dict]:
        try:
            listing_id = int(params["listing_id"])
        except (KeyError, ValueError):
            raise _BadParam("listing id must be an integer") from None
        row = self.catalog.conn.execute(
            "SELECT * FROM listings WHERE id = ?", (listing_id,)
        ).fetchone()
        if row is None:
            return http.NOT_FOUND, {"error": f"no listing {listing_id}"}
        return http.OK, {"listing": _listing_dict(row)}

    def _sellers(self, params: Dict[str, str]) -> Tuple[int, dict]:
        clauses: List[str] = []
        arguments: List[object] = []
        marketplace = params.get("marketplace")
        if marketplace:
            clauses.append("marketplace = ?")
            arguments.append(marketplace)
        min_listings = _int_param(params, "min_listings")
        if min_listings is not None:
            clauses.append("n_listings >= ?")
            arguments.append(min_listings)
        limit = _int_param(params, "limit", default=DEFAULT_LIMIT,
                           minimum=1, maximum=MAX_LIMIT)
        offset = _int_param(params, "offset", default=0, minimum=0)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        total = self.catalog.conn.execute(
            f"SELECT COUNT(*) FROM sellers{where}", arguments
        ).fetchone()[0]
        rows = self.catalog.conn.execute(
            f"SELECT * FROM sellers{where}"
            f" ORDER BY n_listings DESC, id ASC LIMIT ? OFFSET ?",
            [*arguments, limit, offset],
        ).fetchall()
        return http.OK, {
            "total": total,
            "limit": limit,
            "offset": offset,
            "results": [_seller_dict(row) for row in rows],
        }

    def _seller(self, params: Dict[str, str]) -> Tuple[int, dict]:
        try:
            seller_id = int(params["seller_id"])
        except (KeyError, ValueError):
            raise _BadParam("seller id must be an integer") from None
        row = self.catalog.conn.execute(
            "SELECT * FROM sellers WHERE id = ?", (seller_id,)
        ).fetchone()
        if row is None:
            return http.NOT_FOUND, {"error": f"no seller {seller_id}"}
        listings = self.catalog.conn.execute(
            "SELECT * FROM listings WHERE seller_id = ?"
            " ORDER BY offer_url ASC, id ASC",
            (seller_id,),
        ).fetchall()
        return http.OK, {
            "seller": _seller_dict(row),
            "listings": [_listing_dict(entry) for entry in listings],
        }

    def _price_history(self, params: Dict[str, str]) -> Tuple[int, dict]:
        clauses: List[str] = []
        arguments: List[object] = []
        for column in ("marketplace", "category"):
            value = params.get(column)
            if value:
                clauses.append(f"{column} = ?")
                arguments.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self.catalog.conn.execute(
            f"SELECT * FROM price_history{where}"
            f" ORDER BY marketplace, category, cycle",
            arguments,
        ).fetchall()
        series: Dict[Tuple[str, str], List[dict]] = {}
        for row in rows:
            series.setdefault(
                (row["marketplace"], row["category"]), []
            ).append({
                "cycle": row["cycle"],
                "n": row["n"],
                "median_price_usd": row["median_price_usd"],
                "mean_price_usd": row["mean_price_usd"],
                "min_price_usd": row["min_price_usd"],
                "max_price_usd": row["max_price_usd"],
            })
        return http.OK, {
            "series": [
                {"marketplace": marketplace, "category": category,
                 "points": points}
                for (marketplace, category), points in sorted(series.items())
            ],
        }

    def _scorecard(self, params: Dict[str, str]) -> Tuple[int, dict]:
        cycle = _int_param(params, "cycle")
        if cycle is None:
            cycle = self.catalog.latest_cycle()
        if cycle not in self.catalog.cycles():
            return http.NOT_FOUND, {"error": f"no cycle {cycle}"}
        rows = self.catalog.conn.execute(
            "SELECT * FROM scorecards WHERE cycle = ? ORDER BY name",
            (cycle,),
        ).fetchall()
        return http.OK, {
            "cycle": cycle,
            "entries": [
                {"name": row["name"], "kind": row["kind"],
                 "value": row["value"], "low": row["lo"],
                 "high": row["hi"], "passed": bool(row["passed"]),
                 "detail": row["detail"]}
                for row in rows
            ],
        }

    def _diff(self, params: Dict[str, str]) -> Tuple[int, dict]:
        left = _int_param(params, "from")
        right = _int_param(params, "to")
        if left is None or right is None:
            raise _BadParam("diff needs ?from=CYCLE&to=CYCLE")
        cycles = set(self.catalog.cycles())
        for cycle in (left, right):
            if cycle not in cycles:
                return http.NOT_FOUND, {"error": f"no cycle {cycle}"}

        def counts_of(cycle: int) -> Dict[str, int]:
            return {
                row["marketplace"]: row[1]
                for row in self.catalog.conn.execute(
                    "SELECT marketplace, COUNT(*) FROM listings"
                    " WHERE cycle = ? GROUP BY marketplace"
                    " ORDER BY marketplace",
                    (cycle,),
                )
            }

        def medians_of(cycle: int) -> Dict[str, float]:
            return {
                f"{row['marketplace']}/{row['category']}":
                    row["median_price_usd"]
                for row in self.catalog.conn.execute(
                    "SELECT marketplace, category, median_price_usd"
                    " FROM price_history WHERE cycle = ?"
                    " ORDER BY marketplace, category",
                    (cycle,),
                )
            }

        def scores_of(cycle: int) -> Dict[str, float]:
            return {
                row["name"]: row["value"]
                for row in self.catalog.conn.execute(
                    "SELECT name, value FROM scorecards WHERE cycle = ?"
                    " ORDER BY name",
                    (cycle,),
                )
                if row["value"] is not None
            }

        def delta_map(before: Dict[str, float],
                      after: Dict[str, float]) -> Dict[str, dict]:
            return {
                key: {
                    "from": before.get(key),
                    "to": after.get(key),
                    "delta": (
                        round(after[key] - before[key], 6)
                        if key in before and key in after else None
                    ),
                }
                for key in sorted(set(before) | set(after))
            }

        return http.OK, {
            "from": left,
            "to": right,
            "listings_by_marketplace":
                delta_map(counts_of(left), counts_of(right)),
            "median_price_by_series":
                delta_map(medians_of(left), medians_of(right)),
            "scorecard_values":
                delta_map(scores_of(left), scores_of(right)),
        }


def build_catalog_site(catalog: Catalog,
                       cache: Optional[ResponseCache] = None,
                       host: str = CATALOG_HOST,
                       clock: Optional[SimClock] = None,
                       latency_seconds: float = 0.0,
                       rate_limit_per_second: Optional[float] = None,
                       telemetry: Optional[Telemetry] = None
                       ) -> Tuple[Site, CatalogApi]:
    """A ready-to-register :class:`Site` serving ``catalog``.

    Returns the site together with its :class:`CatalogApi` (whose cache
    holds the hit/miss counters callers report on).
    """
    api = CatalogApi(catalog, cache=cache, telemetry=telemetry)
    site = Site(host, clock=clock, latency_seconds=latency_seconds,
                rate_limit_per_second=rate_limit_per_second)
    api.register(site)
    return site, api


__all__ = [
    "CATALOG_HOST",
    "CatalogApi",
    "DEFAULT_LIMIT",
    "MAX_LIMIT",
    "build_catalog_site",
]
