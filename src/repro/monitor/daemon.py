"""The supervised continuous-measurement daemon behind ``repro monitor``.

``MonitorDaemon`` turns the one-shot pipeline into a recurring
measurement campaign: every cycle runs the full study (telemetry on,
scorecard on) into its own run directory, ingests it into the state
dir's run registry, evaluates the deterministic alert rules against the
fleet baseline, and records the whole lifecycle in the durable schedule
ledger (:mod:`repro.monitor.ledger`).  The daemon composes the
subsystems previous layers built — it owns *when* and *whether*, never
*how*.

Fault domains, from the ISSUE's model:

* one **cycle** fails (crawl bug, degraded analysis, injected drill) →
  the :class:`~repro.monitor.supervisor.CycleSupervisor` retries per
  policy, records a typed ``failed`` entry, and the daemon moves on;
* the **daemon** dies (SIGKILL, OOM) → restart replays the ledger,
  quarantines the torn cycle's partial run dir, and continues per the
  ``catch_up`` policy;
* the **operator** stops it (SIGTERM/SIGINT) → the current cycle
  finishes, state is flushed, and the exit code is 130 (a second
  signal aborts the cycle in flight);
* every cycle fails (broken deploy) → the consecutive-failure circuit
  exits 4 instead of death-looping.

Scheduling is **simulated-time by default**: cycle *k* is stamped
``scheduled_sim = k * interval`` and no real time passes between
cycles, so a 3-cycle daily campaign runs in seconds and two same-seed
daemons produce byte-identical ledgers.  ``scheduler="wall"`` really
sleeps for deployments.  Ledger entries never carry wall-clock values.

Exit codes: 0 all cycles done, 2 unusable state dir/lock/ledger,
4 circuit tripped, 130 stopped by signal.
"""

from __future__ import annotations

import os
import shutil
import signal as _signal
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.pipeline import Study, StudyConfig
from repro.monitor.errors import LockError, MonitorError
from repro.monitor.ledger import LEDGER_FILENAME, ScheduleLedger
from repro.monitor.lock import LOCK_FILENAME, StateLock
from repro.monitor.retention import RetentionPolicy, apply_retention
from repro.monitor.supervisor import (
    CyclePolicy,
    CycleSupervisor,
    DegradedCycleFault,
)
from repro.obs.alerts import AlertConfig, evaluate_alerts, write_alerts
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.quality import write_scorecard
from repro.obs.registry import REGISTRY_FILENAME, RunRegistry
from repro.obs.schemas import config_hash
from repro.obs.telemetry import Telemetry

CYCLES_DIRNAME = "cycles"
QUARANTINE_DIRNAME = "quarantine"

#: Daemon exit codes (also the CLI's).
EXIT_OK = 0
EXIT_STATE_ERROR = 2
EXIT_CIRCUIT = 4
EXIT_SIGNAL = 130


class MonitorAbort(BaseException):
    """Second signal: abort the cycle in flight.  BaseException so the
    cycle supervisor's ``except Exception`` fault boundary does not
    swallow it into a retry."""

    def __init__(self, signum: int):
        super().__init__(f"aborted by signal {signum}")
        self.signum = signum


@dataclass(frozen=True)
class MonitorConfig:
    """Everything ``repro monitor run`` configures.

    The **deterministic** fields (seed, scale, iterations, underground,
    chaos, interval) are hashed into the ledger header: one state dir
    is one measurement series, and reopening it with a different series
    config refuses.  Operational knobs (retries, retention, drills,
    scheduler) may vary freely between sessions of the same series.
    """

    state_dir: str
    #: Total cycles the campaign runs (None = forever / until signal).
    cycles: Optional[int] = None
    #: Simulated seconds between cycle starts (default: daily).
    interval_seconds: float = 86400.0
    seed: int = 2024
    scale: float = 0.02
    iterations: int = 3
    include_underground: bool = False
    chaos_profile: str = "off"
    #: Torn/missed cycles on restart: re-run them ("run") or record
    #: them ``skipped`` ("skip").
    catch_up: str = "run"
    #: Retention: keep at most N ingested run dirs / B bytes of them.
    keep_runs: Optional[int] = None
    max_bytes: Optional[int] = None
    #: Per-cycle retry policy.
    max_attempts: int = 2
    backoff_seconds: float = 300.0
    max_consecutive_failures: int = 3
    #: A cycle whose analysis stages degraded: "fail" the cycle (default
    #: — a degraded run is not a valid measurement) or "ingest" it.
    degraded_policy: str = "fail"
    #: Drill: deliberately fail these analysis stages...
    fail_stages: Tuple[str, ...] = ()
    #: ...in these cycles only (empty = never).
    fail_cycles: Tuple[int, ...] = ()
    #: "sim" (default, no real time passes) or "wall" (really sleeps).
    scheduler: str = "sim"

    def deterministic_config(self) -> dict:
        """The fields that define the measurement series."""
        return {
            "seed": self.seed,
            "scale": self.scale,
            "iterations": self.iterations,
            "include_underground": self.include_underground,
            "chaos_profile": self.chaos_profile,
            "interval_seconds": self.interval_seconds,
        }

    def config_hash(self) -> str:
        return config_hash(self.deterministic_config())

    def study_config(self, cycle: int) -> StudyConfig:
        """The study config of one cycle: per-cycle seed so the trend
        series see genuine (but reproducible) run-to-run variance."""
        fail_stages = (
            self.fail_stages if cycle in self.fail_cycles else ()
        )
        return StudyConfig(
            seed=self.seed + cycle,
            scale=self.scale,
            iterations=self.iterations,
            include_underground=self.include_underground,
            telemetry_enabled=True,
            chaos_profile=self.chaos_profile,
            scorecard_enabled=True,
            fail_stages=fail_stages,
        )


def run_id_for_cycle(cycle: int) -> str:
    """The registry run id of one cycle.

    Deliberately *not* the artifact content digest: manifests record
    wall-clock stage timings, so a digest id would differ between two
    same-seed daemons and break ledger byte-determinism.  The cycle
    number is the identity; re-ingesting a re-run of the same cycle is
    the idempotent no-op crash recovery relies on.
    """
    return f"cycle-{cycle:06d}"


class MonitorDaemon:
    """One supervised monitoring session over a state directory.

    Injectable seams (tests): ``pid_alive`` (lock staleness),
    ``sleep`` (wall scheduler), ``printer`` (the event stream), and
    ``hooks`` — callables invoked at named points inside the cycle body
    (``cycle_start``, ``before_ingest``) so the soak test can SIGKILL
    the daemon at exactly the nastiest instants.
    """

    def __init__(self, config: MonitorConfig,
                 printer: Callable[[str], None] = print,
                 pid_alive: Optional[Callable[[int], bool]] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 hooks: Optional[Dict[str, Callable[[int, int], None]]] = None):
        self.config = config
        self.printer = printer
        self.pid_alive = pid_alive
        self.wall_sleep = sleep
        self.hooks = dict(hooks or {})
        self.stop_requested = False
        self.sim_now = 0.0

    # -- paths -------------------------------------------------------------

    def cycle_dir(self, cycle: int) -> str:
        return os.path.join(self.config.state_dir, CYCLES_DIRNAME,
                            run_id_for_cycle(cycle))

    @property
    def ledger_path(self) -> str:
        return os.path.join(self.config.state_dir, LEDGER_FILENAME)

    @property
    def registry_path(self) -> str:
        return os.path.join(self.config.state_dir, REGISTRY_FILENAME)

    @property
    def lock_path(self) -> str:
        return os.path.join(self.config.state_dir, LOCK_FILENAME)

    # -- event stream ------------------------------------------------------

    def _log(self, line: str) -> None:
        self.printer(f"monitor: {line}")

    def _hook(self, name: str, cycle: int, attempt: int) -> None:
        hook = self.hooks.get(name)
        if hook is not None:
            hook(cycle, attempt)

    # -- signals -----------------------------------------------------------

    def _on_signal(self, signum, _frame) -> None:
        if self.stop_requested:
            raise MonitorAbort(signum)
        self.stop_requested = True
        self._log(
            f"signal {signum}: finishing the current cycle, then "
            "stopping (send again to abort the cycle in flight)"
        )

    # -- scheduling --------------------------------------------------------

    def _backoff_sleep(self, seconds: float) -> None:
        """The supervisor's retry-backoff hook."""
        if self.config.scheduler == "wall":
            self.wall_sleep(seconds)
        else:
            self.sim_now += seconds

    def _advance_to(self, cycle: int, ran_before: bool) -> None:
        """Move the schedule clock to cycle ``k``'s start."""
        scheduled = cycle * self.config.interval_seconds
        if self.config.scheduler == "wall":
            if ran_before:
                self.wall_sleep(self.config.interval_seconds)
        else:
            self.sim_now = max(self.sim_now, scheduled)

    # -- lifecycle ---------------------------------------------------------

    def run(self, install_signals: bool = False) -> int:
        """The daemon main loop; returns the process exit code."""
        os.makedirs(self.config.state_dir, exist_ok=True)
        lock = StateLock(self.lock_path, pid_alive=self.pid_alive)
        try:
            lock.acquire()
        except LockError as exc:
            self._log(str(exc))
            return EXIT_STATE_ERROR
        previous_handlers = {}
        if install_signals:
            for signum in (_signal.SIGINT, _signal.SIGTERM):
                previous_handlers[signum] = _signal.signal(
                    signum, self._on_signal
                )
        try:
            return self._run_locked()
        except MonitorError as exc:
            self._log(str(exc))
            return EXIT_STATE_ERROR
        finally:
            for signum, handler in previous_handlers.items():
                _signal.signal(signum, handler)
            lock.release()

    def _run_locked(self) -> int:
        ledger = ScheduleLedger.open(self.ledger_path,
                                     self.config.config_hash())
        self._recover(ledger)
        supervisor = CycleSupervisor(
            ledger,
            policy=CyclePolicy(
                max_attempts=self.config.max_attempts,
                backoff_seconds=self.config.backoff_seconds,
                max_consecutive_failures=self.config.max_consecutive_failures,
            ),
            sleep=self._backoff_sleep,
            log=self._log,
        )
        retention = RetentionPolicy(keep_runs=self.config.keep_runs,
                                    max_bytes=self.config.max_bytes)
        cycle = 0
        ran_before = False
        completed = 0
        while self.config.cycles is None or cycle < self.config.cycles:
            state = ledger.cycle_states().get(cycle)
            if state is not None and state.terminal:
                cycle += 1
                continue
            if self.stop_requested:
                self._log(f"stopped before cycle {cycle}")
                return EXIT_SIGNAL
            if state is None or state.status != "planned":
                ledger.append({
                    "cycle": cycle, "status": "planned",
                    "scheduled_sim": round(
                        cycle * self.config.interval_seconds, 6
                    ),
                })
            self._advance_to(cycle, ran_before)
            ran_before = True
            try:
                outcome = supervisor.run_cycle(
                    cycle,
                    lambda attempt, c=cycle: self._cycle_body(c, attempt),
                )
            except MonitorAbort as abort:
                ledger.append({
                    "cycle": cycle, "status": "failed", "attempts": 0,
                    "reason": "interrupted",
                    "detail": "aborted by operator signal",
                })
                self._log(f"cycle {cycle} aborted ({abort})")
                return EXIT_SIGNAL
            if outcome.ok:
                completed += 1
                self._log(
                    f"cycle {cycle} ingested as {outcome.info.get('run_id')}"
                    f" (registry seq {outcome.info.get('seq')},"
                    f" {outcome.info.get('alerts', 0)} alert(s))"
                )
                apply_retention(ledger, retention, self.cycle_dir,
                                log=self._log)
            else:
                self._log(
                    f"cycle {cycle} FAILED after {outcome.attempts} "
                    f"attempt(s): {outcome.reason} ({outcome.detail})"
                )
                if supervisor.circuit_open:
                    self._log(
                        f"{supervisor.consecutive_failures} consecutive "
                        "cycle failures — circuit open, stopping"
                    )
                    return EXIT_CIRCUIT
            if self.stop_requested:
                self._log(f"stopped after cycle {cycle}")
                return EXIT_SIGNAL
            cycle += 1
        self._log(
            f"campaign complete: {completed} cycle(s) ingested this "
            f"session, ledger at {self.ledger_path}"
        )
        return EXIT_OK

    # -- restart recovery --------------------------------------------------

    def _recover(self, ledger: ScheduleLedger) -> None:
        """Quarantine torn cycles and apply the catch-up policy."""
        for cycle in ledger.torn_cycles():
            self._quarantine_cycle_dir(cycle)
            ledger.append({"cycle": cycle, "status": "quarantined"})
            if self.config.catch_up == "skip":
                ledger.append({
                    "cycle": cycle, "status": "skipped",
                    "reason": "catch_up",
                })
                self._log(
                    f"cycle {cycle} was torn by a crash; quarantined its "
                    "partial run dir and skipped it (catch_up=skip)"
                )
            else:
                self._log(
                    f"cycle {cycle} was torn by a crash; quarantined its "
                    "partial run dir, will re-run it (catch_up=run)"
                )

    def _quarantine_cycle_dir(self, cycle: int) -> None:
        source = self.cycle_dir(cycle)
        if not os.path.exists(source):
            return
        quarantine_root = os.path.join(self.config.state_dir,
                                       QUARANTINE_DIRNAME)
        os.makedirs(quarantine_root, exist_ok=True)
        target = os.path.join(quarantine_root, run_id_for_cycle(cycle))
        suffix = 2
        while os.path.exists(target):
            target = os.path.join(
                quarantine_root, f"{run_id_for_cycle(cycle)}.{suffix}"
            )
            suffix += 1
        os.replace(source, target)

    # -- the cycle body ----------------------------------------------------

    def _cycle_body(self, cycle: int, attempt: int) -> dict:
        """One full measurement: study → artifacts → ingest → alerts.

        Raises to signal failure (the supervisor classifies); returns
        the deterministic info dict recorded in the ``ingested`` ledger
        entry.
        """
        self._hook("cycle_start", cycle, attempt)
        run_dir = self.cycle_dir(cycle)
        if os.path.exists(run_dir):
            # Leftovers from a failed attempt this session (a crashed
            # session's leftovers were already quarantined on recovery).
            shutil.rmtree(run_dir)
        os.makedirs(run_dir, exist_ok=True)

        study_config = self.config.study_config(cycle)
        telemetry = Telemetry()
        result = Study(study_config, telemetry=telemetry).run()

        telemetry.export(run_dir)
        if result.scorecard is not None:
            write_scorecard(run_dir, result.scorecard)
        if result.quarantine is not None:
            result.quarantine.write_jsonl(run_dir)
        manifest = build_manifest(
            study_config, result, telemetry,
            command=["monitor", run_id_for_cycle(cycle)],
        )
        write_manifest(run_dir, manifest)

        if result.stage_failures and self.config.degraded_policy == "fail":
            stages = ",".join(
                sorted(failure.stage for failure in result.stage_failures)
            )
            raise DegradedCycleFault(
                f"{len(result.stage_failures)} analysis stage(s) degraded "
                f"({stages}); degraded_policy=fail rejects the measurement"
            )

        self._hook("before_ingest", cycle, attempt)
        with RunRegistry.open(self.registry_path) as registry:
            # The fixed per-cycle run id makes re-ingesting a re-run of
            # this cycle (crash between ingest and the ledger entry) an
            # idempotent no-op with the same registry seq.
            ingest = registry.ingest(run_dir,
                                     run_id=run_id_for_cycle(cycle))
            report = evaluate_alerts(registry, AlertConfig())
        write_alerts(run_dir, report)
        for alert in report.alerts:
            self._log(
                f"ALERT [{alert.severity}] {alert.rule} {alert.metric}: "
                f"{alert.message}"
            )
        return {
            "run_id": ingest.run_id,
            "seq": ingest.seq,
            "alerts": len(report.alerts),
            "sim_seconds": round(result.simulated_seconds, 6),
        }


__all__ = [
    "CYCLES_DIRNAME",
    "EXIT_CIRCUIT",
    "EXIT_OK",
    "EXIT_SIGNAL",
    "EXIT_STATE_ERROR",
    "MonitorAbort",
    "MonitorConfig",
    "MonitorDaemon",
    "QUARANTINE_DIRNAME",
    "run_id_for_cycle",
]
