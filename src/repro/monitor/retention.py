"""Disk-budget retention for monitor state directories.

A daemon that runs forever accumulates run directories forever.  The
retention pass bounds that growth with two knobs — keep at most N
ingested run dirs (``keep_runs``) and/or at most B bytes of them
(``max_bytes``) — and one inviolable rule: **never delete a directory
the registry has not ingested**.  A torn or failed cycle's partial dir
is evidence for debugging (and is quarantined, not retained), and an
un-ingested success would lose a measurement; only cycles the ledger
records as ``ingested`` are candidates, oldest first, and the most
recent ingested cycle is always kept.

Each deletion appends a ``retired`` marker to the ledger *before* the
directory is removed, so a crash between the two leaves a marker whose
dir is already gone on restart — harmless — rather than a deleted dir
the ledger still believes is live.  Ledger entries carry no byte
counts (sizes are machine-dependent; the ledger must stay
byte-deterministic across hosts), so ``max_bytes`` decisions are made
from the filesystem at runtime but recorded only as cycle numbers.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.monitor.ledger import ScheduleLedger


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds on the monitor state directory's run-dir footprint.

    ``None`` disables a bound; both ``None`` means retention never
    deletes anything.
    """

    keep_runs: Optional[int] = None
    max_bytes: Optional[int] = None

    @property
    def enabled(self) -> bool:
        return self.keep_runs is not None or self.max_bytes is not None


def dir_bytes(path: str) -> int:
    """Total size of regular files under ``path`` (0 if absent)."""
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            try:
                total += os.path.getsize(os.path.join(root, name))
            except OSError:
                continue
    return total


def apply_retention(ledger: ScheduleLedger, policy: RetentionPolicy,
                    cycle_dir: Callable[[int], str],
                    log: Callable[[str], None] = lambda line: None,
                    ) -> List[int]:
    """Retire ingested run dirs until the policy's bounds are met.

    ``cycle_dir`` maps a cycle number to its run directory.  Returns
    the cycles retired this pass (oldest first).  The newest ingested
    cycle is never retired — a monitor must always hold its latest
    measurement — so ``keep_runs=0`` behaves like ``keep_runs=1`` and
    ``max_bytes`` smaller than one run dir still keeps one.
    """
    if not policy.enabled:
        return []
    live = ledger.live_ingested_cycles()
    retired: List[int] = []

    def retire(cycle: int) -> None:
        path = cycle_dir(cycle)
        ledger.append({"cycle": cycle, "status": "retired"})
        shutil.rmtree(path, ignore_errors=True)
        retired.append(cycle)
        log(f"retention: retired cycle {cycle} run dir")

    if policy.keep_runs is not None:
        keep = max(1, policy.keep_runs)
        while len(live) > keep:
            retire(live.pop(0))
    if policy.max_bytes is not None:
        sizes = {cycle: dir_bytes(cycle_dir(cycle)) for cycle in live}
        while len(live) > 1 and sum(sizes.values()) > policy.max_bytes:
            cycle = live.pop(0)
            sizes.pop(cycle, None)
            retire(cycle)
    return retired


__all__ = ["RetentionPolicy", "apply_retention", "dir_bytes"]
