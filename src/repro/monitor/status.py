"""``repro monitor status``: what a monitor state directory holds.

Read-only: replays the schedule ledger into per-cycle states, reads
the lock file and registry, and surfaces the latest cycle's alert
report — the at-a-glance view an operator checks before blaming the
daemon for anything.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.monitor.daemon import CYCLES_DIRNAME, run_id_for_cycle
from repro.monitor.ledger import LEDGER_FILENAME, ScheduleLedger
from repro.monitor.lock import LOCK_FILENAME, default_pid_alive
from repro.obs.alerts import ALERTS_FILENAME
from repro.obs.registry import REGISTRY_FILENAME, RegistryError, RunRegistry


def _lock_line(state_dir: str) -> str:
    path = os.path.join(state_dir, LOCK_FILENAME)
    if not os.path.exists(path):
        return "lock: free"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            pid = int(handle.read().strip())
    except (OSError, ValueError):
        return "lock: held (unreadable owner)"
    alive = default_pid_alive(pid)
    return f"lock: held by pid {pid} ({'alive' if alive else 'STALE — dead owner'})"


def _registry_line(state_dir: str) -> str:
    path = os.path.join(state_dir, REGISTRY_FILENAME)
    if not os.path.exists(path):
        return "registry: none yet"
    try:
        with RunRegistry.open_existing(path) as registry:
            rows = registry.runs()
    except RegistryError as exc:
        return f"registry: UNREADABLE ({exc})"
    return f"registry: {len(rows)} run(s) ingested"

def _latest_alert_lines(state_dir: str,
                        ledger: ScheduleLedger) -> List[str]:
    live = ledger.live_ingested_cycles()
    if not live:
        return []
    cycle = live[-1]
    path = os.path.join(state_dir, CYCLES_DIRNAME, run_id_for_cycle(cycle),
                        ALERTS_FILENAME)
    if not os.path.exists(path):
        return []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        return [f"alerts ({run_id_for_cycle(cycle)}): unreadable"]
    alerts = report.get("alerts") or []
    if not alerts:
        return [f"alerts ({run_id_for_cycle(cycle)}): none fired"]
    lines = [f"alerts ({run_id_for_cycle(cycle)}): {len(alerts)} fired"]
    for alert in alerts:
        lines.append(
            f"  [{alert.get('severity')}] {alert.get('rule')} "
            f"{alert.get('metric')}: {alert.get('message')}"
        )
    return lines


def render_status(state_dir: str) -> str:
    """The human status view of one monitor state directory."""
    ledger = ScheduleLedger.read(os.path.join(state_dir, LEDGER_FILENAME))
    states = ledger.cycle_states()
    lines = [
        f"monitor state dir {state_dir}",
        f"series config hash: {ledger.header.get('config_hash')}",
        _lock_line(state_dir),
        _registry_line(state_dir),
    ]
    counts = {}
    for state in states.values():
        counts[state.status] = counts.get(state.status, 0) + 1
    if counts:
        summary = ", ".join(
            f"{count} {status}" for status, count in sorted(counts.items())
        )
        lines.append(f"cycles: {len(states)} recorded ({summary})")
    else:
        lines.append("cycles: none recorded yet")
    for cycle in sorted(states):
        state = states[cycle]
        flags = []
        if state.quarantined:
            flags.append("quarantined-partial")
        if state.retired:
            flags.append("retired")
        extra: Optional[str] = None
        if state.status == "ingested":
            extra = (f"seq {state.detail.get('seq')}, "
                     f"{state.detail.get('alerts', 0)} alert(s)")
        elif state.status == "failed":
            extra = state.detail.get("reason")
        elif state.status == "skipped":
            extra = state.detail.get("reason")
        elif state.torn:
            extra = "TORN — daemon died mid-cycle"
        parts = [f"  {run_id_for_cycle(cycle)}: {state.status}"]
        if extra:
            parts.append(f"({extra})")
        if flags:
            parts.append(f"[{', '.join(flags)}]")
        lines.append(" ".join(parts))
    lines.extend(_latest_alert_lines(state_dir, ledger))
    return "\n".join(lines)


__all__ = ["render_status"]
