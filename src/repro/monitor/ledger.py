"""The monitor's durable schedule ledger: append-only JSONL, crash-safe.

The ledger is the daemon's only memory of what it has done.  Every cycle
walks ``planned → running → ingested | failed | skipped``; each
transition is one appended line, flushed and fsynced before the daemon
acts on it, so a SIGKILL at any instant leaves a prefix of the true
history plus at most one torn final line (which loading tolerates and
drops — the write it belonged to never happened).

A cycle whose last recorded status is ``running`` is a **torn cycle**:
the daemon died mid-cycle.  Restart recovery quarantines its partial
run directory and either re-plans it (``catch_up="run"``) or records it
``skipped`` (``catch_up="skip"``).

Determinism: no entry carries a wall-clock timestamp — cycles are
stamped with their scheduled *simulated* time and the registry sequence
numbers they produced — so two same-seed daemons (one SIGKILL-ed and
restarted, one uninterrupted) write byte-identical ledgers modulo the
torn cycle's extra ``running``/``quarantined`` lines.  The first line is
a header carrying :data:`~repro.obs.schemas.MONITOR_LEDGER_SCHEMA` and
the monitor's config hash; reopening a state dir with a different
deterministic config refuses rather than silently mixing histories.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.monitor.errors import MonitorError
from repro.obs.schemas import MONITOR_LEDGER_SCHEMA, canonical_json

LEDGER_FILENAME = "ledger.jsonl"

#: Cycle statuses that end a cycle's lifecycle (no more attempts).
TERMINAL_STATUSES = frozenset({"ingested", "failed", "skipped"})
#: Every status a ledger entry may carry.
KNOWN_STATUSES = frozenset({
    "planned", "running", "ingested", "failed", "skipped",
    "quarantined", "retired",
})


@dataclass
class CycleState:
    """One cycle's current position in the ledger's state machine."""

    cycle: int
    #: Last lifecycle status (planned/running/ingested/failed/skipped).
    status: str = "planned"
    #: Running-entry attempts seen for the current plan epoch.
    attempts: int = 0
    #: The terminal entry's interesting fields (run_id, reason, ...).
    detail: dict = field(default_factory=dict)
    #: The cycle's run dir was garbage-collected by retention.
    retired: bool = False
    #: A previous partial attempt was quarantined on restart.
    quarantined: bool = False

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def torn(self) -> bool:
        """Died mid-cycle: a ``running`` entry with no terminal one."""
        return self.status == "running"


class ScheduleLedger:
    """Append-only JSONL ledger in the monitor state directory.

    Use :meth:`open` — it creates the file with its header line on
    first use and validates the header (schema id, config hash) on
    every reopen.  :meth:`append` writes one canonical-JSON line and
    fsyncs before returning: once ``append`` returns, the entry
    survives SIGKILL.
    """

    def __init__(self, path: str, header: dict,
                 entries: Optional[List[dict]] = None):
        self.path = path
        self.header = header
        self.entries: List[dict] = list(entries or [])

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(cls, path: str, config_hash: str,
             extra_header: Optional[dict] = None) -> "ScheduleLedger":
        """Open (creating if absent) the ledger at ``path``.

        ``config_hash`` digests the monitor's deterministic config; a
        ledger recorded under a different hash belongs to a different
        measurement series and refuses to continue.
        """
        if os.path.exists(path):
            header, entries = cls._load(path)
            if header.get("schema") != MONITOR_LEDGER_SCHEMA:
                raise MonitorError(
                    f"{path}: ledger schema {header.get('schema')!r} does "
                    f"not match expected {MONITOR_LEDGER_SCHEMA!r}"
                )
            if header.get("config_hash") != config_hash:
                raise MonitorError(
                    f"{path}: ledger belongs to monitor config "
                    f"{header.get('config_hash')!r}, not {config_hash!r} — "
                    "refusing to mix measurement series in one state dir"
                )
            return cls(path, header, entries)
        header = {"schema": MONITOR_LEDGER_SCHEMA,
                  "config_hash": config_hash}
        header.update(extra_header or {})
        ledger = cls(path, header)
        ledger._append_line(header)
        return ledger

    @classmethod
    def read(cls, path: str) -> "ScheduleLedger":
        """Open an existing ledger for inspection (``monitor status``)
        without asserting a config hash; never creates the file."""
        if not os.path.exists(path):
            raise MonitorError(f"no monitor ledger at {path}")
        header, entries = cls._load(path)
        if header.get("schema") != MONITOR_LEDGER_SCHEMA:
            raise MonitorError(
                f"{path}: ledger schema {header.get('schema')!r} does "
                f"not match expected {MONITOR_LEDGER_SCHEMA!r}"
            )
        return cls(path, header, entries)

    @staticmethod
    def _load(path: str) -> Tuple[dict, List[dict]]:
        """Parse the ledger, tolerating exactly one torn final line.

        A torn tail is the signature of a crash mid-append: the entry
        was never durable, so it is dropped.  A corrupt line anywhere
        else means the file was edited or the disk lied — that is a
        :class:`MonitorError`, not something to silently skip.
        """
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        # A complete file ends with "\n": the final split element is "".
        torn_tail = lines and lines[-1] != ""
        if not torn_tail:
            lines = lines[:-1]
        records: List[dict] = []
        for index, line in enumerate(lines):
            is_last = index == len(lines) - 1
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("entry is not an object")
            except ValueError as exc:
                if is_last and torn_tail:
                    break  # crash mid-append; the entry never happened
                raise MonitorError(
                    f"{path}: corrupt ledger line {index + 1}: {exc}"
                ) from None
            records.append(record)
        if not records:
            raise MonitorError(f"{path}: ledger has no header line")
        return records[0], records[1:]

    # -- writing -----------------------------------------------------------

    def append(self, record: dict) -> dict:
        """Durably append one cycle entry and return it."""
        status = record.get("status")
        if status not in KNOWN_STATUSES:
            raise MonitorError(f"unknown ledger status {status!r}")
        self._append_line(record)
        self.entries.append(record)
        return record

    def _append_line(self, record: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(canonical_json(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- views -------------------------------------------------------------

    def cycle_states(self) -> Dict[int, CycleState]:
        """Replay the entries into one :class:`CycleState` per cycle."""
        states: Dict[int, CycleState] = {}
        for record in self.entries:
            cycle = record.get("cycle")
            if not isinstance(cycle, int):
                continue
            state = states.setdefault(cycle, CycleState(cycle=cycle))
            status = record.get("status")
            if status == "retired":
                state.retired = True
            elif status == "quarantined":
                state.quarantined = True
                state.status = "quarantined"
                state.attempts = 0
            elif status == "planned":
                state.status = "planned"
                state.attempts = 0
            elif status == "running":
                state.status = "running"
                state.attempts += 1
            elif status in TERMINAL_STATUSES:
                state.status = status
                state.detail = {
                    key: value for key, value in record.items()
                    if key not in ("cycle", "status")
                }
        return states

    def torn_cycles(self) -> List[int]:
        """Cycles whose last status is ``running`` — died mid-cycle."""
        return sorted(
            state.cycle for state in self.cycle_states().values()
            if state.torn
        )

    def terminal_cycles(self, status: Optional[str] = None) -> List[int]:
        """Cycles with a terminal status (optionally one specific)."""
        return sorted(
            state.cycle for state in self.cycle_states().values()
            if state.terminal and (status is None or state.status == status)
        )

    def live_ingested_cycles(self) -> List[int]:
        """Ingested cycles whose run dirs retention has not collected."""
        return sorted(
            state.cycle for state in self.cycle_states().values()
            if state.status == "ingested" and not state.retired
        )


__all__ = [
    "CycleState",
    "KNOWN_STATUSES",
    "LEDGER_FILENAME",
    "ScheduleLedger",
    "TERMINAL_STATUSES",
]
