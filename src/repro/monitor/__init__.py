"""Supervised continuous measurement: the ``repro monitor`` daemon.

The pipeline so far runs once and exits; this package runs it as a
recurring campaign where every cycle is a fault domain:

* :mod:`repro.monitor.ledger` — the durable append-only JSONL schedule
  ledger (``planned → running → ingested | failed | skipped``, fsynced
  per entry, torn-tail tolerant, byte-deterministic across same-seed
  daemons);
* :mod:`repro.monitor.supervisor` — per-cycle isolation: retry/backoff
  policy, typed failure reasons, the consecutive-failure circuit;
* :mod:`repro.monitor.retention` — disk budgets (``--keep-runs`` /
  ``--max-bytes``) that never delete an un-ingested run dir;
* :mod:`repro.monitor.lock` — the single-owner state-dir lock with
  stale-owner detection;
* :mod:`repro.monitor.daemon` — the main loop: SIGKILL recovery with
  torn-cycle quarantine, catch-up policy, registry ingestion + alert
  evaluation per cycle, graceful signal shutdown (exit 130);
* :mod:`repro.monitor.status` — the ``repro monitor status`` view.
"""

from repro.monitor.daemon import (
    CYCLES_DIRNAME,
    EXIT_CIRCUIT,
    EXIT_OK,
    EXIT_SIGNAL,
    EXIT_STATE_ERROR,
    MonitorAbort,
    MonitorConfig,
    MonitorDaemon,
    QUARANTINE_DIRNAME,
    run_id_for_cycle,
)
from repro.monitor.errors import LockError, MonitorError
from repro.monitor.ledger import (
    CycleState,
    KNOWN_STATUSES,
    LEDGER_FILENAME,
    ScheduleLedger,
    TERMINAL_STATUSES,
)
from repro.monitor.lock import LOCK_FILENAME, StateLock, default_pid_alive
from repro.monitor.retention import (
    RetentionPolicy,
    apply_retention,
    dir_bytes,
)
from repro.monitor.status import render_status
from repro.monitor.supervisor import (
    CycleFault,
    CycleOutcome,
    CyclePolicy,
    CycleSupervisor,
    DegradedCycleFault,
    InjectedCycleFault,
    classify_failure,
)

__all__ = [
    "CYCLES_DIRNAME",
    "CycleFault",
    "CycleOutcome",
    "CyclePolicy",
    "CycleState",
    "CycleSupervisor",
    "DegradedCycleFault",
    "EXIT_CIRCUIT",
    "EXIT_OK",
    "EXIT_SIGNAL",
    "EXIT_STATE_ERROR",
    "InjectedCycleFault",
    "KNOWN_STATUSES",
    "LEDGER_FILENAME",
    "LOCK_FILENAME",
    "LockError",
    "MonitorAbort",
    "MonitorConfig",
    "MonitorDaemon",
    "MonitorError",
    "QUARANTINE_DIRNAME",
    "RetentionPolicy",
    "ScheduleLedger",
    "StateLock",
    "TERMINAL_STATUSES",
    "apply_retention",
    "classify_failure",
    "default_pid_alive",
    "dir_bytes",
    "render_status",
    "run_id_for_cycle",
]
