"""Per-cycle fault isolation: retries, backoff, typed failure reasons.

Each measurement cycle is its own fault domain.  The
:class:`CycleSupervisor` runs one cycle body under a
:class:`CyclePolicy`: an exception is retried with exponential backoff
(simulated-time by default — the scheduler's ``sleep`` hook decides
whether any real time passes), deterministic faults are not retried at
all (an injected drill fault or a degraded analysis suite fails the
same way every time), and a cycle that exhausts its attempts is
recorded ``failed`` with a typed reason while the daemon keeps going.

The supervisor also holds the **consecutive-failure circuit**: after
``max_consecutive_failures`` failed cycles in a row the daemon must
exit nonzero with a diagnostic instead of death-looping silently —
a monitor that fails every cycle forever is worse than one that dies
loudly, because nobody is watching its empty registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults.disk import is_disk_full
from repro.monitor.ledger import ScheduleLedger


class CycleFault(Exception):
    """A typed, deliberate cycle failure (drills, policy violations).

    ``kind`` is the machine-readable reason recorded in the ledger;
    ``retryable=False`` marks deterministic faults retrying cannot fix.
    """

    kind = "fault"
    retryable = False

    def __init__(self, detail: str = ""):
        super().__init__(detail)
        self.detail = detail


class InjectedCycleFault(CycleFault):
    """The ``--fail-cycle`` drill: this cycle must fail."""

    kind = "injected"


class DegradedCycleFault(CycleFault):
    """The study ran but analysis stages failed and the monitor's
    degraded policy says a degraded run is not a valid measurement."""

    kind = "degraded"


@dataclass(frozen=True)
class CyclePolicy:
    """How hard one cycle is allowed to try before it counts as failed."""

    #: Total attempts per cycle (1 = no retry).
    max_attempts: int = 2
    #: Simulated-seconds backoff before the first retry.
    backoff_seconds: float = 300.0
    #: Backoff multiplier per further retry.
    backoff_factor: float = 2.0
    #: Failed cycles in a row before the daemon trips its circuit.
    max_consecutive_failures: int = 3

    def backoff_for(self, attempt: int) -> float:
        """Backoff before attempt N (attempts count from 1)."""
        return self.backoff_seconds * (self.backoff_factor ** (attempt - 2))


@dataclass
class CycleOutcome:
    """What one supervised cycle ended as."""

    cycle: int
    status: str  # "ingested" | "failed"
    attempts: int
    reason: Optional[str] = None
    detail: Optional[str] = None
    #: The success payload (run_id, seq, alerts_fired, ...) on ingest.
    info: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ingested"


def classify_failure(exc: Exception) -> str:
    """A one-token machine-readable reason for a cycle failure."""
    if isinstance(exc, CycleFault):
        return exc.kind
    if is_disk_full(exc):
        # ENOSPC (injected or real): retrying into the same full disk
        # cannot help, and the reason deserves its own token so the
        # operator sees "disk_full", not "error:OSError".
        return "disk_full"
    return f"error:{type(exc).__name__}"


class CycleSupervisor:
    """Runs cycle bodies under the policy, writing the ledger as it goes.

    ``sleep`` is the scheduler's backoff hook (simulated seconds); the
    sim scheduler advances a virtual clock, the wall scheduler really
    sleeps.  ``log`` receives one human line per notable transition.
    """

    def __init__(self, ledger: ScheduleLedger,
                 policy: Optional[CyclePolicy] = None,
                 sleep: Callable[[float], None] = lambda seconds: None,
                 log: Callable[[str], None] = lambda line: None):
        self.ledger = ledger
        self.policy = policy or CyclePolicy()
        self.sleep = sleep
        self.log = log
        self.consecutive_failures = 0

    @property
    def circuit_open(self) -> bool:
        """Too many failures in a row; the daemon must stop."""
        return self.consecutive_failures >= self.policy.max_consecutive_failures

    def run_cycle(self, cycle: int,
                  body: Callable[[int], dict]) -> CycleOutcome:
        """Run ``body(attempt)`` until it succeeds or attempts run out.

        The terminal ledger entry (``ingested`` or ``failed``) is
        appended before returning, so the outcome is durable the moment
        the caller sees it.
        """
        last_exc: Optional[Exception] = None
        attempts = 0
        for attempt in range(1, self.policy.max_attempts + 1):
            attempts = attempt
            entry = {"cycle": cycle, "status": "running",
                     "attempt": attempt}
            if attempt > 1:
                backoff = round(self.policy.backoff_for(attempt), 6)
                entry["backoff_sim_seconds"] = backoff
                self.log(
                    f"cycle {cycle}: retry {attempt}/"
                    f"{self.policy.max_attempts} after {backoff:g}s backoff"
                )
                self.sleep(backoff)
            self.ledger.append(entry)
            try:
                info = body(attempt) or {}
            except Exception as exc:  # noqa: BLE001 — the fault boundary
                last_exc = exc
                reason = classify_failure(exc)
                self.log(f"cycle {cycle}: attempt {attempt} failed "
                         f"({reason}: {exc})")
                if isinstance(exc, CycleFault) and not exc.retryable:
                    break
                if is_disk_full(exc):
                    # A full disk is deterministic for the retry window;
                    # burning the remaining attempts just delays the
                    # failed entry the operator needs to see.
                    break
                continue
            self.consecutive_failures = 0
            record = {"cycle": cycle, "status": "ingested",
                      "attempts": attempt}
            record.update(info)
            self.ledger.append(record)
            return CycleOutcome(cycle=cycle, status="ingested",
                                attempts=attempt, info=info)
        reason = classify_failure(last_exc) if last_exc else "unknown"
        detail = str(last_exc) if last_exc else ""
        self.consecutive_failures += 1
        self.ledger.append({
            "cycle": cycle, "status": "failed", "attempts": attempts,
            "reason": reason, "detail": detail,
        })
        return CycleOutcome(cycle=cycle, status="failed", attempts=attempts,
                            reason=reason, detail=detail)


__all__ = [
    "CycleFault",
    "CycleOutcome",
    "CyclePolicy",
    "CycleSupervisor",
    "DegradedCycleFault",
    "InjectedCycleFault",
    "classify_failure",
]
