"""Single-owner lock for a monitor state directory.

Two daemons appending to one ledger would interleave cycle histories;
the lock makes the state dir single-writer.  It is a plain lock file
created with ``O_CREAT | O_EXCL`` (atomic on every filesystem the repo
targets) whose payload is the owner's pid.  A lock whose pid is no
longer alive — the daemon was SIGKILL-ed — is **stale** and silently
reclaimed; a lock naming a live process is a hard :class:`LockError`.

A pid equal to our own is also treated as reclaimable: that is this
very process restarting in-process (the soak test's kill-and-restart
drill), not a competing daemon.

``pid_alive`` is injectable so tests can simulate dead owners without
forking.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.monitor.errors import LockError

LOCK_FILENAME = "monitor.lock"


def default_pid_alive(pid: int) -> bool:
    """Is ``pid`` a live process we could signal?"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    return True


class StateLock:
    """Own a monitor state directory for the life of the daemon."""

    def __init__(self, path: str,
                 pid_alive: Optional[Callable[[int], bool]] = None):
        self.path = path
        self.pid_alive = pid_alive or default_pid_alive
        self.held = False

    def acquire(self) -> "StateLock":
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                owner = self._read_owner()
                if owner is not None and owner != os.getpid() \
                        and self.pid_alive(owner):
                    raise LockError(
                        f"{self.path}: state dir is owned by live monitor "
                        f"pid {owner} — refusing to run two daemons on one "
                        "state dir"
                    ) from None
                # Stale (dead owner, unreadable payload, or our own pid
                # from an in-process restart): reclaim and retry.
                try:
                    os.unlink(self.path)
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"{os.getpid()}\n")
            self.held = True
            return self

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def _read_owner(self) -> Optional[int]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return int(handle.read().strip())
        except (OSError, ValueError):
            return None

    def __enter__(self) -> "StateLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


__all__ = ["LOCK_FILENAME", "StateLock", "default_pid_alive"]
