"""Error types shared across the monitor package.

Every message is a single printable line: the CLI prints it and exits
with a distinct code instead of tracebacking, the same contract the
telemetry/registry/archive readers follow.
"""

from __future__ import annotations


class MonitorError(RuntimeError):
    """A monitor state directory, ledger, or lock is unusable."""


class LockError(MonitorError):
    """Another live daemon owns the state directory."""


__all__ = ["LockError", "MonitorError"]
