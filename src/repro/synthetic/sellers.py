"""Seller generation (Section 4.1).

Table 1 gives per-marketplace seller counts; five marketplaces hide
seller identity entirely.  Disclosed sellers come from 138 countries with
the US / Ethiopia / Pakistan / UK / Turkey head, while most sellers do
not disclose a country at all.
"""

from __future__ import annotations

from typing import Dict, List

from repro.synthetic import calibration as cal
from repro.synthetic.countries import COUNTRIES, SELLER_COUNTRY_HEAD
from repro.synthetic.model import Seller
from repro.synthetic.names import NameForge
from repro.util.rng import RngTree
from repro.util.simtime import SimDate


class SellerFactory:
    """Builds the seller population for one or more marketplaces."""

    def __init__(self, rng: RngTree, forge: NameForge) -> None:
        self._rng = rng
        self._forge = forge
        self._counter = 0
        head = SELLER_COUNTRY_HEAD
        self._head = head
        self._head_weights = [float(c) for _n, c in cal.SELLER_TOP_COUNTRIES]
        self._tail = [c for c in COUNTRIES if c not in head][
            : cal.SELLER_COUNTRY_COUNT - len(head)
        ]
        total_disclosed = 8833.0  # Section 4.1: sellers that disclosed a country
        self._head_share = sum(self._head_weights) / total_disclosed

    def _country(self) -> str:
        rng = self._rng
        if rng.bernoulli(self._head_share):
            return rng.weighted_choice(self._head, self._head_weights)
        return self._tail[rng.zipf_index(len(self._tail), s=0.6)]

    def build_market_sellers(self, marketplace: str, count: int) -> List[Seller]:
        """Generate ``count`` sellers for one marketplace."""
        rng = self._rng
        sellers: List[Seller] = []
        for _ in range(count):
            self._counter += 1
            country = (
                self._country()
                if rng.bernoulli(cal.SELLER_COUNTRY_DISCLOSED_FRACTION)
                else None
            )
            sellers.append(
                Seller(
                    seller_id=f"seller-{self._counter:06d}",
                    marketplace=marketplace,
                    name=self._forge.seller_name(),
                    country=country,
                    joined=SimDate.of(
                        rng.randint(2018, 2023), rng.randint(1, 12), rng.randint(1, 28)
                    ),
                    rating=round(rng.uniform(3.0, 5.0), 1),
                )
            )
        return sellers

    def assign_listings(self, sellers: List[Seller], listing_count: int) -> List[str]:
        """Assign each of ``listing_count`` listings a seller id.

        Heavy-tailed: a few power sellers own many listings (FameSwap has
        6,617 sellers for 8,833 listings — most sellers have one or two —
        while Accsmarket has 2,455 sellers for 13,665).
        """
        rng = self._rng
        if not sellers:
            return []
        # Every seller in Table 1 was *observed*, i.e. had at least one
        # listing: cover each seller once (as far as listings allow), then
        # hand the remainder to a Zipf head of power sellers.
        assignments: List[str] = [
            sellers[i % len(sellers)].seller_id
            for i in range(min(len(sellers), listing_count))
        ]
        for _ in range(listing_count - len(assignments)):
            index = rng.zipf_index(len(sellers), s=0.85)
            assignments.append(sellers[index].seller_id)
        rng.shuffle(assignments)
        return assignments


__all__ = ["SellerFactory"]
