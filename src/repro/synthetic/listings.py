"""Listing generation (Section 4.1).

Builds the 38K public-marketplace offers with every attribute the anatomy
analysis measures: categories (212, 22 % untagged), descriptions (63 %
present, 8 strategies), monetization claims, verified claims (YouTube
only, never with a profile URL), advertised follower counts (40 % shown),
prices, and the listing/delisting dynamics behind Figure 2.
"""

from __future__ import annotations

from typing import List, Optional

from repro.synthetic import calibration as cal
from repro.synthetic.categories import listing_categories
from repro.synthetic.model import Listing, Monetization, Platform, SocialAccount
from repro.synthetic.pricing import PriceModel
from repro.util.money import Money
from repro.util.rng import RngTree
from repro.util.textutil import compact_number

_STRATEGY_TEMPLATES = {
    "authentic": (
        "100% authentic account with organic audience, no bots, all real "
        "followers built over time. Safe transfer with original details."
    ),
    "fresh_and_ready": (
        "No shout outs have ever been done on the account. The account is "
        "fresh and ready for whatever purposes you need - CPA, product "
        "promotion, drop shipping, traffic generation. Save yourself the "
        "time and energy of starting a new account and growing it."
    ),
    "business_adaptability": (
        "Perfect for any business niche, easy to rebrand and adapt. Comes "
        "with audience insights and promotion history for smooth handover."
    ),
    "real_user_activity": (
        "Real users with daily activity, comments and shares on every post. "
        "Engagement rate stays high week after week."
    ),
    "original_email_included": (
        "Original email included with the sale, full ownership transfer, "
        "no recovery risk. First owner, never resold."
    ),
    "never_monetized": (
        "Never monetized, clean history, no strikes or warnings. Ready for "
        "your monetization application from day one."
    ),
    "aged_account": (
        "Aged account with long history, registered years ago. Old accounts "
        "pass checks easily and look trustworthy."
    ),
    "bulk_discount": (
        "Bulk packages available, discount for orders of five or more. "
        "Contact us for wholesale prices and instant delivery."
    ),
}

_GENERIC_DESCRIPTIONS = [
    "Selling this {platform} account with {followers} followers. The "
    "account averages strong views per post and has an engaged audience. "
    "If you are interested in purchasing, feel free to make an offer.",
    "Great {platform} page in the {category} niche, steady growth, "
    "{followers} followers. Serious buyers only, escrow accepted.",
    "{platform} account for sale, {followers} followers, niche {category}. "
    "Price negotiable for fast deal, message me for analytics screenshots.",
]

_INCOME_NARRATIVES = {
    "generic ad-based revenue": (
        "The account generates income by selling promotion plans and ads. "
        "You can sell posts, reposts or campaign combos. A revenue share "
        "is also a smart option. I can teach you everything to help you "
        "make income with my account."
    ),
    "Google AdSense": (
        "Monetized with Google AdSense, payouts arrive monthly to your "
        "linked account. Analytics access included before purchase."
    ),
    "premium memberships / channel monetization": (
        "You can monetise your content by selling promo videos or putting "
        "watermarks on your videos for money. Channel memberships are "
        "enabled with active paying subscribers."
    ),
}


class ListingFactory:
    """Builds listings for the public marketplaces."""

    def __init__(self, rng: RngTree, scale: float, iterations: int) -> None:
        self._rng = rng
        self._scale = scale
        self._iterations = iterations
        self._price_model = PriceModel(rng.child("prices"))
        self._counter = 0
        self._categories = listing_categories(cal.LISTING_CATEGORY_COUNT)
        head_counts = dict(cal.LISTING_TOP_CATEGORIES)
        head_total = sum(head_counts.values())
        categorized_total = cal.TOTAL_LISTINGS * (1 - cal.LISTING_NO_CATEGORY_FRACTION)
        tail_total = categorized_total - head_total
        tail_count = len(self._categories) - len(head_counts)
        # Decaying tail weights averaging tail_total / tail_count.
        raw_tail = [1.0 / (i + 4) ** 0.75 for i in range(tail_count)]
        tail_scale = tail_total / sum(raw_tail)
        self._category_weights = [
            float(head_counts.get(c, 0.0)) for c in self._categories[: len(head_counts)]
        ] + [w * tail_scale for w in raw_tail]
        # Per-listing probabilities for rare attributes, at paper scale.
        self._monetized_p = cal.MONETIZED_LISTINGS / cal.TOTAL_LISTINGS
        self._income_p = cal.SELLERS_WITH_INCOME_SOURCE / cal.TOTAL_SELLERS
        strategy_total = sum(c for _s, c in cal.DESCRIPTION_STRATEGIES)
        described = cal.TOTAL_LISTINGS * cal.LISTING_DESCRIPTION_FRACTION
        self._strategy_p = strategy_total / described
        self._strategies = [s for s, _c in cal.DESCRIPTION_STRATEGIES]
        self._strategy_weights = [float(c) for _s, c in cal.DESCRIPTION_STRATEGIES]

    # -- pieces -----------------------------------------------------------

    def _next_id(self, marketplace: str) -> str:
        self._counter += 1
        return f"{marketplace.lower()}-{self._counter:06d}"

    def _category(self) -> Optional[str]:
        rng = self._rng
        if rng.bernoulli(cal.LISTING_NO_CATEGORY_FRACTION):
            return None
        return rng.weighted_choice(self._categories, self._category_weights)

    def _followers_claim(self, platform: Platform) -> Optional[int]:
        rng = self._rng
        if not rng.bernoulli(cal.LISTING_FOLLOWERS_SHOWN_FRACTION):
            return None
        median_followers = cal.LISTING_FOLLOWER_MEDIANS[platform.value]
        return max(10, int(rng.lognormal(median_followers, 1.3)))

    def _description(
        self, platform: Platform, category: Optional[str], followers: Optional[int]
    ) -> tuple:
        """Return (description, strategy) or (None, None)."""
        rng = self._rng
        if not rng.bernoulli(cal.LISTING_DESCRIPTION_FRACTION):
            return None, None
        if rng.bernoulli(self._strategy_p):
            strategy = rng.weighted_choice(self._strategies, self._strategy_weights)
            return _STRATEGY_TEMPLATES[strategy], strategy
        text = rng.choice(_GENERIC_DESCRIPTIONS).format(
            platform=platform.value,
            category=category or "general",
            followers=compact_number(followers or rng.randint(1000, 900000)),
        )
        return text, None

    def _title(
        self,
        platform: Platform,
        category: Optional[str],
        followers: Optional[int],
        account: Optional[SocialAccount],
    ) -> str:
        rng = self._rng
        parts = [f"{platform.value} account"]
        if followers:
            parts.append(f"{compact_number(followers)} followers")
        if category:
            parts.append(f"{category} niche")
        if account is not None and rng.bernoulli(0.6):
            parts.append(f"@{account.handle}")
        if rng.bernoulli(0.25):
            parts.append(rng.choice(["HOT", "instant delivery", "OG", "cheap", "trusted seller"]))
        return " - ".join(parts)

    def _iterations_lifecycle(self) -> tuple:
        """(listed_iteration, delisted_iteration or None) for Figure 2.

        Arrivals: a share of the stock is live at iteration 0, the rest
        arrives with geometrically decaying probability; departures: a
        constant per-iteration delisting hazard.  Active listings rise,
        peak, then decline while the cumulative count keeps growing.
        """
        rng = self._rng
        n = self._iterations
        if n <= 1 or rng.bernoulli(cal.INITIAL_STOCK_FRACTION):
            listed = 0
        else:
            weights = [cal.ARRIVAL_DECAY ** i for i in range(1, n)]
            listed = rng.weighted_choice(list(range(1, n)), weights)
        delisted: Optional[int] = None
        for iteration in range(listed + 1, n):
            if rng.bernoulli(cal.DELISTING_RATE):
                delisted = iteration
                break
        return listed, delisted

    # -- whole listing -------------------------------------------------------

    def build_listing(
        self,
        marketplace: str,
        platform: Platform,
        seller_id: Optional[str],
        account: Optional[SocialAccount],
        verified_claim: bool = False,
    ) -> Listing:
        rng = self._rng
        category = self._category()
        followers = self._followers_claim(platform)
        description, strategy = self._description(platform, category, followers)
        listed, delisted = self._iterations_lifecycle()
        listing = Listing(
            listing_id=self._next_id(marketplace),
            marketplace=marketplace,
            seller_id=seller_id,
            platform=platform,
            title=self._title(platform, category, followers, account),
            price=self._price_model.body_price(platform.value),
            category=category,
            description=description,
            description_strategy=strategy,
            followers_claimed=followers,
            verified_claim=verified_claim,
            visible_account_id=account.account_id if account else None,
            listed_iteration=listed,
            delisted_iteration=delisted,
        )
        if rng.bernoulli(self._monetized_p):
            income = None
            if rng.bernoulli(0.6):
                income = rng.weighted_choice(
                    list(_INCOME_NARRATIVES),
                    [float(c) for _n, c in cal.INCOME_SOURCE_NARRATIVES],
                )
            listing.monetization = Monetization(
                monthly_revenue=self._price_model.monetization_revenue(),
                income_source=_INCOME_NARRATIVES.get(income) if income else None,
            )
        return listing

    def inject_high_prices(self, listings: List[Listing]) -> int:
        """Re-price a scaled sample of listings into the >$20K block.

        The block lives on the expensive platforms (Instagram / TikTok /
        YouTube) — Facebook's platform total is only $146K in the paper,
        so it cannot host five-figure listings — and the $5M maximum is
        pinned to a TikTok listing, keeping TikTok the top-grossing
        platform (Section 4.1).
        """
        rng = self._rng
        count = cal.scaled(cal.HIGH_PRICE_COUNT, self._scale, minimum=3)
        candidates = [
            l for l in listings
            if l.platform in (Platform.INSTAGRAM, Platform.TIKTOK, Platform.YOUTUBE)
        ]
        count = min(count, len(candidates))
        if count == 0:
            return 0
        prices = self._price_model.high_prices(count)  # last entry is the max
        chosen = rng.sample(candidates, count)
        tiktok = [l for l in chosen if l.platform is Platform.TIKTOK]
        if tiktok:
            # Move the pinned maximum onto a TikTok listing.
            chosen.remove(tiktok[0])
            chosen.append(tiktok[0])
        for listing, price in zip(chosen, prices):
            listing.price = price
        return count

    def inject_fig3_outlier(self, listings: List[Listing]) -> Optional[Listing]:
        """Mark one FameSwap listing as the $50M Figure-3 exemplar."""
        candidates = [
            l for l in listings
            if l.marketplace == cal.FIG3_OUTLIER_MARKET and not l.excluded_outlier
        ]
        if not candidates:
            return None
        listing = self._rng.choice(candidates)
        listing.price = Money.dollars(cal.FIG3_OUTLIER_PRICE)
        listing.followers_claimed = cal.FIG3_OUTLIER_FOLLOWERS
        listing.excluded_outlier = True
        listing.title = (
            f"{listing.platform.value} account - "
            f"{compact_number(cal.FIG3_OUTLIER_FOLLOWERS)} followers - premium"
        )
        return listing


__all__ = ["ListingFactory"]
