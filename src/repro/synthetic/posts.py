"""Post generation for visible accounts.

Reproduces the Table-2 per-platform post volumes (X timelines dominate
with 165K posts for 814 accounts; YouTube contributes barely half a post
per channel) and the Table-5 scam-post volumes, with ~8 % non-English
posts to exercise the language filter (the paper used CLD2 to keep
English posts only).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.synthetic import calibration as cal
from repro.synthetic.model import Platform, Post, SocialAccount
from repro.synthetic.scamtext import benign_post_text, scam_post_text
from repro.synthetic.vocab import NON_ENGLISH_POSTS
from repro.util.rng import RngTree
from repro.util.simtime import STUDY_START, SimDate


def _post_date(account: SocialAccount, rng: RngTree) -> SimDate:
    """A post date between account creation and the study start."""
    span = account.created.days_until(STUDY_START)
    if span <= 1:
        return account.created
    # Recent-biased: most collected timeline posts are from the last year.
    offset = span - int(span * rng.random() ** 2.5)
    return account.created.plus_days(max(0, min(span, offset)))


class PostFactory:
    """Distributes and generates posts for one platform's population."""

    def __init__(self, rng: RngTree) -> None:
        self._rng = rng
        self._counter = 0

    def _next_id(self) -> str:
        self._counter += 1
        return f"post-{self._counter:08d}"

    def populate_platform(
        self,
        platform: Platform,
        accounts: Sequence[SocialAccount],
        total_posts: int,
        scam_posts: int,
    ) -> None:
        """Attach posts to ``accounts`` hitting the given volume targets."""
        if not accounts:
            return
        scammers = [a for a in accounts if a.is_scammer]
        scam_posts = min(scam_posts, total_posts)
        if scammers:
            self._attach_scam_posts(scammers, scam_posts)
        else:
            scam_posts = 0
        benign_total = total_posts - scam_posts
        self._attach_benign_posts(accounts, benign_total)

    # -- scam posts --------------------------------------------------------

    def _attach_scam_posts(self, scammers: List[SocialAccount], scam_posts: int) -> None:
        """Spread scam posts across scammer accounts, each getting >= 1."""
        rng = self._rng
        if scam_posts < len(scammers):
            # Degenerate at tiny scales: some scammers end up with no scam
            # posts; trim their ground-truth role so truth matches output.
            keep = rng.sample(scammers, scam_posts)
            for account in scammers:
                if account not in keep:
                    account.scam_subtypes = ()
            scammers = keep
        if not scammers:
            return
        weights = [1.0 + 3.0 * rng.random() for _ in scammers]
        counts = rng.partition_count(scam_posts - len(scammers), weights)
        for account, extra in zip(scammers, counts):
            for _ in range(1 + extra):
                subtype = rng.choice(list(account.scam_subtypes))
                account.posts.append(
                    Post(
                        post_id=self._next_id(),
                        account_id=account.account_id,
                        text=scam_post_text(subtype, rng),
                        date=_post_date(account, rng),
                        likes=rng.pareto_int(1, alpha=1.1, cap=500_000),
                        views=rng.pareto_int(10, alpha=0.9, cap=5_000_000),
                        scam_subtype=subtype,
                    )
                )

    # -- benign posts --------------------------------------------------------

    def _attach_benign_posts(self, accounts: Sequence[SocialAccount], benign_total: int) -> None:
        """Spread benign posts with a heavy-tailed per-account volume."""
        rng = self._rng
        if benign_total <= 0:
            return
        weights = [rng.random() ** 2 for _ in accounts]
        counts = rng.partition_count(benign_total, weights)
        for account, n in zip(accounts, counts):
            for _ in range(n):
                non_english = rng.bernoulli(cal.NON_ENGLISH_POST_FRACTION)
                if non_english:
                    text = rng.choice(NON_ENGLISH_POSTS)
                    language = "other"
                else:
                    text = benign_post_text(rng)
                    language = "en"
                account.posts.append(
                    Post(
                        post_id=self._next_id(),
                        account_id=account.account_id,
                        text=text,
                        date=_post_date(account, rng),
                        likes=rng.pareto_int(1, alpha=1.2, cap=200_000),
                        views=rng.pareto_int(5, alpha=1.0, cap=2_000_000),
                        language=language,
                    )
                )


__all__ = ["PostFactory"]
