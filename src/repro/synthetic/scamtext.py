"""Scam and benign post text generation.

Section 6 of the paper clusters 205K posts into 86 topics and identifies
16 scam clusters, grouped into six scam categories (Table 6).  The paper
also observes (Section 4.2) that scam copy is heavily templated — listings
reach 88–100 % textual similarity.  We exploit exactly that property: each
scam subtype here owns a family of templates with shared, distinctive
vocabulary, so a lexical-embedding clusterer recovers the taxonomy the way
the authors' sentence-embedding pipeline did.

The module also exports the *vetting codebook*: the keyword indicators a
human analyst (or our :class:`~repro.analysis.scam_posts.ClusterVetter`)
uses to decide whether a cluster is scam-related and which category it
belongs to.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.synthetic.vocab import BENIGN_POST_TEMPLATES, TOPIC_WORDS
from repro.util.rng import RngTree

# ---------------------------------------------------------------------------
# Slot fillers
# ---------------------------------------------------------------------------

_FILLERS: Dict[str, List[str]] = {
    "coin": ["bitcoin", "ethereum", "solana", "dogecoin", "BNB", "XRP"],
    "amount": ["$500", "$1,000", "$2,500", "$5,000", "$10,000", "$250"],
    "profit": ["double", "triple", "10x", "5x"],
    "days": ["24 hours", "48 hours", "3 days", "one week"],
    "handle": ["@fastpayout", "@cryptodesk", "@tradeadmin", "@helpdesk_pro"],
    "celebrity": ["Elon", "MrBeast", "Ronaldo", "Drake", "Oprah"],
    "brand": ["Apple", "Amazon", "Netflix", "PlayStation", "Gucci"],
    "city": ["Dubai", "Bali", "Paris", "Miami", "Maldives"],
    "car": ["BMW X5", "Tesla Model 3", "Mercedes C300", "Range Rover"],
    "team": ["Lakers", "Chelsea", "Real Madrid", "Yankees", "Arsenal"],
    "course": ["forex masterclass", "dropshipping bootcamp", "IELTS prep"],
    "link": [
        "secure-claim-now.example",
        "verify-login-center.example",
        "bonus-drop.example",
        "fast-giveaway.example",
    ],
    "nft": ["Bored Drop", "Pixel Apes", "Meta Punks", "Moon Birds"],
    "charity": ["flood victims", "sick children", "rescued animals", "orphans"],
    "emoji": ["!!", "!!!", ".", " >>"],
    "number": ["100", "500", "1000", "50"],
}


def _fill(template: str, rng: RngTree) -> str:
    text = template
    for slot, options in _FILLERS.items():
        token = "{" + slot + "}"
        while token in text:
            text = text.replace(token, rng.choice(options), 1)
    return text


# ---------------------------------------------------------------------------
# Scam templates, one family per Table-6 subtype
# ---------------------------------------------------------------------------

SCAM_TEMPLATES: Dict[str, List[str]] = {
    "Crypto Scams": [
        "Turn {amount} into {profit} profit in {days} with our managed {coin} "
        "trading platform, guaranteed returns, message {handle} to start investing now",
        "I made {amount} this week trading {coin} signals, our mining pool pays "
        "daily profit, DM {handle} for the investment plan",
        "Limited slots on the {coin} auto trading bot, {profit} your deposit in "
        "{days}, guaranteed payout, contact {handle} today",
        "Stop working hard, our {coin} investment desk turns {amount} into "
        "{profit} returns every {days}, write {handle} to join",
    ],
    "NFT and Giveaway Scams": [
        "FREE {nft} NFT giveaway{emoji} first {number} wallets get whitelisted, "
        "mint now at {link} before it sells out",
        "Huge {nft} airdrop live, claim your free NFT and {amount} in tokens at "
        "{link}, only {number} spots left",
        "We are giving away {number} {nft} NFTs to celebrate the launch, connect "
        "your wallet at {link} to claim",
    ],
    "Financial Consulting": [
        "Certified financial consultant helping you recover losses and grow "
        "savings, book a free portfolio review, send your details to {handle}",
        "Private wealth advisor with {number} clients, let me restructure your "
        "debt and unlock {amount} credit, consultation via {handle}",
    ],
    "Emotional Exploitation (Charity)": [
        "Please help the {charity}, every {amount} donation saves a life, send "
        "support through {link}, share this post",
        "Urgent appeal for the {charity}, we are {number} donations away from "
        "our goal, give now at {link} and keep them safe",
    ],
    "Through Popular Content/Challenges/Trends": [
        "The {brand} challenge is back{emoji} watch the full video and claim "
        "your reward at {link} before the trend ends",
        "Everyone is doing the new viral filter, unlock the hidden version at "
        "{link}, works on every phone",
        "Leaked clip from the {celebrity} stream is trending, watch it free at "
        "{link} before it gets taken down",
    ],
    "Through Chat Communication": [
        "Your account will be suspended within {days}, verify your login now in "
        "a private message, our support team is waiting, or visit {link}",
        "Security alert: unusual sign-in detected, confirm your password with "
        "our agent in DM to keep your profile, or restore at {link}",
    ],
    "Product Promotion Scams": [
        "Original {brand} stock clearance, {number} pieces only at {amount}, "
        "today only, order in DM before the sale closes",
        "Wholesale {brand} products straight from the factory, pay {amount} and "
        "get free shipping, limited offer, message to order",
    ],
    "Fake Travel Deals": [
        "All inclusive {city} package for just {amount}, flights and 5 star "
        "hotel included, only {number} seats, book via {handle}",
        "Visa on arrival plus round trip to {city} at {amount}, our agency "
        "handles everything, deposit in DM to reserve",
    ],
    "Vehicle Sale/Rental Fraud": [
        "Clean {car} for sale at {amount}, urgent relocation, first deposit "
        "takes it, shipping arranged anywhere, contact {handle}",
        "Rent a {car} from {amount} per day, no deposit needed this week, "
        "reserve now in DM, documents optional",
    ],
    "Sports Betting and Merchandise Scams": [
        "Fixed odds for tonight's {team} game, {profit} your stake guaranteed, "
        "join the VIP ticket at {amount}, message {handle}",
        "Signed {team} jersey giveaway plus sure betting tips daily, pay the "
        "{amount} membership once, winnings guaranteed",
    ],
    "Fake Education-related Offers": [
        "Enroll in our {course} and earn {amount} monthly from home, "
        "certificate included, {number} seats left, register at {link}",
        "Fully funded scholarship plus {course}, no exams needed, processing "
        "fee {amount}, apply today at {link}",
    ],
    "Provocative and Catphishing Lures": [
        "Feeling lonely tonight{emoji} I share my private pictures with "
        "subscribers only, DM me or unlock my page at {link}",
        "I am new in {city} looking for a serious man, message me darling, my "
        "private profile is at {link}",
    ],
    "Public Figures": [
        "Official {celebrity} fan account, {celebrity} is giving back {amount} "
        "to {number} lucky followers, send your wallet to enter",
        "This is {celebrity} speaking to my real fans, I am doubling any "
        "{coin} you send during the charity stream, details at {link}",
    ],
    "Fake Tech Support": [
        "Your {brand} device has been flagged, call our certified support line "
        "or grant remote access via {link} to remove the virus",
        "{brand} help desk here, we noticed a billing error of {amount}, "
        "confirm your card with our agent in DM to get the refund",
    ],
    "Like/Follow/Subscribe Requests": [
        "Follow this page and like the last {number} posts to win {amount}, "
        "winners announced every week, tag your friends",
        "Subscribe, smash the like button and comment done to unlock the "
        "exclusive content, only the first {number} count",
        "Like for like, follow for follow, drop your handle below and we "
        "follow back within {days}",
    ],
    "Greetings and Motivational Phrases": [
        "Good morning family{emoji} stay blessed, stay humble, double tap if "
        "you are grateful today",
        "Keep grinding, your breakthrough is loading, type yes if you believe "
        "and share with someone who needs this",
        "Happy Sunday to all my followers, like this post and blessings will "
        "find you this week",
    ],
}

#: category -> subtypes, mirroring Table 6's two-level taxonomy.
SCAM_CATEGORY_TREE: Dict[str, List[str]] = {
    "Financial Scams": [
        "Crypto Scams",
        "NFT and Giveaway Scams",
        "Financial Consulting",
        "Emotional Exploitation (Charity)",
    ],
    "Phishing": [
        "Through Popular Content/Challenges/Trends",
        "Through Chat Communication",
    ],
    "Product/Service Fraud": [
        "Product Promotion Scams",
        "Fake Travel Deals",
        "Vehicle Sale/Rental Fraud",
        "Sports Betting and Merchandise Scams",
        "Fake Education-related Offers",
    ],
    "Adult Content": ["Provocative and Catphishing Lures"],
    "Impersonation": ["Public Figures", "Fake Tech Support"],
    "Engagement Bait": [
        "Like/Follow/Subscribe Requests",
        "Greetings and Motivational Phrases",
    ],
}

SUBTYPE_TO_CATEGORY: Dict[str, str] = {
    subtype: category
    for category, subtypes in SCAM_CATEGORY_TREE.items()
    for subtype in subtypes
}

# ---------------------------------------------------------------------------
# The vetting codebook (used by the manual-analysis stand-in)
# ---------------------------------------------------------------------------

#: subtype -> indicator keywords.  A cluster whose keyword profile hits one
#: of these entries is labeled scam with that subtype — the programmatic
#: version of the authors' manual 25-post-per-cluster review.
VETTING_CODEBOOK: Dict[str, List[str]] = {
    "Crypto Scams": ["trading", "invest", "profit", "guaranteed", "mining", "deposit", "bitcoin", "coin", "payout", "returns"],
    "NFT and Giveaway Scams": ["nft", "nfts", "airdrop", "mint", "whitelist", "wallet", "giveaway"],
    "Financial Consulting": ["consultant", "advisor", "portfolio", "wealth", "debt", "consultation"],
    "Emotional Exploitation (Charity)": ["donation", "donate", "charity", "appeal", "victims", "orphans", "saves"],
    "Through Popular Content/Challenges/Trends": ["challenge", "viral", "trending", "leaked", "filter", "claim"],
    "Through Chat Communication": ["verify", "suspended", "password", "login", "security", "sign"],
    "Product Promotion Scams": ["clearance", "wholesale", "stock", "shipping", "order", "factory"],
    "Fake Travel Deals": ["flights", "hotel", "package", "visa", "trip", "seats", "inclusive"],
    "Vehicle Sale/Rental Fraud": ["rent", "car", "vehicle", "deposit", "relocation", "documents"],
    "Sports Betting and Merchandise Scams": ["odds", "betting", "stake", "jersey", "vip", "fixed"],
    "Fake Education-related Offers": ["enroll", "scholarship", "certificate", "course", "register", "exams"],
    "Provocative and Catphishing Lures": ["lonely", "private", "darling", "subscribers", "pictures"],
    "Public Figures": ["official", "fan", "fans", "doubling", "lucky", "giving"],
    "Fake Tech Support": ["support", "device", "virus", "remote", "billing", "refund", "desk"],
    "Like/Follow/Subscribe Requests": ["follow", "subscribe", "like", "tag", "smash", "comment"],
    "Greetings and Motivational Phrases": ["blessed", "blessings", "grateful", "grinding", "breakthrough", "morning", "humble", "sunday"],
}

ALL_SUBTYPES: Tuple[str, ...] = tuple(SCAM_TEMPLATES)


def scam_post_text(subtype: str, rng: RngTree) -> str:
    """Generate one scam post of the given subtype."""
    templates = SCAM_TEMPLATES.get(subtype)
    if not templates:
        raise KeyError(f"unknown scam subtype: {subtype}")
    return _fill(rng.choice(templates), rng)


_HASHTAG_SUFFIXES = ("life", "daily", "community", "lover", "gram", "world")


def benign_post_text(rng: RngTree) -> str:
    """Generate one benign English post.

    Real posts carry topic hashtag soups ("#fitness #fitnesslife
    #fitnessdaily"); these make the *topic* the dominant lexical signal,
    so the benign corpus clusters into many topic families — the large
    population of non-scam clusters in the paper's 86-cluster layer.
    """
    template = rng.choice(BENIGN_POST_TEMPLATES)
    topic = rng.choice(TOPIC_WORDS)
    text = template.format(topic=topic)
    n_tags = rng.randint(2, 4)
    suffixes = rng.sample(list(_HASHTAG_SUFFIXES), n_tags)
    tags = [f"#{topic}"] + [f"#{topic}{suffix}" for suffix in suffixes]
    return f"{text} {' '.join(tags)}"


__all__ = [
    "ALL_SUBTYPES",
    "SCAM_CATEGORY_TREE",
    "SCAM_TEMPLATES",
    "SUBTYPE_TO_CATEGORY",
    "VETTING_CODEBOOK",
    "benign_post_text",
    "scam_post_text",
]
