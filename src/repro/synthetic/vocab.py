"""Vocabulary pools for the generators: names, handles, topics, fillers.

These lists only need to be large enough that combinatorial generation
(first+last, adjective+noun+digits) produces tens of thousands of distinct
identifiers without collisions dominating.
"""

from __future__ import annotations

from typing import List

FIRST_NAMES: List[str] = [
    "Alex", "Maria", "John", "Fatima", "Wei", "Aisha", "Carlos", "Yuki",
    "Omar", "Elena", "David", "Priya", "Mohammed", "Sofia", "James", "Chen",
    "Layla", "Daniel", "Amara", "Lucas", "Zara", "Noah", "Ines", "Ethan",
    "Nadia", "Liam", "Hana", "Mason", "Leila", "Oliver", "Mina", "Jacob",
    "Sara", "Aiden", "Rosa", "Gabriel", "Tara", "Samuel", "Nina", "Adam",
    "Iris", "Victor", "Dina", "Felix", "Alma", "Hugo", "Vera", "Ivan",
    "Ana", "Marco", "Lena", "Pavel", "Rita", "Diego", "Emma", "Tariq",
    "Julia", "Kofi", "Asha", "Ravi", "Mei", "Jonas", "Aline", "Kemal",
]

LAST_NAMES: List[str] = [
    "Smith", "Garcia", "Khan", "Chen", "Mueller", "Okafor", "Tanaka",
    "Silva", "Ivanov", "Hassan", "Johnson", "Lopez", "Ahmed", "Wang",
    "Schmidt", "Adeyemi", "Sato", "Santos", "Petrov", "Ali", "Brown",
    "Martinez", "Hussain", "Liu", "Weber", "Eze", "Suzuki", "Costa",
    "Smirnov", "Omar", "Davis", "Rodriguez", "Malik", "Zhang", "Fischer",
    "Nwosu", "Ito", "Oliveira", "Popov", "Farah", "Wilson", "Hernandez",
    "Sheikh", "Huang", "Wagner", "Obi", "Yamamoto", "Pereira", "Volkov",
    "Yusuf", "Taylor", "Gonzalez", "Qureshi", "Zhao", "Becker", "Okeke",
]

HANDLE_ADJECTIVES: List[str] = [
    "viral", "golden", "epic", "prime", "elite", "mega", "ultra", "alpha",
    "turbo", "cosmic", "lucky", "swift", "brave", "silent", "neon",
    "crystal", "shadow", "royal", "hyper", "mystic", "blazing", "frozen",
    "wild", "noble", "rapid", "supreme", "stellar", "atomic", "vivid",
    "boosted", "trending", "famous", "daily", "official", "real", "true",
]

HANDLE_NOUNS: List[str] = [
    "memes", "vibes", "clips", "trends", "deals", "gains", "facts",
    "stories", "moments", "plays", "shots", "looks", "styles", "tips",
    "hacks", "goals", "dreams", "waves", "sparks", "pixels", "frames",
    "reels", "streams", "tracks", "beats", "quotes", "crypto", "nft",
    "luxury", "beauty", "animals", "travel", "fitness", "gaming", "foodie",
    "fashion", "motors", "sneakers", "empire", "nation", "hub", "world",
    "daily", "central", "zone", "spot", "lab", "studio", "club", "squad",
]

TOPIC_WORDS: List[str] = [
    "crypto", "bitcoin", "nft", "meme", "humor", "luxury", "motivation",
    "fashion", "style", "game", "gaming", "review", "howto", "travel",
    "food", "recipe", "fitness", "gym", "beauty", "makeup", "pets",
    "animals", "cars", "motors", "tech", "gadgets", "music", "dance",
    "art", "design", "photo", "nature", "sports", "football", "basket",
    "anime", "movies", "series", "books", "quotes", "business", "finance",
    "stocks", "realestate", "diy", "crafts", "garden", "parenting",
    "health", "yoga", "mindset", "comedy", "pranks", "magic", "science",
    "history", "space", "astro", "ocean", "hiking", "camping", "fishing",
]

FILLER_WORDS: List[str] = [
    "the", "a", "and", "of", "for", "with", "this", "that", "your", "our",
    "new", "best", "great", "amazing", "daily", "top", "real", "original",
    "content", "page", "channel", "account", "profile", "community",
    "followers", "audience", "niche", "brand", "growth", "active",
    "engagement", "organic", "quality", "premium", "exclusive", "trusted",
]

BENIGN_POST_TEMPLATES: List[str] = [
    "Just posted a new {topic} video, check it out and tell me what you think",
    "Today's {topic} inspiration: keep pushing and stay consistent",
    "Behind the scenes of our latest {topic} shoot, more coming this week",
    "Which {topic} trend should we cover next? Drop your ideas below",
    "Throwback to our favorite {topic} moment from last month",
    "New week, new {topic} goals. Who is with me?",
    "Our {topic} community just keeps growing, thank you all for the support",
    "Quick {topic} tip of the day: small steps add up over time",
    "We tried the viral {topic} recipe so you do not have to",
    "Sunday {topic} roundup: the five posts you might have missed",
    "Can not believe how far this {topic} page has come, grateful for every one of you",
    "Here is a closer look at the {topic} setup everyone keeps asking about",
]

NON_ENGLISH_POSTS: List[str] = [
    # Spanish
    "Hola a todos, gracias por el apoyo en esta cuenta, pronto mas contenido nuevo",
    "Nueva publicacion cada semana, siguenos para mas videos y fotos del equipo",
    "El mejor contenido de humor en espanol, comparte con tus amigos",
    # German
    "Vielen Dank an alle Follower, bald kommen neue Videos und mehr Inhalte",
    "Jede Woche neue Beitraege rund um Mode und Stil, bleibt dran",
    "Das beste aus der Welt der Technik, jeden Tag neue Tipps",
    # French
    "Merci a tous pour votre soutien, de nouvelles videos arrivent bientot",
    "Chaque semaine du nouveau contenu sur la mode et le style de vie",
    "Le meilleur de l'humour francais, abonnez vous pour ne rien rater",
    # Portuguese
    "Obrigado a todos pelo apoio, novos videos chegando em breve no canal",
    "Toda semana conteudo novo sobre moda e estilo, fiquem ligados",
    # Italian
    "Grazie a tutti per il supporto, presto nuovi contenuti sul canale",
    "Ogni settimana nuovi video di cucina e ricette della tradizione",
    # Turkish
    "Herkese destek icin tesekkurler, yakinda yeni videolar geliyor",
    "Her hafta yeni icerik, takipte kalin ve arkadaslarinizla paylasin",
]

CITY_WORDS: List[str] = [
    "Lagos", "Karachi", "Istanbul", "Miami", "Austin", "Delhi", "Manila",
    "Nairobi", "Jakarta", "Seoul", "Dhaka", "Cairo", "London", "Toronto",
    "Dubai", "Mumbai", "Lima", "Bogota", "Accra", "Hanoi",
]

SELLER_STORE_WORDS: List[str] = [
    "Store", "Shop", "Hub", "Market", "Traders", "Supply", "Exchange",
    "Dealz", "Accounts", "Media", "Digital", "Socials", "Boost", "Agency",
]


__all__ = [
    "BENIGN_POST_TEMPLATES",
    "CITY_WORDS",
    "FILLER_WORDS",
    "FIRST_NAMES",
    "HANDLE_ADJECTIVES",
    "HANDLE_NOUNS",
    "LAST_NAMES",
    "NON_ENGLISH_POSTS",
    "SELLER_STORE_WORDS",
    "TOPIC_WORDS",
]
