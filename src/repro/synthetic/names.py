"""Identifier generation: handles, display names, seller names, emails.

Handles matter for two analyses: Section 8 observes that *blocked*
accounts disproportionately carry trending tokens (crypto, NFT, beauty,
luxury, animals) in their names, and Table 7 clusters YouTube/X accounts
by shared names.  The generators therefore take an optional ``trend``
token to weave into the handle.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.synthetic.vocab import (
    FIRST_NAMES,
    HANDLE_ADJECTIVES,
    HANDLE_NOUNS,
    LAST_NAMES,
    SELLER_STORE_WORDS,
)
from repro.util.rng import RngTree


class NameForge:
    """Collision-free generation of handles and names from one RNG stream."""

    def __init__(self, rng: RngTree) -> None:
        self._rng = rng
        self._used_handles: Set[str] = set()
        self._used_display_names: Set[str] = set()

    def handle(self, trend: Optional[str] = None) -> str:
        """A unique social-media handle, optionally themed on a trend token."""
        for _ in range(64):
            adjective = self._rng.choice(HANDLE_ADJECTIVES)
            noun = trend if trend else self._rng.choice(HANDLE_NOUNS)
            style = self._rng.randint(0, 3)
            if style == 0:
                candidate = f"{adjective}{noun}"
            elif style == 1:
                candidate = f"{adjective}_{noun}"
            elif style == 2:
                candidate = f"{noun}.{adjective}"
            else:
                candidate = f"{adjective}{noun}{self._rng.randint(1, 9999)}"
            if candidate not in self._used_handles:
                self._used_handles.add(candidate)
                return candidate
        # Exhausted stylistic variants; fall back to an indexed handle.
        candidate = f"user{len(self._used_handles) + 1:07d}"
        self._used_handles.add(candidate)
        return candidate

    def display_name(self, trend: Optional[str] = None) -> str:
        """A *unique* profile display name; trend-themed ones read like fan
        pages.  Uniqueness matters: the Table-7 network analysis clusters
        accounts by shared names, so only deliberate cluster members may
        collide."""
        for attempt in range(64):
            if trend and self._rng.bernoulli(0.7):
                noun = self._rng.choice(HANDLE_NOUNS)
                candidate = f"{trend.title()} {noun.title()}"
            else:
                candidate = f"{self._rng.choice(FIRST_NAMES)} {self._rng.choice(LAST_NAMES)}"
            if attempt > 2:  # name pools are finite; disambiguate politely
                candidate = f"{candidate} {self._rng.randint(2, 999)}"
            if candidate not in self._used_display_names:
                self._used_display_names.add(candidate)
                return candidate
        candidate = f"Account Holder {len(self._used_display_names) + 1}"
        self._used_display_names.add(candidate)
        return candidate

    def person_name(self) -> str:
        return f"{self._rng.choice(FIRST_NAMES)} {self._rng.choice(LAST_NAMES)}"

    def seller_name(self) -> str:
        """Marketplace seller names mix personal names and storefronts."""
        if self._rng.bernoulli(0.5):
            return self.person_name()
        word = self._rng.choice(HANDLE_ADJECTIVES).title()
        store = self._rng.choice(SELLER_STORE_WORDS)
        return f"{word}{store}{self._rng.randint(1, 99)}"

    def email(self, handle: str) -> str:
        domain = self._rng.choice(["inbox.example", "mailbox.example", "post.example"])
        return f"{handle.replace('.', '_')}@{domain}"

    def phone(self) -> str:
        return f"+1{self._rng.randint(2000000000, 9899999999)}"

    def website(self, handle: str) -> str:
        tld = self._rng.choice(["example", "shop.example", "site.example"])
        return f"https://{handle.replace('.', '-').replace('_', '-')}.{tld}"

    def telegram(self) -> str:
        return f"t.me/{self._rng.choice(HANDLE_ADJECTIVES)}{self._rng.choice(HANDLE_NOUNS)}{self._rng.randint(1, 999)}"


__all__ = ["NameForge"]
