"""Country pools for seller origins and profile locations.

Section 4.1: sellers from 138 countries, top five US / Ethiopia /
Pakistan / UK / Turkey.  Section 5: profiles list 140 unique locations,
top five US / India / Pakistan / South Korea / Bangladesh.
"""

from __future__ import annotations

from typing import List

#: A pool of real country names large enough to sample the paper's 138
#: seller countries and 140 profile locations from.
COUNTRIES: List[str] = [
    "United States", "Ethiopia", "Pakistan", "United Kingdom", "Turkey",
    "India", "South Korea", "Bangladesh", "Nigeria", "Indonesia",
    "Brazil", "Mexico", "Philippines", "Vietnam", "Egypt", "Germany",
    "France", "Italy", "Spain", "Poland", "Ukraine", "Russia", "Canada",
    "Australia", "Argentina", "Colombia", "Peru", "Chile", "Venezuela",
    "Morocco", "Algeria", "Tunisia", "Kenya", "Ghana", "South Africa",
    "Tanzania", "Uganda", "Cameroon", "Senegal", "Ivory Coast",
    "Saudi Arabia", "United Arab Emirates", "Qatar", "Kuwait", "Jordan",
    "Lebanon", "Iraq", "Iran", "Israel", "Afghanistan", "Nepal",
    "Sri Lanka", "Myanmar", "Thailand", "Malaysia", "Singapore",
    "Cambodia", "Laos", "China", "Japan", "Taiwan", "Hong Kong",
    "Mongolia", "Kazakhstan", "Uzbekistan", "Azerbaijan", "Georgia",
    "Armenia", "Romania", "Bulgaria", "Greece", "Serbia", "Croatia",
    "Bosnia and Herzegovina", "Albania", "North Macedonia", "Slovenia",
    "Slovakia", "Czech Republic", "Hungary", "Austria", "Switzerland",
    "Belgium", "Netherlands", "Luxembourg", "Denmark", "Sweden", "Norway",
    "Finland", "Iceland", "Ireland", "Portugal", "Estonia", "Latvia",
    "Lithuania", "Belarus", "Moldova", "Cuba", "Dominican Republic",
    "Haiti", "Jamaica", "Trinidad and Tobago", "Guatemala", "Honduras",
    "El Salvador", "Nicaragua", "Costa Rica", "Panama", "Ecuador",
    "Bolivia", "Paraguay", "Uruguay", "Guyana", "Suriname", "Zambia",
    "Zimbabwe", "Mozambique", "Angola", "Namibia", "Botswana", "Malawi",
    "Rwanda", "Burundi", "Somalia", "Sudan", "South Sudan", "Libya",
    "Mauritania", "Mali", "Niger", "Chad", "Burkina Faso", "Benin",
    "Togo", "Liberia", "Sierra Leone", "Guinea", "Gambia", "Gabon",
    "Republic of the Congo", "DR Congo", "Madagascar", "Mauritius",
    "Fiji", "Papua New Guinea", "New Zealand", "Yemen", "Oman",
    "Bahrain", "Syria", "Cyprus", "Malta",
]

#: Seller-country head of the distribution (Section 4.1 order).
SELLER_COUNTRY_HEAD: List[str] = [
    "United States", "Ethiopia", "Pakistan", "United Kingdom", "Turkey",
]

#: Profile-location head of the distribution (Section 5 order).
PROFILE_LOCATION_HEAD: List[str] = [
    "United States", "India", "Pakistan", "South Korea", "Bangladesh",
]


__all__ = ["COUNTRIES", "PROFILE_LOCATION_HEAD", "SELLER_COUNTRY_HEAD"]
