"""The world builder: one seed in, a complete calibrated ecosystem out.

Build order matters and mirrors the real world's causality:

1. sellers register on marketplaces;
2. social media accounts exist (with posts, clusters, scam roles);
3. sellers create listings, a third of which link visible accounts;
4. platforms moderate (ban) some accounts during the study window;
5. underground forums carry their own small posting population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.synthetic import calibration as cal
from repro.synthetic.accounts import AccountFactory
from repro.synthetic.listings import ListingFactory
from repro.synthetic.model import Listing, Platform, Seller, SocialAccount, World
from repro.synthetic.moderation import apply_moderation
from repro.synthetic.names import NameForge
from repro.synthetic.posts import PostFactory
from repro.synthetic.sellers import SellerFactory
from repro.synthetic.underground import UndergroundGenerator
from repro.util.rng import RngTree


@dataclass(frozen=True)
class WorldConfig:
    """Knobs for world generation.

    ``scale`` multiplies every paper-level count: 1.0 regenerates the full
    38K-listing / 205K-post ecosystem; tests use 0.02–0.05.
    """

    seed: int = 2024
    scale: float = 0.1
    iterations: int = cal.COLLECTION_ITERATIONS
    #: Generate the underground forums (always at paper scale).
    include_underground: bool = True

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


class WorldBuilder:
    """Deterministically builds a :class:`~repro.synthetic.model.World`."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        self._rng = RngTree(self.config.seed)

    def build(self) -> World:
        config = self.config
        world = World(seed=config.seed, scale=config.scale, iterations=config.iterations)
        forge = NameForge(self._rng.child("names"))
        self._build_sellers(world, forge)
        accounts_by_platform = self._build_accounts(world, forge)
        self._build_posts(world, accounts_by_platform)
        self._build_listings(world, accounts_by_platform)
        self._moderate(world, accounts_by_platform)
        if config.include_underground:
            world.underground_postings = UndergroundGenerator(
                self._rng.child("underground"), forge
            ).build()
        return world

    # -- stage 1: sellers -----------------------------------------------------

    def _build_sellers(self, world: World, forge: NameForge) -> None:
        factory = SellerFactory(self._rng.child("sellers"), forge)
        self._sellers_by_market: Dict[str, List[Seller]] = {}
        for marketplace, (sellers, _listings) in cal.MARKETPLACE_TABLE1.items():
            if marketplace in cal.SELLER_HIDDEN_MARKETS:
                self._sellers_by_market[marketplace] = []
                continue
            count = cal.scaled(sellers, self.config.scale, minimum=2)
            market_sellers = factory.build_market_sellers(marketplace, count)
            self._sellers_by_market[marketplace] = market_sellers
            for seller in market_sellers:
                world.sellers[seller.seller_id] = seller
        self._seller_factory = factory

    # -- stage 2: accounts ------------------------------------------------------

    def _build_accounts(self, world: World, forge: NameForge) -> Dict[Platform, List[SocialAccount]]:
        factory = AccountFactory(self._rng.child("accounts"), forge)
        by_platform: Dict[Platform, List[SocialAccount]] = {}
        for platform_name, (visible, _posts, _all) in cal.PLATFORM_TABLE2.items():
            platform = Platform.from_name(platform_name)
            count = cal.scaled(visible, self.config.scale, minimum=8)
            population = factory.build_platform_population(platform, count)
            by_platform[platform] = population
            for account in population:
                world.accounts[account.account_id] = account
            # Scam roles (Table 5) before posts are generated.
            scam_accounts, _scam_posts = cal.SCAM_TABLE5[platform_name]
            factory.assign_scam_roles(
                population, cal.scaled(scam_accounts, self.config.scale, minimum=3)
            )
            # Network clusters (Table 7).
            _attr, clusters, clustered, max_size, _median = cal.NETWORK_TABLE7[platform_name]
            factory.build_clusters(
                platform,
                population,
                cal.scaled(clusters, self.config.scale, minimum=1),
                cal.scaled(clustered, self.config.scale, minimum=2),
                max_size,
            )
        return by_platform

    # -- stage 3: posts -----------------------------------------------------------

    def _build_posts(self, world: World, by_platform: Dict[Platform, List[SocialAccount]]) -> None:
        factory = PostFactory(self._rng.child("posts"))
        for platform_name, (_visible, posts, _all) in cal.PLATFORM_TABLE2.items():
            platform = Platform.from_name(platform_name)
            _scam_accounts, scam_posts = cal.SCAM_TABLE5[platform_name]
            factory.populate_platform(
                platform,
                by_platform[platform],
                total_posts=cal.scaled(posts, self.config.scale, minimum=20),
                scam_posts=cal.scaled(scam_posts, self.config.scale, minimum=5),
            )

    # -- stage 4: listings ----------------------------------------------------------

    def _build_listings(self, world: World, by_platform: Dict[Platform, List[SocialAccount]]) -> None:
        rng = self._rng.child("listing-plan")
        factory = ListingFactory(
            self._rng.child("listings"), self.config.scale, self.config.iterations
        )
        # Marketplace quotas (Table 1, scaled).
        quotas = {
            market: cal.scaled(listings, self.config.scale, minimum=3)
            for market, (_s, listings) in cal.MARKETPLACE_TABLE1.items()
        }
        total = sum(quotas.values())
        # Platform slots (Table 2 "All Accounts" column, scaled to match).
        platform_names = list(cal.PLATFORM_TABLE2)
        platform_weights = [float(cal.PLATFORM_TABLE2[p][2]) for p in platform_names]
        slot_counts = rng.partition_count(total, platform_weights)
        slots: List[Platform] = []
        for name, count in zip(platform_names, slot_counts):
            slots.extend([Platform.from_name(name)] * count)
        rng.shuffle(slots)
        # Plan which slots link a visible account (Table 2: every generated
        # account is linked from exactly one listing) and which YouTube
        # slots carry the verified claim — chosen uniformly over positions
        # so no marketplace is systematically favoured.
        linked_account: List[Optional[SocialAccount]] = [None] * total
        verified_slot = [False] * total
        verified_budget = cal.scaled(cal.VERIFIED_LISTINGS, self.config.scale, minimum=2)
        for platform, accounts in by_platform.items():
            positions = [i for i, p in enumerate(slots) if p is platform]
            rng.shuffle(positions)
            pool = rng.shuffled(accounts)
            for position, account in zip(positions, pool):
                linked_account[position] = account
            if platform is Platform.YOUTUBE:
                unlinked = positions[len(pool):]
                for position in unlinked[:verified_budget]:
                    verified_slot[position] = True
        cursor = 0
        for marketplace, quota in quotas.items():
            sellers = self._sellers_by_market[marketplace]
            seller_ids = self._seller_factory.assign_listings(sellers, quota)
            for i in range(quota):
                platform = slots[cursor]
                listing = factory.build_listing(
                    marketplace,
                    platform,
                    seller_ids[i] if seller_ids else None,
                    linked_account[cursor],
                    verified_slot[cursor],
                )
                cursor += 1
                world.listings[listing.listing_id] = listing
        listings = list(world.listings.values())
        factory.inject_high_prices(listings)
        factory.inject_fig3_outlier(listings)

    # -- stage 5: moderation ---------------------------------------------------------

    def _moderate(self, world: World, by_platform: Dict[Platform, List[SocialAccount]]) -> None:
        rng = self._rng.child("moderation")
        for platform, accounts in by_platform.items():
            apply_moderation(rng.child(platform.value), platform, accounts)


__all__ = ["WorldBuilder", "WorldConfig"]
