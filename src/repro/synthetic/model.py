"""Ground-truth entity model of the synthetic world.

These dataclasses are what the *world* knows about itself.  The
measurement pipeline never touches them directly: marketplaces render
listings into HTML, platforms serve accounts through API endpoints, and
the pipeline re-derives its own records from those surfaces.  Ground truth
exists so tests can score the pipeline (e.g. scam-detection precision) and
so calibration can be asserted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.money import Money
from repro.util.simtime import SimDate


class Platform(str, enum.Enum):
    """The five social media platforms studied."""

    X = "X"
    INSTAGRAM = "Instagram"
    FACEBOOK = "Facebook"
    TIKTOK = "TikTok"
    YOUTUBE = "YouTube"

    @classmethod
    def from_name(cls, name: str) -> "Platform":
        for member in cls:
            if member.value.lower() == name.lower():
                return member
        raise ValueError(f"unknown platform: {name}")


class AccountType(str, enum.Enum):
    """Profile types observed in Section 5."""

    STANDARD = "standard"
    BUSINESS = "business"
    VERIFIED = "verified"
    PRIVATE = "private"
    PROTECTED = "protected"


class AccountFate(str, enum.Enum):
    """What happened to a visible account by the end of the study (§8)."""

    ACTIVE = "active"
    BANNED = "banned"  # platform action -> Forbidden-style API answer
    VANISHED = "vanished"  # owner deleted / renamed -> Not Found-style answer


@dataclass
class Post:
    """One social media post."""

    post_id: str
    account_id: str
    text: str
    date: SimDate
    likes: int = 0
    views: int = 0
    language: str = "en"
    #: Ground truth: the scam subtype this post was generated from, or None.
    scam_subtype: Optional[str] = None

    @property
    def is_scam(self) -> bool:
        return self.scam_subtype is not None


@dataclass
class SocialAccount:
    """One social media profile that a listing points at."""

    account_id: str
    platform: Platform
    handle: str
    display_name: str
    description: str
    created: SimDate
    followers: int
    account_type: AccountType = AccountType.STANDARD
    location: Optional[str] = None
    affiliated_category: Optional[str] = None
    email: Optional[str] = None
    phone: Optional[str] = None
    website: Optional[str] = None
    posts: List[Post] = field(default_factory=list)
    #: Ground truth network cluster (Table 7); None = singleton.
    cluster_id: Optional[str] = None
    #: Ground truth: scam subtypes this account posts (Table 5/6).
    scam_subtypes: Tuple[str, ...] = ()
    fate: AccountFate = AccountFate.ACTIVE
    fate_date: Optional[SimDate] = None

    @property
    def is_scammer(self) -> bool:
        return bool(self.scam_subtypes)

    @property
    def is_active(self) -> bool:
        return self.fate is AccountFate.ACTIVE


@dataclass
class Seller:
    """A marketplace seller profile."""

    seller_id: str
    marketplace: str
    name: str
    country: Optional[str] = None
    joined: Optional[SimDate] = None
    rating: float = 0.0


@dataclass
class Monetization:
    """Monetization details some listings advertise (Section 4.1)."""

    monthly_revenue: Money
    income_source: Optional[str] = None


@dataclass
class Listing:
    """One account-for-sale offer on a public marketplace."""

    listing_id: str
    marketplace: str
    seller_id: Optional[str]  # None on markets that hide sellers
    platform: Platform
    title: str
    price: Money
    category: Optional[str] = None
    description: Optional[str] = None
    description_strategy: Optional[str] = None
    followers_claimed: Optional[int] = None
    verified_claim: bool = False
    monetization: Optional[Monetization] = None
    #: Link to the actual profile; None for the 71% of listings that do
    #: not expose the handle (Table 2's visible/all split).
    visible_account_id: Optional[str] = None
    #: Index of the collection iteration at which the listing appeared.
    listed_iteration: int = 0
    #: Iteration at which it went offline (sold/withdrawn); None = active.
    delisted_iteration: Optional[int] = None
    #: Fig-3-style absurd-price outlier, excluded from anatomy aggregates.
    excluded_outlier: bool = False

    def active_at(self, iteration: int) -> bool:
        """Is the listing online at the given collection iteration?"""
        if iteration < self.listed_iteration:
            return False
        return self.delisted_iteration is None or iteration < self.delisted_iteration


@dataclass
class UndergroundPosting:
    """One forum posting on an underground (Tor) marketplace."""

    posting_id: str
    market: str
    author: str
    title: str
    body: str
    platform: Platform
    date: Optional[SimDate] = None
    price: Optional[Money] = None
    quantity: int = 1
    replies: int = 0
    #: Ground truth: id of the reuse group this posting's text belongs to.
    reuse_group: Optional[str] = None


@dataclass
class World:
    """The complete generated ecosystem plus its ground truth."""

    seed: int
    scale: float
    iterations: int
    sellers: Dict[str, Seller] = field(default_factory=dict)
    listings: Dict[str, Listing] = field(default_factory=dict)
    accounts: Dict[str, SocialAccount] = field(default_factory=dict)
    underground_postings: List[UndergroundPosting] = field(default_factory=list)

    # -- convenience views ---------------------------------------------------

    def listings_for_market(self, marketplace: str) -> List[Listing]:
        return [l for l in self.listings.values() if l.marketplace == marketplace]

    def visible_accounts(self) -> List[SocialAccount]:
        linked_ids = {
            l.visible_account_id
            for l in self.listings.values()
            if l.visible_account_id is not None
        }
        return [self.accounts[aid] for aid in sorted(linked_ids)]

    def accounts_on(self, platform: Platform) -> List[SocialAccount]:
        return [a for a in self.accounts.values() if a.platform is platform]

    def all_posts(self) -> List[Post]:
        posts: List[Post] = []
        for account in self.accounts.values():
            posts.extend(account.posts)
        return posts

    @property
    def marketplaces(self) -> List[str]:
        return sorted({l.marketplace for l in self.listings.values()})


__all__ = [
    "AccountFate",
    "AccountType",
    "Listing",
    "Monetization",
    "Platform",
    "Post",
    "Seller",
    "SocialAccount",
    "UndergroundPosting",
    "World",
]
