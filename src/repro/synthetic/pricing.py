"""Listing price generation (Section 4.1).

The advertised-price distribution has three parts:

* a log-normal body around the per-platform medians (Facebook $14 …
  YouTube $759), truncated below $20K;
* a high-price block (345 listings above $20K at paper scale; median
  $45K, max $5M) that contributes $38M of the $64.2M total;
* the Figure-3 exemplar: a single ~$50M FameSwap listing, flagged as an
  excluded outlier so aggregate statistics match the paper's totals.
"""

from __future__ import annotations

from typing import List

from repro.synthetic import calibration as cal
from repro.util.money import Money
from repro.util.rng import RngTree


class PriceModel:
    """Samples prices for a platform's listings."""

    def __init__(self, rng: RngTree) -> None:
        self._rng = rng

    def body_price(self, platform: str) -> Money:
        """A below-threshold price around the platform's median."""
        median_price = cal.PRICE_MEDIANS[platform]
        sigma = cal.PRICE_SIGMA[platform]
        value = self._rng.lognormal(median_price, sigma)
        value = min(value, cal.HIGH_PRICE_THRESHOLD - 1)
        return Money.dollars(max(1.0, round(value, 0)))

    def high_prices(self, count: int) -> List[Money]:
        """The >$20K block: median $45K, one listing pinned at the $5M max."""
        if count <= 0:
            return []
        prices: List[Money] = []
        for _ in range(count):
            value = self._rng.lognormal(cal.HIGH_PRICE_MEDIAN, 0.9)
            value = max(cal.HIGH_PRICE_THRESHOLD + 1, min(value, cal.HIGH_PRICE_MAX))
            prices.append(Money.dollars(round(value, 0)))
        prices[-1] = Money.dollars(cal.HIGH_PRICE_MAX)
        return prices

    def monetization_revenue(self) -> Money:
        """Monthly revenue for monetized listings ($1–$922, median $136)."""
        low, high = cal.MONETIZED_REVENUE_RANGE
        value = self._rng.lognormal(cal.MONETIZED_REVENUE_MEDIAN, 0.9)
        return Money.dollars(round(max(low, min(high, value)), 0))


__all__ = ["PriceModel"]
