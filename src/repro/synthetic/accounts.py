"""Generation of the visible social media accounts.

Reproduces the Section 5 marginals: creation-date mixture (Figure 4),
follower distributions (Table 4), locations, affiliated categories,
account types; plus the ground truth for the Section 6 scam roles
(Table 5), Section 7 attribute clusters (Table 7), and Section 8 fates
(Table 8).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.synthetic import calibration as cal
from repro.synthetic.categories import affiliated_categories
from repro.synthetic.countries import COUNTRIES, PROFILE_LOCATION_HEAD
from repro.synthetic.model import AccountFate, AccountType, Platform, SocialAccount
from repro.synthetic.names import NameForge
from repro.synthetic.scamtext import SCAM_CATEGORY_TREE
from repro.util.rng import RngTree
from repro.util.simtime import SimDate

#: Profile-description templates; cluster members share one instance
#: (Figure 5 shows such shared boilerplate descriptions).
_PROFILE_BIO_TEMPLATES = [
    "Daily {topic} content for true fans, follow for more",
    "The home of {topic}, new posts every day, DM for promos",
    "{topic} page run with love, turn on notifications",
    "Best {topic} community online, join {count} followers",
    "Official {topic} hub, business inquiries in bio",
]

#: Figure-5-style descriptions used for coordinated cluster accounts.
_CLUSTER_BIO_TEMPLATES = [
    "We harvest {count} accounts each with 100K followers ready to go, "
    "contact us on telegram {telegram} for bulk orders",
    "Free NFT giveaways every week for our community, join the drop and "
    "invite friends, links in pinned post",
    "High quality profiles for your business or promotion, established "
    "pages with real audience, message {telegram}",
]

_TOPICS = [
    "memes", "luxury", "fashion", "gaming", "travel", "food", "fitness",
    "beauty", "pets", "crypto", "cars", "music", "art", "sports", "tech",
]


def _creation_date(platform: Platform, rng: RngTree) -> SimDate:
    """Sample a creation date per the Figure-4 mixture."""
    floor_year = cal.CREATION_YEAR_FLOOR[platform.value]
    if rng.bernoulli(cal.CREATION_PRE2020_FRACTION):
        if platform is Platform.YOUTUBE and rng.bernoulli(
            cal.YOUTUBE_2006_2010_FRACTION / cal.CREATION_PRE2020_FRACTION
        ):
            year = rng.randint(2006, 2010)
        else:
            year = rng.randint(max(floor_year, 2011 if platform is Platform.YOUTUBE else floor_year), 2019)
        return SimDate.of(year, rng.randint(1, 12), rng.randint(1, 28))
    # Recent: the 3.5-year window ending at the study (Dec 2020 – May 2024).
    start = SimDate.of(2020, 12, 1)
    end = SimDate.of(2024, 5, 31)
    offset = rng.randint(0, start.days_until(end))
    return start.plus_days(offset)


def _followers(platform: Platform, rng: RngTree) -> int:
    """Sample follower counts per the Table-4 per-platform shape."""
    minimum, med, maximum = cal.VISIBLE_FOLLOWERS[platform.value]
    if med <= 1:
        # TikTok: median 1 follower — fresh farm accounts.  Mostly 0-3
        # followers with a thin tail up to the observed max.
        if rng.bernoulli(0.85):
            return rng.randint(0, 3)
        return min(maximum, rng.pareto_int(4, alpha=0.9, cap=maximum))
    sigma = min(2.0, math.log(max(maximum / max(med, 1), 2.0)) / 3.0)
    value = int(rng.lognormal(med, sigma))
    return max(minimum, min(maximum, value))


def _scam_subtype_weights() -> Tuple[List[str], List[float]]:
    subtypes: List[str] = []
    weights: List[float] = []
    for category in SCAM_CATEGORY_TREE:
        for subtype in SCAM_CATEGORY_TREE[category]:
            accounts, _posts = _taxonomy_entry(category, subtype)
            subtypes.append(subtype)
            weights.append(float(accounts))
    return subtypes, weights


def _taxonomy_entry(category: str, subtype: str) -> Tuple[int, int]:
    return cal.SCAM_TAXONOMY[category][subtype]


class AccountFactory:
    """Builds the visible-account population for one platform."""

    def __init__(self, rng: RngTree, forge: NameForge) -> None:
        self._rng = rng
        self._forge = forge
        self._affiliated = affiliated_categories(cal.AFFILIATED_CATEGORY_UNIQUE)
        self._subtypes, self._subtype_weights = _scam_subtype_weights()
        self._counter = 0

    # -- single account -------------------------------------------------------

    def _next_id(self, platform: Platform) -> str:
        self._counter += 1
        return f"{platform.value.lower()}-{self._counter:06d}"

    def build_account(self, platform: Platform, trend: Optional[str]) -> SocialAccount:
        rng = self._rng
        handle = self._forge.handle(trend)
        topic = rng.choice(_TOPICS)
        # The trailing handle keeps ordinary bios unique so only deliberate
        # cluster members share a biography (Table 7 clusters on it).
        bio = rng.choice(_PROFILE_BIO_TEMPLATES).format(
            topic=topic, count=f"{rng.randint(1, 900)}K"
        ) + f" | @{handle}"
        account = SocialAccount(
            account_id=self._next_id(platform),
            platform=platform,
            handle=handle,
            display_name=self._forge.display_name(trend),
            description=bio,
            created=_creation_date(platform, rng),
            followers=_followers(platform, rng),
        )
        if rng.bernoulli(0.35):
            account.email = self._forge.email(handle)
        if rng.bernoulli(0.15):
            account.phone = self._forge.phone()
        if rng.bernoulli(0.2):
            account.website = self._forge.website(handle)
        return account

    # -- population ------------------------------------------------------------

    def build_platform_population(self, platform: Platform, count: int) -> List[SocialAccount]:
        """Generate ``count`` visible accounts with all Section-5 attributes."""
        rng = self._rng
        accounts: List[SocialAccount] = []
        trend_fraction = 0.22  # share of accounts carrying a trending token
        for _ in range(count):
            trend = (
                rng.choice(list(cal.TRENDING_BLOCK_TOKENS))
                if rng.bernoulli(trend_fraction)
                else None
            )
            accounts.append(self.build_account(platform, trend))
        if not accounts:
            return accounts
        self._pin_follower_extremes(platform, accounts)
        self._assign_locations(accounts)
        self._assign_affiliated_categories(accounts)
        self._assign_account_types(accounts)
        return accounts

    def _pin_follower_extremes(self, platform: Platform, accounts: List[SocialAccount]) -> None:
        """Force the Table-4 min and max follower values to exist."""
        minimum, _med, maximum = cal.VISIBLE_FOLLOWERS[platform.value]
        accounts[0].followers = minimum
        if len(accounts) > 1:
            accounts[-1].followers = maximum

    def _assign_locations(self, accounts: List[SocialAccount]) -> None:
        """~28% of visible profiles list a location (Section 5)."""
        rng = self._rng
        fraction = cal.PROFILE_LOCATION_COUNT / cal.TOTAL_VISIBLE
        head = PROFILE_LOCATION_HEAD
        head_weights = [float(c) for _n, c in cal.PROFILE_TOP_LOCATIONS]
        tail = [c for c in COUNTRIES if c not in head][: cal.PROFILE_LOCATION_UNIQUE - len(head)]
        head_share = sum(head_weights) / cal.PROFILE_LOCATION_COUNT
        for account in accounts:
            if not rng.bernoulli(fraction):
                continue
            if rng.bernoulli(head_share):
                account.location = rng.weighted_choice(head, head_weights)
            else:
                account.location = tail[rng.zipf_index(len(tail), s=0.7)]

    def _assign_affiliated_categories(self, accounts: List[SocialAccount]) -> None:
        """~10% of profiles carry a platform-assigned category (Section 5)."""
        rng = self._rng
        fraction = cal.AFFILIATED_CATEGORY_ACCOUNTS / cal.TOTAL_VISIBLE
        head = [name for name, _c in cal.AFFILIATED_TOP_CATEGORIES]
        head_weights = [float(c) for _n, c in cal.AFFILIATED_TOP_CATEGORIES]
        tail = [c for c in self._affiliated if c not in head]
        head_share = sum(head_weights) / cal.AFFILIATED_CATEGORY_ACCOUNTS
        for account in accounts:
            if not rng.bernoulli(fraction):
                continue
            if rng.bernoulli(head_share):
                account.affiliated_category = rng.weighted_choice(head, head_weights)
            else:
                account.affiliated_category = tail[rng.zipf_index(len(tail), s=0.7)]

    def _assign_account_types(self, accounts: List[SocialAccount]) -> None:
        """Business / verified / private / protected minorities (Section 5)."""
        rng = self._rng
        type_fractions = {
            AccountType.BUSINESS: cal.ACCOUNT_TYPE_COUNTS["business"] / cal.TOTAL_VISIBLE,
            AccountType.VERIFIED: cal.ACCOUNT_TYPE_COUNTS["verified"] / cal.TOTAL_VISIBLE,
            AccountType.PRIVATE: cal.ACCOUNT_TYPE_COUNTS["private"] / cal.TOTAL_VISIBLE,
            AccountType.PROTECTED: cal.ACCOUNT_TYPE_COUNTS["protected"] / cal.TOTAL_VISIBLE,
        }
        for account in accounts:
            for account_type, fraction in type_fractions.items():
                if rng.bernoulli(fraction):
                    account.account_type = account_type
                    break

    # -- scam roles ---------------------------------------------------------------

    def assign_scam_roles(self, accounts: Sequence[SocialAccount], scam_count: int) -> None:
        """Mark ``scam_count`` accounts as scammers with Table-6 subtypes."""
        rng = self._rng
        if scam_count > len(accounts):
            scam_count = len(accounts)
        chosen = rng.sample(list(accounts), scam_count)
        for account in chosen:
            n_subtypes = rng.weighted_choice([1, 2, 3], [0.65, 0.25, 0.10])
            subtypes: List[str] = []
            for _ in range(n_subtypes):
                subtype = rng.weighted_choice(self._subtypes, self._subtype_weights)
                if subtype not in subtypes:
                    subtypes.append(subtype)
            account.scam_subtypes = tuple(subtypes)

    # -- network clusters (Table 7) -------------------------------------------------

    def build_clusters(self, platform: Platform, accounts: Sequence[SocialAccount],
                       cluster_count: int, clustered_accounts: int,
                       max_size: int) -> int:
        """Group accounts into attribute-sharing clusters per Table 7.

        Returns the number of clusters actually formed.  Cluster members
        share the platform's clustering attribute: TikTok description,
        YouTube name, Instagram biography, Facebook contact info, X
        name/description.
        """
        rng = self._rng
        pool = [a for a in accounts if a.cluster_id is None]
        if cluster_count <= 0 or clustered_accounts < 2 * cluster_count or len(pool) < 2:
            return 0
        sizes = self._cluster_sizes(cluster_count, clustered_accounts, max_size)
        formed = 0
        for size in sizes:
            if len(pool) < size:
                break
            members = [pool.pop(rng.randint(0, len(pool) - 1)) for _ in range(size)]
            cluster_id = f"{platform.value.lower()}-cluster-{formed + 1:03d}"
            self._share_attributes(platform, members, cluster_id)
            formed += 1
        return formed

    def _cluster_sizes(self, cluster_count: int, total: int, max_size: int) -> List[int]:
        """Mostly-2 sizes with one max-size cluster (Table 7: median 2)."""
        sizes = [2] * cluster_count
        remainder = total - 2 * cluster_count
        if remainder > 0 and cluster_count > 0:
            grow = min(remainder, max_size - 2)
            sizes[0] += grow
            remainder -= grow
            index = 1
            while remainder > 0 and index < cluster_count:
                grow = min(remainder, max(0, max_size - 2), 2)
                if grow == 0:
                    break
                sizes[index] += grow
                remainder -= grow
                index += 1
        return sizes

    def _share_attributes(self, platform: Platform, members: List[SocialAccount],
                          cluster_id: str) -> None:
        rng = self._rng
        telegram = self._forge.telegram()
        shared_bio = rng.choice(_CLUSTER_BIO_TEMPLATES).format(
            count=f"{rng.randint(1, 5)}K", telegram=telegram
        )
        shared_name = self._forge.display_name()
        shared_email = self._forge.email(members[0].handle)
        shared_phone = self._forge.phone()
        shared_site = self._forge.website(members[0].handle)
        x_shares_name = rng.bernoulli(0.5)  # per-cluster choice for X
        for member in members:
            member.cluster_id = cluster_id
            if platform in (Platform.TIKTOK, Platform.INSTAGRAM):
                member.description = shared_bio
            elif platform is Platform.YOUTUBE:
                member.display_name = shared_name
            elif platform is Platform.FACEBOOK:
                choice = rng.randint(0, 2)
                member.email = shared_email
                if choice >= 1:
                    member.phone = shared_phone
                if choice == 2:
                    member.website = shared_site
            else:  # X clusters on name/description (whole cluster shares one)
                if x_shares_name:
                    member.display_name = shared_name
                else:
                    member.description = shared_bio


__all__ = ["AccountFactory"]
