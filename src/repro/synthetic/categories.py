"""Category taxonomies.

Two distinct taxonomies appear in the paper:

* **Listing categories** (Section 4.1): 212 unique categories sellers tag
  their offers with, top-5 Humor/Memes, Luxury/Motivation, Fashion/Style,
  Reviews/How-to, Games.
* **Affiliated platform categories** (Section 5): 288 platform-assigned
  profile categories, top-5 Brand and Business, Entities, Digital Assets &
  Crypto, Interests and Hobbies, Events.

Both are generated deterministically: a fixed head (the paper's top
entries) plus a combinatorial tail of plausible "Topic/Subtopic" labels.
"""

from __future__ import annotations

from typing import List

_LISTING_HEAD: List[str] = [
    "Humor/Memes",
    "Luxury/Motivation",
    "Fashion/Style",
    "Reviews/How-to",
    "Games",
]

_AFFILIATED_HEAD: List[str] = [
    "Brand and Business",
    "Entities",
    "Digital Assets & Crypto",
    "Interests and Hobbies",
    "Events",
]

_TOPIC_POOL: List[str] = [
    "Travel", "Food", "Fitness", "Beauty", "Pets", "Animals", "Cars",
    "Tech", "Gadgets", "Music", "Dance", "Art", "Design", "Photography",
    "Nature", "Sports", "Football", "Basketball", "Anime", "Movies",
    "Series", "Books", "Quotes", "Business", "Finance", "Stocks",
    "Real Estate", "DIY", "Crafts", "Gardening", "Parenting", "Health",
    "Yoga", "Mindset", "Comedy", "Pranks", "Magic", "Science", "History",
    "Space", "Ocean", "Hiking", "Camping", "Fishing", "Cooking",
    "Baking", "Streetwear", "Sneakers", "Watches", "Jewelry", "Makeup",
    "Skincare", "Hair", "Nails", "Weddings", "Babies", "Students",
    "Careers", "Coding", "AI", "Crypto", "NFT", "Trading", "Betting",
    "Esports", "Retro", "Vintage", "Minimalism", "Motivation", "Memes",
]

_QUALIFIER_POOL: List[str] = [
    "Daily", "Tips", "Facts", "Clips", "Shorts", "Reviews", "News",
    "Deals", "Lifestyle", "Community", "Fanpage", "Hub", "World",
    "Central", "Nation", "Zone",
]


def _tail(pool_a: List[str], pool_b: List[str], count: int) -> List[str]:
    """Deterministic 'A/B' combinations, in a fixed interleaved order."""
    labels: List[str] = []
    for i in range(count):
        topic = pool_a[i % len(pool_a)]
        qualifier = pool_b[(i // len(pool_a) + i) % len(pool_b)]
        labels.append(f"{topic}/{qualifier}")
    seen = set()
    unique: List[str] = []
    for label in labels:
        if label not in seen:
            seen.add(label)
            unique.append(label)
    return unique


def listing_categories(count: int = 212) -> List[str]:
    """The listing-category taxonomy: paper head + generated tail.

    >>> cats = listing_categories()
    >>> len(cats)
    212
    >>> cats[0]
    'Humor/Memes'
    """
    if count < len(_LISTING_HEAD):
        return _LISTING_HEAD[:count]
    tail_needed = count - len(_LISTING_HEAD)
    tail = _tail(_TOPIC_POOL, _QUALIFIER_POOL, tail_needed * 2)
    tail = [c for c in tail if c not in _LISTING_HEAD][:tail_needed]
    if len(tail) < tail_needed:
        raise ValueError(f"cannot generate {count} unique listing categories")
    return _LISTING_HEAD + tail


def affiliated_categories(count: int = 288) -> List[str]:
    """The platform-affiliated taxonomy: paper head + generated tail."""
    if count < len(_AFFILIATED_HEAD):
        return _AFFILIATED_HEAD[:count]
    tail_needed = count - len(_AFFILIATED_HEAD)
    tail = _tail(_QUALIFIER_POOL, _TOPIC_POOL, tail_needed * 2)
    tail = [c for c in tail if c not in _AFFILIATED_HEAD][:tail_needed]
    if len(tail) < tail_needed:
        raise ValueError(f"cannot generate {count} unique affiliated categories")
    return _AFFILIATED_HEAD + tail


__all__ = ["affiliated_categories", "listing_categories"]
