"""Underground-forum posting generation (Section 4.2).

The six active Tor markets and their 65 postings are generated at paper
scale regardless of world scale — the underground dataset was collected
manually and is tiny.  The generator reproduces the structural findings:

* per-market posting volumes and platform specialities (Nexus largest,
  We The North TikTok-only, Kerberos bulk TikTok/X);
* post bodies of 14–123 words with contact handles and delivery blurbs;
* text-reuse groups: 12 of ~42 TikTok posts near-identical (88–100 %
  similarity) traced to 3 authors, smaller reuse on Instagram/X/YouTube;
* two seller usernames active on more than one market.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.synthetic import calibration as cal
from repro.synthetic.model import Platform, UndergroundPosting
from repro.synthetic.names import NameForge
from repro.util.money import Money
from repro.util.rng import RngTree
from repro.util.simtime import SimDate

#: Per-market platform split, chosen to satisfy Section 4.2's narrative
#: (sums to the 65 postings; TikTok ≈ 42, Instagram 13, X ≈ 3, YouTube ≈ 7).
MARKET_PLATFORM_SPLIT: Dict[str, Dict[str, int]] = {
    "Nexus": {"TikTok": 23, "Instagram": 12, "X": 2},
    "We The North": {"TikTok": 15},
    "Dark Matter": {"YouTube": 2, "TikTok": 2, "X": 1},
    "Torzon Market": {"Instagram": 1, "TikTok": 1, "YouTube": 2},
    "Kerberos": {"TikTok": 1, "X": 1},
    "Black Pyramid": {"YouTube": 2},
}

#: Sentence pools the generic (non-reused) bodies are composed from.
#: Sampling 3–6 sentences out of many keeps ordinary postings well below
#: the 88 % similarity threshold, so only the deliberate reuse groups
#: trip the Section-4.2 analysis.
_OPENERS = [
    "Selling {quality} {platform} account{plural} with {followers} followers.",
    "{platform} account{plural} up for grabs, {followers} followers, {aging}.",
    "Fresh stock of {platform} profiles, {followers} followers each.",
    "Offloading my {quality} {platform} page{plural}, audience of {followers}.",
    "Premium {platform} handle{plural} available now, {followers} strong.",
    "Listing one {quality} {platform} profile, around {followers} followers.",
]
_MIDDLES = [
    "The audience is {content} and engagement has stayed steady for months.",
    "Everything was {aging} and warmed up slowly to avoid flags.",
    "Comes {content}, analytics screenshots on request before any deal.",
    "Login works from clean sessions, recovery details included in the handover.",
    "The niche converts well for promos, previous campaigns available as proof.",
    "Region mix is mostly western traffic, useful for affiliate work.",
    "No strikes, no restrictions, the profile has never been reported.",
    "You get the original mail plus cookies for a painless takeover.",
]
_CLOSERS = [
    "Payment in BTC or XMR only, deal goes through {telegram}.",
    "Contact {telegram} for escrow details, delivery within a day of payment.",
    "Bulk discount for ten or more, message {telegram} to reserve yours.",
    "Bump this thread for updates, testimonials from past buyers below.",
    "No refunds once credentials are delivered, not liable for lost logins.",
    "Guarantee covers the first login only, act fast before the price goes up.",
]

_QUALITY = ["aged", "organic", "high quality", "PVA verified", "hand registered"]
_AGING = ["registered in 2019", "over two years old", "aged accounts", "fresh 2024 registrations"]
_CONTENT = ["empty and ready to brand", "populated with niche content", "posted on weekly"]
_FOLLOWERS = ["1k", "5k", "10k", "25k", "50k", "100k"]


def _perturb(rng: RngTree, body: str, similarity: float) -> str:
    """Produce a variant of ``body`` with roughly the target similarity."""
    tokens = body.split()
    n = len(tokens)
    changes = max(0, round(n * (1.0 - similarity)))
    for _ in range(changes):
        index = rng.randint(0, n - 1)
        tokens[index] = rng.choice(["fast", "cheap", "trusted", "instant", "secure"])
    return " ".join(tokens)


class UndergroundGenerator:
    """Builds the 65 underground postings with their reuse structure."""

    def __init__(self, rng: RngTree, forge: NameForge) -> None:
        self._rng = rng
        self._forge = forge
        self._counter = 0

    def _next_id(self, market: str) -> str:
        self._counter += 1
        slug = market.lower().replace(" ", "-")
        return f"ug-{slug}-{self._counter:03d}"

    def _author_pool(self) -> Dict[str, List[str]]:
        """Per-market author names honouring Section 4.2 seller counts,
        with two usernames shared across markets."""
        rng = self._rng
        pool: Dict[str, List[str]] = {}
        used: set = set()
        for market, (_posts, sellers, _platforms) in cal.UNDERGROUND_MARKETS.items():
            names: List[str] = []
            while len(names) < sellers:
                name = (
                    f"{rng.choice(['dark', 'ghost', 'shadow', 'zero', 'night'])}"
                    f"{rng.choice(['vendor', 'dealer', 'plug', 'shop', 'trader'])}"
                    f"{rng.randint(10, 99)}"
                )
                # Accidental cross-market collisions would inflate the
                # Section-4.2 cross-market seller count past the two we
                # install deliberately below.
                if name not in used:
                    used.add(name)
                    names.append(name)
            pool[market] = names
        # Cross-market identities: reuse a Nexus author on Torzon and a
        # Kerberos author on Dark Matter (Section 4.2 found two).
        if pool.get("Nexus") and pool.get("Torzon Market"):
            pool["Torzon Market"][0] = pool["Nexus"][0]
        if pool.get("Kerberos") and pool.get("Dark Matter"):
            pool["Dark Matter"][0] = pool["Kerberos"][0]
        return pool

    def _body(self, platform: Platform, quantity: int) -> str:
        rng = self._rng
        sentences = [rng.choice(_OPENERS)]
        sentences.extend(rng.sample(_MIDDLES, rng.randint(1, 4)))
        sentences.append(rng.choice(_CLOSERS))
        return " ".join(sentences).format(
            quality=rng.choice(_QUALITY),
            platform=platform.value,
            plural="s" if quantity > 1 else "",
            followers=rng.choice(_FOLLOWERS),
            aging=rng.choice(_AGING),
            content=rng.choice(_CONTENT),
            telegram=self._forge.telegram(),
        )

    def build(self) -> List[UndergroundPosting]:
        rng = self._rng
        authors = self._author_pool()
        self._shared_identity = authors["Nexus"][0] if authors.get("Nexus") else None
        postings: List[UndergroundPosting] = []
        for market, split in MARKET_PLATFORM_SPLIT.items():
            market_authors = authors[market]
            for platform_name, count in split.items():
                platform = Platform.from_name(platform_name)
                for _ in range(count):
                    author = rng.choice(market_authors)
                    quantity = 1
                    if market == "Kerberos":
                        # Two Kerberos posts advertise 51 accounts in bulk.
                        quantity = cal.KERBEROS_BULK_ACCOUNTS // 2
                    price = (
                        Money.dollars(round(rng.lognormal(60, 0.8)))
                        if rng.bernoulli(0.7)
                        else None
                    )
                    date = (
                        SimDate.of(2024, rng.randint(2, 6), rng.randint(1, 28))
                        if rng.bernoulli(0.8)  # some forums omit dates (§3.2)
                        else None
                    )
                    postings.append(
                        UndergroundPosting(
                            posting_id=self._next_id(market),
                            market=market,
                            author=author,
                            title=f"[{platform.value}] accounts for sale - {rng.choice(_QUALITY)}",
                            body=self._body(platform, quantity),
                            platform=platform,
                            date=date,
                            price=price,
                            quantity=quantity,
                            replies=rng.randint(0, 14),
                        )
                    )
        self._install_reuse_groups(postings)
        self._install_second_cross_identity(postings, authors)
        return postings

    def _install_second_cross_identity(
        self, postings: List[UndergroundPosting], authors: Dict[str, List[str]]
    ) -> None:
        """Guarantee the second cross-market username (Kerberos <-> Dark
        Matter); pool sharing alone does not ensure both markets actually
        post under it."""
        kerberos = authors.get("Kerberos")
        if not kerberos:
            return
        shared = kerberos[0]
        for market in ("Kerberos", "Dark Matter"):
            market_posts = [p for p in postings if p.market == market]
            if market_posts and all(p.author != shared for p in market_posts):
                market_posts[0].author = shared

    # -- text reuse -----------------------------------------------------------

    def _install_reuse_groups(self, postings: List[UndergroundPosting]) -> None:
        """Overwrite selected bodies with near-duplicates (Section 4.2)."""
        rng = self._rng

        def by(platform: Platform, market: Optional[str] = None) -> List[UndergroundPosting]:
            return [
                p for p in postings
                if p.platform is platform and (market is None or p.market == market)
                and p.reuse_group is None
            ]

        # TikTok on Nexus: a same-author identical pair (100%), a 7-post
        # 3-seller group (~98%), and a cross-market 3-post group — 12 posts
        # from 3 distinct base authors.
        nexus_tt = by(Platform.TIKTOK, "Nexus")
        self._make_group("tt-identical-pair", nexus_tt[:2], similarity=1.0, same_author=True)
        self._make_group("tt-seven-post", by(Platform.TIKTOK, "Nexus")[:7], similarity=0.98,
                         author_count=3)
        # Cross-market group: keep per-market authors, but post the Nexus
        # and Torzon copies under the shared identity (the username that
        # exists in both markets' seller pools) — Section 4.2's "two posts
        # by the same seller on separate platforms".
        cross = by(Platform.TIKTOK, "Nexus")[:1] + by(Platform.TIKTOK, "We The North")[:1] \
            + by(Platform.TIKTOK, "Torzon Market")[:1]
        self._make_group("tt-cross-market", cross, similarity=0.95)
        if self._shared_identity is not None:
            for posting in cross:
                if posting.market in ("Nexus", "Torzon Market"):
                    posting.author = self._shared_identity
        # Instagram 2-post group, X pairs with a TikTok body, YouTube 3-post.
        self._make_group("ig-pair", by(Platform.INSTAGRAM, "Nexus")[:2], similarity=0.92)
        self._make_group("yt-trio", by(Platform.YOUTUBE)[:3], similarity=0.90)
        x_posts = by(Platform.X)[:1]
        if x_posts and postings:
            donor = next(p for p in postings if p.reuse_group == "tt-cross-market")
            x_posts[0].body = _perturb(rng, donor.body, 0.93)
            x_posts[0].reuse_group = "tt-cross-market"

    def _make_group(
        self,
        group_id: str,
        members: List[UndergroundPosting],
        similarity: float,
        same_author: bool = False,
        author_count: Optional[int] = None,
    ) -> None:
        if len(members) < 2:
            return
        rng = self._rng
        base_body = members[0].body
        base_author = members[0].author
        authors = [p.author for p in members]
        if same_author:
            authors = [base_author] * len(members)
        elif author_count is not None:
            distinct = list(dict.fromkeys(authors))[:author_count]
            while len(distinct) < author_count:
                distinct.append(base_author)
            authors = [distinct[i % author_count] for i in range(len(members))]
        for posting, author in zip(members, authors):
            posting.author = author
            posting.reuse_group = group_id
            if posting is members[0]:
                continue
            if similarity >= 1.0:
                posting.body = base_body  # verbatim repost (the 100% case)
            else:
                sim = rng.uniform(max(0.88, similarity - 0.04), similarity)
                posting.body = _perturb(rng, base_body, sim)


__all__ = ["MARKET_PLATFORM_SPLIT", "UndergroundGenerator"]
