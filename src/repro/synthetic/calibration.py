"""Calibration constants for the synthetic world.

Every constant below is taken from the paper; the citation next to each
value names the table, figure, or section it comes from.  The world
builder consumes these so that, at scale 1.0, the generated ecosystem
reproduces the paper's published marginals.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# ---------------------------------------------------------------------------
# Platforms (Section 1)
# ---------------------------------------------------------------------------

PLATFORMS = ("X", "Instagram", "Facebook", "TikTok", "YouTube")

# ---------------------------------------------------------------------------
# Table 1 — public marketplaces: sellers and listings
# ---------------------------------------------------------------------------

#: marketplace -> (sellers, listings).  Sellers None => the market hides
#: seller identity (Section 4.1 names 5 such markets).
MARKETPLACE_TABLE1: Dict[str, Tuple[int, int]] = {
    "Accsmarket": (2455, 13665),
    "FameSwap": (6617, 8833),
    "Z2U": (240, 6417),
    "SocialTradia": (0, 4020),
    "InstaSale": (251, 1950),
    "MidMan": (304, 1282),
    "TooFame": (0, 695),
    "SwapSocials": (0, 530),
    "SurgeGram": (0, 205),
    "BuySocia": (0, 547),
    "FameSeller": (77, 109),
}

#: Markets that omit public seller information (Section 4.1 / Table 1).
SELLER_HIDDEN_MARKETS = frozenset(
    {"SocialTradia", "TooFame", "SwapSocials", "SurgeGram", "BuySocia"}
)

TOTAL_LISTINGS = 38253  # Table 1 total
TOTAL_SELLERS = 9944  # Table 1 total (text says 9,949; table sums 9,944)

# ---------------------------------------------------------------------------
# Table 2 — listings and visible accounts per platform
# ---------------------------------------------------------------------------

#: platform -> (visible accounts, posts collected from them, all listings)
PLATFORM_TABLE2: Dict[str, Tuple[int, int, int]] = {
    "Instagram": (2023, 4207, 12658),
    "YouTube": (6271, 3411, 9087),
    "TikTok": (1700, 25131, 8973),
    "Facebook": (649, 7407, 4216),
    "X": (814, 165427, 3319),
}

TOTAL_VISIBLE = 11457
TOTAL_POSTS = 205583

# ---------------------------------------------------------------------------
# Table 3 — payment methods per marketplace (Appendix A)
# ---------------------------------------------------------------------------

#: marketplace -> list of (group, method) it supports.  "Unknown" means
#: the marketplace does not disclose payment methods publicly.
PAYMENT_METHODS: Dict[str, List[Tuple[str, str]]] = {
    "Accsmarket": [("Unknown", "Unknown")],
    "FameSwap": [("Unknown", "Unknown")],
    "Z2U": [
        ("Traditional", "Visa"),
        ("Traditional", "PayDirekt"),
        ("Prepaid Vouchers", "NeoSurf"),
        ("Exchanges", "Coinbase"),
        ("Exchanges", "AirWallex"),
        ("Digital Wallets", "PayPal"),
        ("Digital Wallets", "Trustly"),
        ("Digital Wallets", "Skrill"),
        ("Digital Wallets", "WeChat"),
        ("Digital Wallets", "AliPay"),
    ],
    "SocialTradia": [("Crypto", "ETH")],
    "InstaSale": [("Unknown", "Unknown")],
    "MidMan": [
        ("Traditional", "GPay Visa"),
        ("Traditional", "DLocal"),
        ("Traditional", "Appota Visa"),
        ("Crypto", "BTC"),
        ("Crypto", "ETH"),
        ("Crypto", "LiteCoin"),
        ("Crypto", "Tether"),
        ("Crypto", "BNB"),
        ("Crypto", "Matic"),
        ("Crypto", "Dash"),
        ("Digital Wallets", "Payssion"),
        ("Escrow-Based", "Trustap"),
        ("Escrow-Based", "Payer"),
    ],
    "TooFame": [("Unknown", "Unknown")],
    "SwapSocials": [
        ("Crypto", "BTC"),
        ("Crypto", "ETH"),
        ("Crypto", "BNB"),
        ("Exchanges", "Coinbase"),
        ("Escrow-Based", "Trustap"),
    ],
    "SurgeGram": [("Traditional", "Visa")],
    "BuySocia": [("Crypto", "BTC"), ("Crypto", "ETH")],
    "FameSeller": [("Digital Wallets", "PayPal"), ("Unknown", "Unknown")],
}

# ---------------------------------------------------------------------------
# Section 4.1 — seller countries
# ---------------------------------------------------------------------------

#: Top seller countries (Section 4.1): (country, sellers at paper scale).
SELLER_TOP_COUNTRIES: List[Tuple[str, int]] = [
    ("United States", 2683),
    ("Ethiopia", 844),
    ("Pakistan", 596),
    ("United Kingdom", 382),
    ("Turkey", 366),
]
SELLER_COUNTRY_COUNT = 138  # sellers represented 138 countries
#: Fraction of sellers that disclose a country at all.  8,833 of the
#: seller population disclosed (Section 4.1).
SELLER_COUNTRY_DISCLOSED_FRACTION = 0.23

# ---------------------------------------------------------------------------
# Section 4.1 — listing categories
# ---------------------------------------------------------------------------

LISTING_NO_CATEGORY_FRACTION = 8775 / 38253  # "22% lack categorical representation"
LISTING_CATEGORY_COUNT = 212  # "212 unique categories"
#: Top listing categories with paper-scale counts (Section 4.1).
LISTING_TOP_CATEGORIES: List[Tuple[str, int]] = [
    ("Humor/Memes", 5056),
    ("Luxury/Motivation", 2292),
    ("Fashion/Style", 1678),
    ("Reviews/How-to", 1420),
    ("Games", 1062),
]

# ---------------------------------------------------------------------------
# Section 4.1 — descriptions, verification, monetization
# ---------------------------------------------------------------------------

LISTING_DESCRIPTION_FRACTION = 24293 / 38253  # "63% included descriptions"

#: Description strategies with paper-scale counts (Section 4.1 lists 8
#: strategies and gives counts for five of them).
DESCRIPTION_STRATEGIES: List[Tuple[str, int]] = [
    ("authentic", 784),
    ("fresh_and_ready", 157),
    ("business_adaptability", 122),
    ("real_user_activity", 116),
    ("original_email_included", 98),
    ("never_monetized", 74),
    ("aged_account", 61),
    ("bulk_discount", 45),
]

VERIFIED_LISTINGS = 185  # all YouTube, none with profile URL (Section 4.1)

MONETIZED_LISTINGS = 164
MONETIZED_REVENUE_RANGE = (1, 922)  # USD / month
MONETIZED_REVENUE_MEDIAN = 136
SELLERS_WITH_INCOME_SOURCE = 1020
INCOME_SOURCE_NARRATIVES: List[Tuple[str, int]] = [
    ("generic ad-based revenue", 335),
    ("Google AdSense", 73),
    ("premium memberships / channel monetization", 73),
]

# ---------------------------------------------------------------------------
# Section 4.1 — advertised follower counts and prices
# ---------------------------------------------------------------------------

LISTING_FOLLOWERS_SHOWN_FRACTION = 15358 / 38253  # "40% displayed follower info"

#: platform -> median advertised follower count on listings (Section 4.1).
LISTING_FOLLOWER_MEDIANS: Dict[str, int] = {
    "X": 3077,
    "Instagram": 26998,
    "TikTok": 20807,
    "YouTube": 25700,
    "Facebook": 76050,
}

#: platform -> median advertised price in USD (Section 4.1).
PRICE_MEDIANS: Dict[str, float] = {
    "Facebook": 14.0,
    "X": 17.0,
    "Instagram": 298.0,
    "TikTok": 755.0,
    "YouTube": 759.0,
}

TOTAL_ADVERTISED_VALUE = 64_228_836  # USD (Section 4.1)
HIGH_PRICE_COUNT = 345  # listings above $20,000
HIGH_PRICE_THRESHOLD = 20_000
HIGH_PRICE_MEDIAN = 45_000
HIGH_PRICE_MAX = 5_000_000
HIGH_PRICE_TOTAL = 38_040_411
#: The Figure-3 exemplar: a FameSwap listing near 1M followers at $50M.
FIG3_OUTLIER_PRICE = 50_000_000
FIG3_OUTLIER_FOLLOWERS = 990_000
FIG3_OUTLIER_MARKET = "FameSwap"

#: Log-normal sigma for the price body per platform (tuned so the heavy
#: tail plus the injected >$20K block approximates the $64M total).
PRICE_SIGMA: Dict[str, float] = {
    "Facebook": 1.2,
    "X": 1.4,
    "Instagram": 1.15,
    "TikTok": 1.15,
    "YouTube": 1.0,
}

# ---------------------------------------------------------------------------
# Section 5 — visible-profile metadata
# ---------------------------------------------------------------------------

PROFILE_LOCATION_COUNT = 3236  # profiles listing a location
PROFILE_LOCATION_UNIQUE = 140
PROFILE_TOP_LOCATIONS: List[Tuple[str, int]] = [
    ("United States", 1242),
    ("India", 470),
    ("Pakistan", 222),
    ("South Korea", 156),
    ("Bangladesh", 114),
]

AFFILIATED_CATEGORY_ACCOUNTS = 1171
AFFILIATED_CATEGORY_UNIQUE = 288
AFFILIATED_TOP_CATEGORIES: List[Tuple[str, int]] = [
    ("Brand and Business", 751),
    ("Entities", 349),
    ("Digital Assets & Crypto", 334),
    ("Interests and Hobbies", 322),
    ("Events", 219),
]

ACCOUNT_TYPE_COUNTS: Dict[str, int] = {
    "business": 193,
    "verified": 669,
    "private": 65,
    "protected": 5,
}

#: Figure 4 — creation dates: ~30% pre-2020, ~70% in the last 3.5 years.
CREATION_PRE2020_FRACTION = 0.30
#: Platform-specific earliest creation years (Section 5).
CREATION_YEAR_FLOOR: Dict[str, int] = {
    "TikTok": 2017,
    "X": 2010,
    "Instagram": 2010,
    "Facebook": 2010,
    "YouTube": 2006,
}
#: "<0.5% of YouTube accounts were created between 2006 and 2010".
YOUTUBE_2006_2010_FRACTION = 0.004

#: Table 4 — follower stats of *visible* accounts: platform -> (min,
#: median, max).
VISIBLE_FOLLOWERS: Dict[str, Tuple[int, int, int]] = {
    "TikTok": (0, 1, 6893),
    "X": (55, 2752, 1_078_130),
    "Facebook": (115, 27_669, 5_239_529),
    "Instagram": (1032, 8362, 6_288_290),
    "YouTube": (0, 8460, 20_500_000),
}

# ---------------------------------------------------------------------------
# Section 6 — scam posts (Tables 5 and 6)
# ---------------------------------------------------------------------------

#: Table 5: platform -> (scam accounts, scam posts).
SCAM_TABLE5: Dict[str, Tuple[int, int]] = {
    "Facebook": (512, 3838),
    "Instagram": (525, 3271),
    "TikTok": (461, 3034),
    "X": (610, 6988),
    "YouTube": (1661, 1661),
}
TOTAL_SCAM_ACCOUNTS = 3769
TOTAL_SCAM_POSTS = 18792

#: Table 6: category -> subcategory -> (accounts, posts) at paper scale.
SCAM_TAXONOMY: Dict[str, Dict[str, Tuple[int, int]]] = {
    "Financial Scams": {
        "Crypto Scams": (2352, 8218),
        "NFT and Giveaway Scams": (163, 389),
        "Financial Consulting": (81, 133),
        "Emotional Exploitation (Charity)": (53, 163),
    },
    "Phishing": {
        "Through Popular Content/Challenges/Trends": (725, 1749),
        "Through Chat Communication": (208, 544),
    },
    "Product/Service Fraud": {
        "Product Promotion Scams": (296, 739),
        "Fake Travel Deals": (131, 357),
        "Vehicle Sale/Rental Fraud": (101, 279),
        "Sports Betting and Merchandise Scams": (129, 451),
        "Fake Education-related Offers": (44, 183),
    },
    "Adult Content": {
        "Provocative and Catphishing Lures": (244, 466),
    },
    "Impersonation": {
        "Public Figures": (53, 133),
        "Fake Tech Support": (135, 259),
    },
    "Engagement Bait": {
        "Like/Follow/Subscribe Requests": (1509, 2999),
        "Greetings and Motivational Phrases": (791, 1598),
    },
}

RAW_TOPIC_CLUSTERS = 86  # "86 distinct clusters"
SCAM_CLUSTERS = 16  # "16 clusters containing scam-related content"
CLUSTER_VETTING_SAMPLE = 25  # posts sampled per cluster for manual vetting
#: Fraction of collected posts that are non-English (filtered by langdetect).
NON_ENGLISH_POST_FRACTION = 0.08

# ---------------------------------------------------------------------------
# Table 7 — profile-attribute network clusters
# ---------------------------------------------------------------------------

#: platform -> (attribute, cluster count, clustered accounts, max size,
#: median size)
NETWORK_TABLE7: Dict[str, Tuple[str, int, int, int, int]] = {
    "TikTok": ("description", 3, 26, 22, 4),
    "YouTube": ("name", 97, 195, 3, 2),
    "Instagram": ("biography", 31, 152, 46, 2),
    "Facebook": ("email/phone/website", 37, 81, 4, 2),
    "X": ("name/description", 35, 89, 7, 2),
}
TOTAL_CLUSTERS = 203
TOTAL_CLUSTERED_ACCOUNTS = 543

# ---------------------------------------------------------------------------
# Table 8 — detection efficacy
# ---------------------------------------------------------------------------

#: platform -> fraction of visible accounts inactive (banned or vanished).
BLOCKING_EFFICACY: Dict[str, float] = {
    "YouTube": 0.0502,
    "Facebook": 0.0570,
    "X": 0.1867,
    "Instagram": 0.4641,
    "TikTok": 0.48,
}
OVERALL_EFFICACY = 0.1971
#: Of inactive accounts, the share that were platform-banned (Forbidden)
#: versus owner-removed (Not Found).  The paper treats both as "actioned".
BANNED_SHARE_OF_INACTIVE = 0.6
#: Trend words over-represented in blocked account names (Section 8).
TRENDING_BLOCK_TOKENS = ("crypto", "nft", "beauty", "luxury", "animals")

# ---------------------------------------------------------------------------
# Section 4.2 — underground markets
# ---------------------------------------------------------------------------

#: market -> (posts, sellers, platforms sold).  Section 4.2 narrative.
UNDERGROUND_MARKETS: Dict[str, Tuple[int, int, Tuple[str, ...]]] = {
    "Nexus": (37, 4, ("Instagram", "X", "TikTok")),
    "We The North": (15, 1, ("TikTok",)),
    "Dark Matter": (5, 3, ("YouTube", "TikTok", "X")),
    "Torzon Market": (4, 2, ("Instagram", "TikTok", "YouTube")),
    "Kerberos": (2, 2, ("TikTok", "X")),
    "Black Pyramid": (2, 2, ("YouTube",)),
}
UNDERGROUND_TOTAL_POSTS = 65
#: Kerberos' two posts advertise 51 accounts in bulk (Section 4.2).
KERBEROS_BULK_ACCOUNTS = 51
#: Post length ranges (words): "averaging between 14 and 123 words".
UNDERGROUND_POST_WORDS = (14, 123)
#: TikTok reuse: 12 of 42 TikTok-related posts near-duplicated, traced to
#: 3 authors; similarity 88–100%.
UNDERGROUND_TIKTOK_POSTS = 42
UNDERGROUND_TIKTOK_REUSED = 12
UNDERGROUND_REUSE_AUTHORS = 3
UNDERGROUND_REUSE_SIMILARITY = (0.88, 1.0)
#: Reuse in other platforms: Instagram 2/13, X 1/3, YouTube 3/7 (§4.2).
UNDERGROUND_OTHER_REUSE: Dict[str, Tuple[int, int]] = {
    "Instagram": (2, 13),
    "X": (1, 3),
    "YouTube": (3, 7),
}
#: Two seller usernames appear on more than one underground market.
UNDERGROUND_CROSS_MARKET_SELLERS = 2

# ---------------------------------------------------------------------------
# Table 9 — trading channel triage
# ---------------------------------------------------------------------------

CHANNELS_TOTAL_SITES = 58
CHANNELS_CONTACT_POINTS = 9
CHANNELS_MONITORED = 11

# ---------------------------------------------------------------------------
# Figure 2 — listing dynamics over collection iterations
# ---------------------------------------------------------------------------

COLLECTION_ITERATIONS = 10
#: Fraction of the final cumulative stock present at the first iteration.
INITIAL_STOCK_FRACTION = 0.55
#: Later arrivals decay geometrically with this ratio, so inventory
#: replenishment slows over the study window.
ARRIVAL_DECAY = 0.75
#: Per-iteration probability that an active listing is delisted (sold or
#: withdrawn).  Together with the decaying arrivals this makes the active
#: curve rise, peak, and decline while the cumulative curve keeps growing
#: — the Figure-2 shape.
DELISTING_RATE = 0.13


def scaled(count: int, scale: float, minimum: int = 0) -> int:
    """Scale a paper-level count, keeping small non-zero counts alive."""
    if count == 0:
        return 0
    value = round(count * scale)
    if count > 0 and value < minimum:
        return minimum
    return max(value, 1) if scale > 0 else 0


__all__ = [name for name in dir() if name.isupper()] + ["scaled"]
