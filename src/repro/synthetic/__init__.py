"""The synthetic account-trading ecosystem.

The paper's dataset (38,253 marketplace listings, 11,457 visible social
media profiles, 205,583 posts, 65 underground postings) is shared only on
request and cannot be re-collected here.  This package generates a
deterministic stand-in world calibrated to every marginal the paper
publishes (see ``calibration.py`` — each constant cites its table/figure),
with ground-truth labels attached so the measurement pipeline built on top
can be validated end to end.

Entry point: :class:`repro.synthetic.world.WorldBuilder`.
"""

from repro.synthetic.model import (
    Listing,
    Platform,
    Post,
    Seller,
    SocialAccount,
    UndergroundPosting,
    World,
)
from repro.synthetic.world import WorldBuilder, WorldConfig

__all__ = [
    "Listing",
    "Platform",
    "Post",
    "Seller",
    "SocialAccount",
    "UndergroundPosting",
    "World",
    "WorldBuilder",
    "WorldConfig",
]
