"""Ground-truth account fates: who gets banned or vanishes (Section 8).

Table 8 gives per-platform blocking efficacies; Section 8 observes that
blocked accounts disproportionately carry trending tokens (crypto, NFT,
beauty, luxury, animals) in their names.  We reproduce both: the exact
inactive count per platform, selected with a weighted preference for
trend-named and scammer accounts.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.synthetic import calibration as cal
from repro.synthetic.model import AccountFate, Platform, SocialAccount
from repro.util.rng import RngTree
from repro.util.simtime import STUDY_END, STUDY_START


def _trend_score(account: SocialAccount) -> float:
    """Weight for being actioned: trend-named and scammy accounts first."""
    name_blob = f"{account.handle} {account.display_name}".lower()
    weight = 1.0
    if any(token in name_blob for token in cal.TRENDING_BLOCK_TOKENS):
        weight *= 4.0
    if account.is_scammer:
        weight *= 2.0
    return weight


def _weighted_sample_without_replacement(
    rng: RngTree, items: List[SocialAccount], weights: List[float], k: int
) -> List[SocialAccount]:
    """Efraimidis–Spirakis weighted sampling (deterministic given the rng)."""
    if k >= len(items):
        return list(items)
    keyed = [
        (rng.random() ** (1.0 / w), item) for item, w in zip(items, weights)
    ]
    keyed.sort(key=lambda pair: pair[0], reverse=True)
    return [item for _key, item in keyed[:k]]


def apply_moderation(
    rng: RngTree, platform: Platform, accounts: Sequence[SocialAccount]
) -> int:
    """Mark the Table-8 share of ``accounts`` inactive; return the count.

    Inactive accounts split into platform bans (Forbidden-style API
    answers) and owner-side vanishing (Not Found) per
    ``BANNED_SHARE_OF_INACTIVE``; the paper counts both as actioned.
    """
    pool = list(accounts)
    if not pool:
        return 0
    efficacy = cal.BLOCKING_EFFICACY[platform.value]
    target = round(efficacy * len(pool))
    if target <= 0:
        return 0
    weights = [_trend_score(a) for a in pool]
    chosen = _weighted_sample_without_replacement(rng, pool, weights, target)
    span = STUDY_START.days_until(STUDY_END)
    for account in chosen:
        banned = rng.bernoulli(cal.BANNED_SHARE_OF_INACTIVE)
        account.fate = AccountFate.BANNED if banned else AccountFate.VANISHED
        account.fate_date = STUDY_START.plus_days(rng.randint(0, max(1, span)))
    return len(chosen)


__all__ = ["apply_moderation"]
