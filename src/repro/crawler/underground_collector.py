"""The manual-protocol collector for underground forums (Section 3.2).

The paper collected underground data entirely by hand: register on each
forum (solving its CAPTCHA), browse the social-media sections or search
with ``[account/s | profile/s] [platform]`` keywords, and record postings
from the first five result pages, up to 25 postings per platform.

This collector encodes that protocol.  It is deliberately *not* the
crawler: it uses a Tor-enabled client, solves CAPTCHAs through a
:class:`~repro.web.captcha.HumanSolver` (bounded human pace charged to
the simulated clock), follows only links the forum exposes, and respects
the 5-page / 25-posting budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.dataset import UndergroundRecord
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.crawler.extractor import (
    ExtractionError,
    extract_section_links,
    extract_thread_list,
    extract_underground_posting,
)
from repro.web.captcha import HumanSolver
from repro.web.client import HttpClient
from repro.web.html_parser import parse_html
from repro.web.http import HttpError
from repro.web.url import join_url, url_path

MAX_RESULT_PAGES = 5
MAX_POSTINGS_PER_PLATFORM = 25


@dataclass
class UndergroundReport:
    markets_visited: int = 0
    registrations_failed: int = 0
    postings_recorded: int = 0
    pages_read: int = 0
    blocked: int = 0


#: Section 3.2's search keywords: "[account/s | profile/s] [platform]".
SEARCH_KEYWORDS = ("account", "accounts", "profile", "profiles")


@dataclass
class UndergroundCollector:
    """Walks one or more forums following the manual protocol.

    Both of the paper's collection criteria are implemented: browsing the
    per-platform sections (``collect_market``) and querying the forum
    search with ``[account/s | profile/s] [platform]`` keywords
    (``collect_market_via_search``).  Both respect the 5-page /
    25-postings-per-platform budget.
    """

    client: HttpClient  # must be Tor-enabled (ClientConfig.via_tor)
    solver: HumanSolver
    username: str = "survey_reader"
    report: UndergroundReport = field(default_factory=UndergroundReport)
    telemetry: Optional[Telemetry] = None

    @property
    def _telemetry(self) -> Telemetry:
        return self.telemetry or getattr(self.client, "telemetry", NULL_TELEMETRY)

    def collect_market(self, market: str, host: str) -> List[UndergroundRecord]:
        """Criterion (i): browse the forum's social-media sections."""
        with self._telemetry.tracer.span("underground.market", market=market):
            return self._collect_market(market, host)

    def _collect_market(self, market: str, host: str) -> List[UndergroundRecord]:
        self.report.markets_visited += 1
        if not self._register(host):
            self.report.registrations_failed += 1
            self._telemetry.events.emit(
                "registration_failed", market=market, host=host
            )
            return []
        records: List[UndergroundRecord] = []
        forum_url = f"http://{host}/forum"
        try:
            response = self.client.get(forum_url)
        except HttpError as exc:
            self._telemetry.events.emit(
                "http_error", url=forum_url, marketplace=market,
                detail=f"{type(exc).__name__}: {exc}",
            )
            return []
        if not response.ok:
            return []
        self.report.pages_read += 1
        per_platform: Dict[str, int] = {}
        try:
            section_urls = extract_section_links(forum_url, response.body)
        except ExtractionError as exc:
            self._telemetry.events.emit(
                "extraction_error", url=forum_url, marketplace=market,
                detail=f"{type(exc).__name__}: {exc}",
            )
            return []
        for index, section_url in enumerate(section_urls):
            if index > 0:
                # The forum blocks any path not linked from the last page
                # served; a human navigates back to the forum root before
                # entering the next section.
                try:
                    self.client.get(forum_url)
                    self.report.pages_read += 1
                except HttpError:
                    break
            platform = self._platform_from_section(section_url)
            records.extend(
                self._walk_section(market, section_url, platform, per_platform)
            )
        self.report.postings_recorded += len(records)
        return records

    def collect_market_via_search(
        self, market: str, host: str,
        platforms: tuple = ("X", "Instagram", "Facebook", "TikTok", "YouTube"),
    ) -> List[UndergroundRecord]:
        """Criterion (ii): forum search with the paper's keyword pattern."""
        self.report.markets_visited += 1
        if not self._register(host):
            self.report.registrations_failed += 1
            self._telemetry.events.emit(
                "registration_failed", market=market, host=host
            )
            return []
        records: List[UndergroundRecord] = []
        seen_urls: set = set()
        per_platform: Dict[str, int] = {}
        for platform in platforms:
            for keyword in SEARCH_KEYWORDS:
                if per_platform.get(platform.lower(), 0) >= MAX_POSTINGS_PER_PLATFORM:
                    break
                query = f"{keyword} {platform}"
                search_url = f"http://{host}/search?q={query}"
                found = self._walk_section(
                    market, search_url, platform.lower(), per_platform
                )
                for record in found:
                    if record.url not in seen_urls:
                        seen_urls.add(record.url)
                        records.append(record)
        self.report.postings_recorded += len(records)
        return records

    # -- registration -------------------------------------------------------

    def _register(self, host: str, attempts: int = 3) -> bool:
        """Solve the CAPTCHA and obtain a session; a few human retries."""
        register_url = f"http://{host}/register"
        for _ in range(attempts):
            try:
                page = self.client.get(register_url)
            except HttpError:
                return False
            if not page.ok:
                return False
            tree = parse_html(page.body)
            prompt_el = tree.find(class_="captcha-prompt")
            challenge_el = tree.find("input", name="challenge_id")
            if prompt_el is None or challenge_el is None:
                return False
            # A person reads the prompt and types an answer.
            self.client.clock.advance(self.solver.seconds_per_challenge)
            answer = self.solver.solve(prompt_el.text)
            try:
                response = self.client.post(
                    register_url,
                    form={
                        "challenge_id": challenge_el.get("value"),
                        "captcha_answer": answer,
                        "username": self.username,
                    },
                )
            except HttpError:
                return False
            if response.ok:
                return True
        return False

    # -- browsing -------------------------------------------------------------

    def _platform_from_section(self, section_url: str) -> Optional[str]:
        slug = url_path(section_url).rsplit("/", 1)[-1]
        return slug or None

    def _walk_section(
        self,
        market: str,
        section_url: str,
        platform: Optional[str],
        per_platform: Dict[str, int],
    ) -> List[UndergroundRecord]:
        """First five pages of a section, <= 25 postings per platform."""
        records: List[UndergroundRecord] = []
        page_url: Optional[str] = section_url
        pages_seen = 0
        key = platform or "unknown"
        while page_url is not None and pages_seen < MAX_RESULT_PAGES:
            if per_platform.get(key, 0) >= MAX_POSTINGS_PER_PLATFORM:
                break
            try:
                response = self.client.get(page_url)
            except HttpError:
                break
            if response.status == 403:
                self.report.blocked += 1
                self._telemetry.events.emit(
                    "forum_blocked", url=page_url, marketplace=market
                )
                break
            if not response.ok:
                break
            pages_seen += 1
            self.report.pages_read += 1
            try:
                thread_list = extract_thread_list(page_url, response.body)
            except ExtractionError as exc:
                self._telemetry.events.emit(
                    "extraction_error", url=page_url, marketplace=market,
                    detail=f"{type(exc).__name__}: {exc}",
                )
                break
            for thread_url in thread_list.thread_urls:
                if per_platform.get(key, 0) >= MAX_POSTINGS_PER_PLATFORM:
                    break
                record = self._read_thread(market, thread_url, platform)
                if record is not None:
                    records.append(record)
                    per_platform[key] = per_platform.get(key, 0) + 1
            page_url = thread_list.next_page_url
        return records

    def _read_thread(
        self, market: str, thread_url: str, platform: Optional[str]
    ) -> Optional[UndergroundRecord]:
        try:
            response = self.client.get(thread_url)
        except HttpError:
            return None
        if response.status == 403:
            self.report.blocked += 1
            self._telemetry.events.emit(
                "forum_blocked", url=thread_url, marketplace=market
            )
            return None
        if not response.ok:
            return None
        self.report.pages_read += 1
        platform_name = _slug_to_platform(platform)
        try:
            return extract_underground_posting(
                thread_url, response.body, market, platform_name
            )
        except ExtractionError as exc:
            self._telemetry.events.emit(
                "extraction_error", url=thread_url, marketplace=market,
                detail=f"{type(exc).__name__}: {exc}",
            )
            return None


def _slug_to_platform(slug: Optional[str]) -> Optional[str]:
    if slug is None:
        return None
    mapping = {
        "x": "X",
        "instagram": "Instagram",
        "facebook": "Facebook",
        "tiktok": "TikTok",
        "youtube": "YouTube",
    }
    return mapping.get(slug.lower())


__all__ = [
    "MAX_POSTINGS_PER_PLATFORM",
    "MAX_RESULT_PAGES",
    "UndergroundCollector",
    "UndergroundReport",
]
