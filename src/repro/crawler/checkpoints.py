"""Crawl checkpointing: persist and resume an iteration crawl.

The paper's crawl spanned five months; a real deployment has to survive
restarts without re-counting listings it has already seen.  The
checkpoint captures the :class:`~repro.crawler.crawler.IterationCrawl`
tracker — every listing record with its first/last-seen bookkeeping,
plus the per-iteration series — as a JSON file.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.dataset import ListingRecord, SellerRecord


@dataclass
class CrawlCheckpoint:
    """Serializable snapshot of an iteration crawl in progress."""

    completed_iterations: int = 0
    active_per_iteration: List[int] = field(default_factory=list)
    cumulative_per_iteration: List[int] = field(default_factory=list)
    #: normalized offer URL -> listing record (with seen bookkeeping).
    tracker: Dict[str, ListingRecord] = field(default_factory=dict)
    #: normalized seller URL -> seller record; without this, sellers whose
    #: listings delist before a resume would be lost.
    sellers: Dict[str, SellerRecord] = field(default_factory=dict)

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        payload = {
            "completed_iterations": self.completed_iterations,
            "active_per_iteration": self.active_per_iteration,
            "cumulative_per_iteration": self.cumulative_per_iteration,
            "tracker": {
                key: dataclasses.asdict(record)
                for key, record in self.tracker.items()
            },
            "sellers": {
                key: dataclasses.asdict(record)
                for key, record in self.sellers.items()
            },
        }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Write-then-rename so a crash never leaves a torn checkpoint.
        temp_path = path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temp_path, path)

    @classmethod
    def load(cls, path: str) -> "CrawlCheckpoint":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls(
            completed_iterations=payload["completed_iterations"],
            active_per_iteration=list(payload["active_per_iteration"]),
            cumulative_per_iteration=list(payload["cumulative_per_iteration"]),
            tracker={
                key: ListingRecord(**record)
                for key, record in payload["tracker"].items()
            },
            sellers={
                key: SellerRecord(**record)
                for key, record in payload.get("sellers", {}).items()
            },
        )

    @classmethod
    def load_or_empty(cls, path: str) -> "CrawlCheckpoint":
        if os.path.exists(path):
            return cls.load(path)
        return cls()


__all__ = ["CrawlCheckpoint"]
