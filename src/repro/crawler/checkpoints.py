"""Crawl checkpointing: persist and resume an iteration crawl.

The paper's crawl spanned five months; a real deployment has to survive
restarts without re-counting listings it has already seen.  The
checkpoint captures the :class:`~repro.crawler.crawler.IterationCrawl`
tracker — every listing record with its first/last-seen bookkeeping,
plus the per-iteration series — as a JSON file.

Saves are atomic (write-then-rename), so a checkpoint on disk is either
a complete snapshot or absent.  A checkpoint that is nonetheless
unreadable — disk corruption, a partial copy, someone's stray editor —
must not wedge the crawl: :meth:`CrawlCheckpoint.load_or_empty`
quarantines the broken file to ``<path>.corrupt``, emits a
``checkpoint.corrupt`` event, and starts fresh.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.dataset import ListingRecord, SellerRecord
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.util.fileio import atomic_write_json


@dataclass
class CrawlCheckpoint:
    """Serializable snapshot of an iteration crawl in progress."""

    completed_iterations: int = 0
    active_per_iteration: List[int] = field(default_factory=list)
    cumulative_per_iteration: List[int] = field(default_factory=list)
    #: Simulated clock at save time; a resumed run fast-forwards its
    #: fresh clock here so sim timestamps match the uninterrupted run.
    sim_seconds: float = 0.0
    #: normalized offer URL -> listing record (with seen bookkeeping).
    tracker: Dict[str, ListingRecord] = field(default_factory=dict)
    #: normalized seller URL -> seller record; without this, sellers whose
    #: listings delist before a resume would be lost.
    sellers: Dict[str, SellerRecord] = field(default_factory=dict)

    # -- persistence -------------------------------------------------------

    def save(self, path: str, faults=None) -> None:
        payload = {
            "completed_iterations": self.completed_iterations,
            "active_per_iteration": self.active_per_iteration,
            "cumulative_per_iteration": self.cumulative_per_iteration,
            "sim_seconds": self.sim_seconds,
            "tracker": {
                key: dataclasses.asdict(record)
                for key, record in self.tracker.items()
            },
            "sellers": {
                key: dataclasses.asdict(record)
                for key, record in self.sellers.items()
            },
        }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Write-then-rename so a crash never leaves a torn checkpoint.
        # ``faults`` (a DiskFaultInjector) routes the write through the
        # storage chaos layer; an injected failure leaves the previous
        # checkpoint intact, exactly like the real one would.
        atomic_write_json(path, payload, indent=None, sort_keys=False,
                          faults=faults)

    @classmethod
    def load(cls, path: str) -> "CrawlCheckpoint":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls(
            completed_iterations=payload["completed_iterations"],
            active_per_iteration=list(payload["active_per_iteration"]),
            cumulative_per_iteration=list(payload["cumulative_per_iteration"]),
            sim_seconds=float(payload.get("sim_seconds", 0.0)),
            # Deliberately strict (no unknown-key dropping): a checkpoint
            # carrying fields this version does not know is an incompatible
            # schema, and load_or_empty quarantines it rather than resuming
            # from a half-understood crawl state.
            tracker={
                key: ListingRecord(**record)
                for key, record in payload["tracker"].items()
            },
            sellers={
                key: SellerRecord(**record)
                for key, record in payload.get("sellers", {}).items()
            },
        )

    @classmethod
    def load_or_empty(
        cls, path: str, telemetry: Optional[Telemetry] = None,
    ) -> "CrawlCheckpoint":
        """Load ``path``, tolerating a corrupt or incompatible file.

        An unreadable checkpoint is moved aside to ``<path>.corrupt``
        (preserved for post-mortems) and an empty checkpoint is
        returned, so the crawl restarts from iteration 0 instead of
        crashing on startup — losing progress beats losing the run.
        """
        if not os.path.exists(path):
            return cls()
        telemetry = telemetry or NULL_TELEMETRY
        try:
            return cls.load(path)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            quarantine = path + ".corrupt"
            os.replace(path, quarantine)
            telemetry.events.emit(
                "checkpoint.corrupt",
                level="error",
                path=path,
                quarantine=quarantine,
                detail=f"{type(exc).__name__}: {exc}",
            )
            return cls()


__all__ = ["CrawlCheckpoint"]
