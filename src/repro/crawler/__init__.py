"""The measurement crawler (Figure 1, module 2).

* :mod:`repro.crawler.extractor` — HTML extraction for all marketplace
  page themes plus the underground forum pages;
* :mod:`repro.crawler.frontier` — URL frontier with normalization-based
  deduplication;
* :mod:`repro.crawler.crawler` — the depth-first marketplace crawler and
  the multi-iteration scheduler behind Figure 2;
* :mod:`repro.crawler.profile_collector` — platform-API collection of
  profile metadata and timelines for visible accounts;
* :mod:`repro.crawler.underground_collector` — the manual-protocol
  collector for Tor forums (register, solve CAPTCHA, first five pages,
  at most 25 postings per platform).
"""

from repro.crawler.checkpoints import CrawlCheckpoint
from repro.crawler.crawler import CrawlReport, IterationCrawl, MarketplaceCrawler
from repro.crawler.extractor import (
    ExtractionError,
    extract_listing_index,
    extract_offer,
    extract_payment_methods,
    extract_seller,
)
from repro.crawler.frontier import Frontier
from repro.crawler.profile_collector import ProfileCollector
from repro.crawler.underground_collector import UndergroundCollector

__all__ = [
    "CrawlCheckpoint",
    "CrawlReport",
    "ExtractionError",
    "Frontier",
    "IterationCrawl",
    "MarketplaceCrawler",
    "ProfileCollector",
    "UndergroundCollector",
    "extract_listing_index",
    "extract_offer",
    "extract_payment_methods",
    "extract_seller",
]
