"""URL frontier: LIFO for depth-first crawls, with normalized dedup."""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.web.url import normalize_url


class Frontier:
    """A stack-shaped frontier that never re-admits a seen URL.

    Depth-first order mirrors the paper's crawler: "visits a listing
    page, clicks on each offer ... then moves to the next listing page".
    """

    def __init__(self, seeds: Optional[Iterable[str]] = None) -> None:
        self._stack: List[str] = []
        self._seen: Set[str] = set()
        for seed in seeds or []:
            self.add(seed)

    def add(self, url: str) -> bool:
        """Queue a URL; returns False if it was already seen."""
        key = normalize_url(url)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._stack.append(url)
        return True

    def add_all(self, urls: Iterable[str]) -> int:
        return sum(1 for url in urls if self.add(url))

    def pop(self) -> str:
        if not self._stack:
            raise IndexError("frontier is empty")
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)

    def __bool__(self) -> bool:
        return bool(self._stack)

    @property
    def seen_count(self) -> int:
        return len(self._seen)

    def has_seen(self, url: str) -> bool:
        return normalize_url(url) in self._seen


__all__ = ["Frontier"]
