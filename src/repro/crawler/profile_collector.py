"""Profile metadata and timeline collection (Section 3.2).

For every listing that displays a profile link, query the platform's
metadata API and timeline API (paginated), normalizing across platforms.
Inactive accounts (Forbidden / Not Found) still yield a
:class:`~repro.core.dataset.ProfileRecord` carrying the status — that is
the raw material of the Section 8 efficacy analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.dataset import (
    ListingRecord,
    PostRecord,
    ProfileRecord,
    add_provenance,
)
from repro.crawler.crawler import CrawlError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.platforms.api import (
    ApiStatus,
    parse_profile_payload,
    parse_timeline_payload,
)
from repro.platforms.base import PLATFORM_HOSTS
from repro.synthetic.model import Platform
from repro.web.client import HttpClient
from repro.web.http import HttpError
from repro.web.url import url_host, url_path

_HOST_TO_PLATFORM: Dict[str, Platform] = {
    host: platform for platform, host in PLATFORM_HOSTS.items()
}


@dataclass
class CollectionReport:
    profiles_queried: int = 0
    profiles_active: int = 0
    profiles_inactive: int = 0
    posts_collected: int = 0
    errors: int = 0
    error_details: List[CrawlError] = field(default_factory=list)

    def record_error(self, url: str, kind: str, detail: str = "") -> CrawlError:
        error = CrawlError(url=url, kind=kind, detail=detail)
        self.errors += 1
        self.error_details.append(error)
        return error


def platform_of_url(profile_url: str) -> Optional[Platform]:
    """Which platform a profile URL belongs to, from its hostname."""
    return _HOST_TO_PLATFORM.get(url_host(profile_url))


def handle_of_url(profile_url: str) -> str:
    """The account handle encoded in a profile URL path."""
    return url_path(profile_url).strip("/")


class ProfileCollector:
    """Queries platform APIs for all visible accounts in a listing set."""

    def __init__(self, client: HttpClient, timeline_page_size: int = 200,
                 telemetry: Optional[Telemetry] = None) -> None:
        self._client = client
        self.timeline_page_size = timeline_page_size
        self.report = CollectionReport()
        self.telemetry = telemetry or getattr(client, "telemetry", NULL_TELEMETRY)
        self._m_profiles = self.telemetry.metrics.counter(
            "profiles_queried_total", "profile API queries, by outcome",
            labels=("outcome",),
        )
        self._m_posts = self.telemetry.metrics.counter(
            "timeline_posts_total", "timeline posts collected"
        )

    def _fail(self, url: str, kind: str, detail: str = "") -> None:
        self.report.record_error(url, kind, detail)
        self.telemetry.events.emit(kind, url=url, stage="profiles", detail=detail)

    def collect(
        self, listings: Iterable[ListingRecord]
    ) -> Tuple[List[ProfileRecord], List[PostRecord]]:
        """Collect profiles + posts for every distinct visible profile URL."""
        profiles: List[ProfileRecord] = []
        posts: List[PostRecord] = []
        seen: set = set()
        for listing in listings:
            url = listing.profile_url
            if not url or url in seen:
                continue
            seen.add(url)
            result = self.collect_profile(url)
            if result is None:
                continue
            profile, timeline = result
            profiles.append(profile)
            posts.extend(timeline)
        return profiles, posts

    def collect_profile(
        self, profile_url: str
    ) -> Optional[Tuple[ProfileRecord, List[PostRecord]]]:
        """Collect one profile and its timeline; None on transport failure."""
        platform = platform_of_url(profile_url)
        if platform is None:
            self._fail(profile_url, "unknown_platform")
            self._m_profiles.inc(outcome="unknown_platform")
            return None
        handle = handle_of_url(profile_url)
        host = PLATFORM_HOSTS[platform]
        self.report.profiles_queried += 1
        try:
            response = self._client.get(f"http://{host}/api/users/{handle}")
        except HttpError as exc:
            self._fail(profile_url, "http_error", f"{type(exc).__name__}: {exc}")
            self._m_profiles.inc(outcome="error")
            return None
        payload = parse_profile_payload(platform, response)
        record = ProfileRecord(
            profile_url=profile_url,
            platform=platform.value,
            handle=handle,
            status=payload.status.value,
        )
        if payload.status is not ApiStatus.ACTIVE:
            self.report.profiles_inactive += 1
            self._m_profiles.inc(outcome="inactive")
            return record, []
        self.report.profiles_active += 1
        self._m_profiles.inc(outcome="active")
        record.account_id = payload.account_id
        record.name = payload.name
        record.description = payload.description
        record.created = payload.created.isoformat() if payload.created else None
        record.followers = payload.followers
        record.account_type = payload.account_type
        record.location = payload.location
        record.category = payload.category
        record.email = payload.email
        record.phone = payload.phone
        record.website = payload.website
        timeline, complete = self._collect_timeline(platform, host, handle)
        if not complete:
            # Keep what we got, but mark the record so analyses know the
            # timeline may be missing posts.
            add_provenance(record, "partial:timeline_error")
            self.telemetry.events.emit(
                "crawl.partial_record",
                url=profile_url,
                stage="profiles",
                detail="timeline_error",
            )
        return record, timeline

    def sweep_status(self, profiles: Iterable[ProfileRecord]) -> int:
        """Re-query each profile's API status (the Section-8 sweep).

        The paper collected metadata and posts while accounts were live,
        then later "analyzed the active status of 11,457 social media
        profiles using API responses".  Returns how many profiles turned
        out inactive.
        """
        inactive = 0
        for record in profiles:
            platform = platform_of_url(record.profile_url)
            if platform is None:
                continue
            host = PLATFORM_HOSTS[platform]
            try:
                response = self._client.get(
                    f"http://{host}/api/users/{record.handle}"
                )
            except HttpError as exc:
                self._fail(record.profile_url, "http_error",
                           f"sweep: {type(exc).__name__}: {exc}")
                continue
            payload = parse_profile_payload(platform, response)
            record.status = payload.status.value
            if payload.status.inactive:
                inactive += 1
        return inactive

    def _collect_timeline(
        self, platform: Platform, host: str, handle: str
    ) -> Tuple[List[PostRecord], bool]:
        """Page through the timeline API until exhausted.

        Returns the posts plus whether pagination ran to completion; a
        transport failure or error payload mid-walk yields a partial
        timeline the caller flags via the record's provenance.
        """
        posts: List[PostRecord] = []
        offset = 0
        complete = True
        timeline_url = f"http://{host}/api/users/{handle}/posts"
        while True:
            try:
                response = self._client.get(
                    timeline_url,
                    limit=str(self.timeline_page_size),
                    offset=str(offset),
                )
            except HttpError as exc:
                self._fail(timeline_url, "http_error",
                           f"{type(exc).__name__}: {exc}")
                complete = False
                break
            payload = parse_timeline_payload(platform, response)
            if payload.status is not ApiStatus.ACTIVE:
                self._fail(timeline_url, "timeline_error",
                           f"status {payload.status.value}")
                complete = False
                break
            for post in payload.posts:
                posts.append(
                    PostRecord(
                        post_id=post.post_id,
                        platform=platform.value,
                        handle=handle,
                        text=post.text,
                        date=post.date.isoformat() if post.date else None,
                        likes=post.likes,
                        views=post.views,
                    )
                )
            offset += len(payload.posts)
            if offset >= payload.total or not payload.posts:
                break
        self.report.posts_collected += len(posts)
        self._m_posts.inc(len(posts))
        return posts, complete


__all__ = ["CollectionReport", "ProfileCollector", "handle_of_url", "platform_of_url"]
